#!/usr/bin/env python3
"""Quickstart: evaluate one storage design against one failure.

Builds a small two-level design (primary copy + nightly snapshots +
weekly tape backup) for an OLTP database workload, then asks the
framework the paper's four questions: how utilized is the hardware, how
long would recovery take after an array failure, how much recent data
would be lost, and what does it all cost?

Run:  python examples/quickstart.py
"""

import repro
from repro.devices.catalog import (
    enterprise_tape_library,
    midrange_disk_array,
    san_link,
)
from repro.reporting import dependability_report, utilization_report


def main() -> None:
    # 1. Describe the workload (or measure one: see repro.workload).
    workload = repro.workload.oltp_database()
    print(f"workload: {workload.describe()}\n")

    # 2. Assemble a design: techniques bound to hardware, level by level.
    array = midrange_disk_array(spare=repro.SpareConfig.dedicated("60 s", 1.0))
    design = repro.StorageDesign(
        "quickstart",
        recovery_facility=repro.SpareConfig.shared("9 hr", 0.2),
    )
    design.add_level(repro.PrimaryCopy(), store=array)
    design.add_level(
        repro.VirtualSnapshot(accumulation_window="6 hr", retention_count=4),
        store=array,
    )
    design.add_level(
        repro.Backup(
            full_accumulation_window="1 wk",
            full_propagation_window="24 hr",
            full_hold_window="1 hr",
            retention_count=4,
        ),
        store=enterprise_tape_library(spare=repro.SpareConfig.dedicated("60 s", 1.0)),
        transport=san_link(),
    )
    print(design.render_hierarchy(), "\n")

    # 3. Declare what failures cost the business.
    requirements = repro.BusinessRequirements.per_hour(
        unavailability_dollars_per_hour=25_000,
        loss_dollars_per_hour=40_000,
        rto="6 hr",
        rpo="8 hr",
    )

    # 4. Evaluate against the failures that keep you up at night.
    scenarios = [
        repro.FailureScenario.object_corruption("100 MB", "2 hr"),
        repro.FailureScenario.array_failure("primary-array"),
    ]
    results = repro.evaluate_scenarios(design, workload, scenarios, requirements)

    first = next(iter(results.values()))
    print(utilization_report(first.utilization))
    print()
    print(dependability_report(results))
    print()
    for label, assessment in results.items():
        verdict = "MEETS" if assessment.meets_objectives else "VIOLATES"
        print(f"{label}: {verdict} the declared RTO/RPO -- {assessment.summary()}")


if __name__ == "__main__":
    main()
