#!/usr/bin/env python3
"""Multi-object portfolios: several datasets on shared hardware.

The paper models one data object and notes the extension to many —
tracking per-object demands and inter-object recovery dependencies.
This example protects a three-tier service on shared hardware:

* an OLTP **database** (the crown jewels),
* an **application** volume that cannot come back before the database,
* a **web content** volume that depends on the application.

All three share one mid-range array and one tape library.  The example
evaluates an array failure, showing the joint utilization, the
dependency-ordered recovery schedule, and how the business-level outage
differs from any single object's recovery time.

Run:  python examples/multi_object_portfolio.py
"""

import repro
from repro.devices.catalog import (
    enterprise_tape_library,
    midrange_disk_array,
    san_link,
)
from repro.reporting import Table, bar_chart
from repro.units import GB, HOUR, format_duration, format_money
from repro.workload.presets import oltp_database, web_server


def tiered_design(tier, array, library, san):
    """Snapshot + weekly backup, labeled per tier."""
    design = repro.StorageDesign(
        f"{tier}-design",
        recovery_facility=repro.SpareConfig.shared("9 hr", 0.2),
    )
    design.add_level(repro.PrimaryCopy(name=f"{tier} foreground"), store=array)
    design.add_level(
        repro.VirtualSnapshot("6 hr", 4, name=f"{tier} snapshots"), store=array
    )
    design.add_level(
        repro.Backup("1 wk", "24 hr", "1 hr", 4, name=f"{tier} backup"),
        store=library,
        transport=san,
    )
    return design


def main() -> None:
    array = midrange_disk_array(spare=repro.SpareConfig.dedicated("60 s", 1.0))
    library = enterprise_tape_library(spare=repro.SpareConfig.dedicated("60 s", 1.0))
    san = san_link()

    portfolio = repro.Portfolio("three-tier service")
    portfolio.add_object(
        "database", oltp_database(), tiered_design("db", array, library, san)
    )
    portfolio.add_object(
        "application",
        web_server(400 * GB),
        tiered_design("app", array, library, san),
        depends_on=["database"],
    )
    portfolio.add_object(
        "web content",
        web_server(800 * GB),
        tiered_design("web", array, library, san),
        depends_on=["application"],
    )

    requirements = repro.BusinessRequirements.per_hour(40_000, 40_000)
    assessment = portfolio.evaluate(
        repro.FailureScenario.array_failure("primary-array"), requirements
    )

    util = assessment.utilization
    print(
        f"joint utilization: capacity {util.max_capacity_utilization:.1%} "
        f"({util.max_capacity_device}), bandwidth "
        f"{util.max_bandwidth_utilization:.1%} ({util.max_bandwidth_device})\n"
    )

    table = Table(
        headers=["object", "loss", "recovery start", "recovery finish"],
        title="Dependency-ordered recovery schedule (array failure)",
    )
    for name, outcome in assessment.outcomes.items():
        table.add_row(
            name,
            format_duration(outcome.data_loss.data_loss),
            format_duration(outcome.recovery_start),
            format_duration(outcome.recovery_finish),
        )
    print(table.render())
    print()

    print(
        bar_chart(
            {
                name: outcome.recovery_finish / HOUR
                for name, outcome in assessment.outcomes.items()
            },
            title="Outage experienced per object (hours)",
            formatter=lambda v: f"{v:.2f} h",
        )
    )
    print()
    print(assessment.summary())
    print(f"annual outlays: {format_money(assessment.total_outlays)}")
    print(
        "note: the business is down until the LAST tier returns -- "
        f"{format_duration(assessment.portfolio_recovery_time)}, not the "
        f"database's own "
        f"{format_duration(assessment.outcomes['database'].own_recovery_time)}."
    )


if __name__ == "__main__":
    main()
