#!/usr/bin/env python3
"""Automated design selection: the paper's outer optimization loop.

Enumerates a space of 16 candidate designs (PiT flavor x backup cadence
x vaulting cadence, plus mirror-based designs), evaluates each against
array and site failures, and picks the cheapest design that satisfies
the business's RTO/RPO — showing how the answer changes as the
objectives tighten.

Run:  python examples/design_optimizer.py
"""

from repro import casestudy
from repro.design import DesignSpace, candidate_designs, optimize
from repro.reporting import Table
from repro.scenarios import BusinessRequirements
from repro.units import format_money
from repro.workload.presets import cello


def main() -> None:
    workload = cello()
    scenarios = [
        casestudy.array_failure_scenario(),
        casestudy.site_failure_scenario(),
    ]
    candidates = candidate_designs(DesignSpace())
    print(f"design space: {len(candidates)} structurally valid candidates\n")

    objective_grid = [
        ("no objectives", None, None),
        ("RTO 24 h / RPO 48 h", "24 hr", "48 hr"),
        ("RTO 12 h / RPO 10 h", "12 hr", "10 hr"),
        ("RTO 3 h / RPO 5 min", "3 hr", "5 min"),
    ]

    table = Table(
        headers=["objectives", "feasible", "best design", "worst-case total"],
        title="Optimizer outcomes as objectives tighten",
    )
    for label, rto, rpo in objective_grid:
        requirements = BusinessRequirements.per_hour(
            50_000, 50_000, rto=rto, rpo=rpo
        )
        outcome = optimize(candidates, workload, scenarios, requirements)
        if outcome.best is not None:
            table.add_row(
                label,
                outcome.feasible_count,
                outcome.best.name,
                format_money(outcome.best.objective),
            )
        else:
            table.add_row(label, 0, "(none feasible)", "-")
    print(table.render())
    print()

    # Show the full unconstrained ranking.
    requirements = BusinessRequirements.per_hour(50_000, 50_000)
    outcome = optimize(candidates, workload, scenarios, requirements)
    ranking = Table(
        headers=["rank", "design", "worst-case total cost"],
        title="Unconstrained ranking (by worst-case total cost)",
    )
    for position, entry in enumerate(outcome.ranking, start=1):
        ranking.add_row(position, entry.name, format_money(entry.objective))
    print(ranking.render())
    print()

    # Hybrids: when rollback AND a tight RPO are both required, neither
    # pure family works — branching hierarchies to the rescue.
    from repro.scenarios import FailureScenario
    from repro.units import MB

    rollback_scenarios = scenarios + [
        FailureScenario.object_corruption(1 * MB, "24 hr")
    ]
    strict = BusinessRequirements.per_hour(
        50_000, 50_000, rto="12 hr", rpo="12 hr"
    )
    plain = optimize(candidates, workload, rollback_scenarios, strict)
    hybrids = candidate_designs(DesignSpace(), include_hybrids=True)
    hybrid = optimize(hybrids, workload, rollback_scenarios, strict)
    print(
        "with a 24 h rollback scenario plus RTO/RPO of 12 h:\n"
        f"  pure families ({len(candidates)} candidates): "
        f"{plain.feasible_count} feasible\n"
        f"  with hybrid mirror+tape branches ({len(hybrids)} candidates): "
        f"{hybrid.feasible_count} feasible; best = {hybrid.best.name} at "
        f"{format_money(hybrid.best.objective)}"
    )


if __name__ == "__main__":
    main()
