#!/usr/bin/env python3
"""Validating the analytic worst cases with discrete-event simulation.

Simulates six years of the baseline design's retrieval-point lifecycle,
injects array failures by sweep and adversarially, and compares the
measured data loss against the analytic worst-case bound.  Then runs a
degraded-mode study: how does two weeks of tape-backup downtime change
the exposure?

Run:  python examples/simulation_validation.py
"""

from repro import casestudy
from repro.core.demands import register_design_demands
from repro.reporting import Table
from repro.scenarios import FailureScenario
from repro.simulation import (
    DependabilitySimulator,
    adversarial_times,
    summarize_losses,
    sweep_times,
)
from repro.units import HOUR, WEEK
from repro.workload.presets import cello


def main() -> None:
    workload = cello()
    design = casestudy.baseline_design()
    register_design_demands(design, workload)

    simulator = DependabilitySimulator(design, horizon=320 * WEEK)
    simulator.build()
    print(
        f"simulated {simulator.horizon / WEEK:.0f} weeks, "
        f"{simulator.engine.processed} RP events\n"
    )

    scenario = FailureScenario.array_failure("primary-array")
    bound = simulator.analytic_bound(scenario)
    start, end = simulator.steady_state_window()

    table = Table(
        headers=["campaign", "max (hr)", "mean (hr)", "p95 (hr)",
                 "analytic bound (hr)"],
        title="Measured vs analytic data loss (array failure)",
    )
    for label, times in (
        ("sweep, 500 failures", sweep_times(start, end, 500)),
        ("adversarial", adversarial_times(simulator, 2, start, end)),
    ):
        stats = summarize_losses(simulator.measure_losses(scenario, times))
        table.add_row(
            label,
            f"{stats.max_loss / HOUR:.1f}",
            f"{stats.mean_loss / HOUR:.1f}",
            f"{stats.p95_loss / HOUR:.1f}",
            f"{bound / HOUR:.1f}",
        )
    print(table.render())
    print()

    # Degraded mode: tape backup service down for two weeks.
    degraded_design = casestudy.baseline_design()
    register_design_demands(degraded_design, workload)
    degraded = DependabilitySimulator(degraded_design, horizon=320 * WEEK)
    outage_start = start + 2 * WEEK
    degraded.disable_level(2, outage_start, outage_start + 2 * WEEK)
    degraded.build()

    table = Table(
        headers=["failure instant", "healthy loss (hr)", "degraded loss (hr)"],
        title="Degraded mode: two weeks without tape backup",
    )
    for offset_weeks in (0.5, 1.0, 2.0, 3.0):
        probe = outage_start + offset_weeks * WEEK
        healthy_loss = simulator.measure_loss(scenario, probe).data_loss
        degraded_loss = degraded.measure_loss(scenario, probe).data_loss
        table.add_row(
            f"outage start + {offset_weeks:g} wk",
            f"{healthy_loss / HOUR:.1f}",
            f"{degraded_loss / HOUR:.1f}",
        )
    print(table.render())
    print()
    print(
        "Takeaway: the analytic bound is both safe (never exceeded) and "
        "tight (achieved by adversarial failure times); a backup outage "
        "inflates exposure by roughly its own duration."
    )


if __name__ == "__main__":
    main()
