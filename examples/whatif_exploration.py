#!/usr/bin/env python3
"""What-if exploration: the paper's Table 7, and one step beyond.

Evaluates the seven case-study designs under array and site failures
(Table 7), then extends the exploration the way a storage architect
would: what if the vault went to *daily* shipments, and what if the
batched mirror used a 5-minute window to cut link demand?

Run:  python examples/whatif_exploration.py
"""

from repro import casestudy
from repro.design import run_whatif
from repro.reporting import whatif_report
from repro.techniques import RemoteVaulting
from repro.units import HOUR, format_duration, format_money
from repro.workload.presets import cello


def daily_vault_design():
    """Baseline with daily vault shipments (beyond the paper's grid)."""
    return casestudy._tape_design(
        "daily vault (extension)",
        casestudy._baseline_split_mirror(),
        casestudy._baseline_backup(),
        RemoteVaulting(
            accumulation_window="1 wk",  # ship weekly: fulls only exist weekly
            propagation_window="24 hr",
            hold_window="1 hr",
            retention_count=156,
        ),
    )


def main() -> None:
    workload = cello()
    requirements = casestudy.case_study_requirements()
    scenarios = [
        casestudy.array_failure_scenario(),
        casestudy.site_failure_scenario(),
    ]

    designs = {
        name: (lambda d=factory: d())
        for name, factory in {
            "baseline": casestudy.baseline_design,
            "weekly vault": casestudy.weekly_vault_design,
            "weekly vault, F+I": casestudy.weekly_vault_incrementals_design,
            "weekly vault, daily F": casestudy.weekly_vault_daily_fulls_design,
            "weekly vault, daily F, snapshot":
                casestudy.weekly_vault_daily_fulls_snapshot_design,
            "asyncB mirror, 1 link": lambda: casestudy.async_batch_mirror_design(1),
            "asyncB mirror, 10 links": lambda: casestudy.async_batch_mirror_design(10),
            "daily vault (extension)": daily_vault_design,
        }.items()
    }

    results = run_whatif(designs, workload, scenarios, requirements)
    grid = {r.design_name: r.assessments for r in results}
    labels = list(results[0].assessments.keys())
    print(whatif_report(grid, labels, title="Table 7 (+1 extension): what-if scenarios"))
    print()

    cheapest = min(results, key=lambda r: r.worst_total_cost)
    fastest = min(results, key=lambda r: r.worst_recovery_time)
    safest = min(results, key=lambda r: r.worst_data_loss)
    print(
        f"cheapest worst-case total: {cheapest.design_name} "
        f"({format_money(cheapest.worst_total_cost)})"
    )
    print(
        f"fastest worst-case recovery: {fastest.design_name} "
        f"({format_duration(fastest.worst_recovery_time)})"
    )
    print(
        f"least worst-case data loss: {safest.design_name} "
        f"({format_duration(safest.worst_data_loss)})"
    )


if __name__ == "__main__":
    main()
