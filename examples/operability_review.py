#!/usr/bin/env python3
"""An operability review: the questions an SRE asks beyond the paper.

Uses the framework's extension modules on the baseline design:

* **recovery options** — every viable recovery source per failure, with
  its loss/time trade (the paper always picks the loss-optimal source);
* **headroom** — how much workload growth the design absorbs before a
  device over-commits;
* **expected availability** — frequency-weighted downtime and "nines";
* **degraded-mode exposure** — how a two-week tape-backup outage
  inflates the data-loss exposure, and how long recovery takes to
  normalize after service restoration.

Run:  python examples/operability_review.py
"""

from repro import casestudy
from repro.core.demands import register_design_demands
from repro.core.options import recovery_options
from repro.design import (
    FailureFrequencies,
    expected_availability,
    max_supported_capacity,
    max_supported_scale,
)
from repro.reporting import Table
from repro.scenarios import FailureScenario
from repro.simulation import exposure_profile
from repro.units import HOUR, MB, WEEK, format_duration
from repro.workload.presets import cello


def main() -> None:
    workload = cello()
    requirements = casestudy.case_study_requirements()

    # 1. Recovery options for a day-old object rollback.
    design = casestudy.baseline_design()
    register_design_demands(design, workload)
    scenario = FailureScenario.object_corruption(1 * MB, "24 hr")
    table = Table(
        headers=["recovery source", "worst-case loss", "recovery time"],
        title="Recovery options: 1 MB object, 24 h rollback",
    )
    for option in recovery_options(design, scenario, workload):
        table.add_row(
            option.source_name,
            format_duration(option.data_loss),
            format_duration(option.recovery_time),
        )
    print(table.render())
    print("(the paper's rule picks the first row: loss-optimal)\n")

    # 2. Headroom.
    scale = max_supported_scale(casestudy.baseline_design(), workload)
    growth = max_supported_capacity(casestudy.baseline_design(), workload)
    print(
        f"headroom: rates can grow {scale:.1f}x before a bandwidth envelope "
        f"binds; the dataset can grow {growth:.2f}x before the array's "
        "capacity binds (it runs at 87% today).\n"
    )

    # 3. Expected availability under assumed failure frequencies.
    frequencies = FailureFrequencies(
        [
            (casestudy.array_failure_scenario(), 0.5),   # one array loss / 2 yr
            (casestudy.site_failure_scenario(), 0.01),   # site disaster / century
        ]
    )
    summary = expected_availability(
        casestudy.baseline_design, workload, frequencies, requirements
    )
    print(
        f"expected availability: {summary.availability:.5%} "
        f"({summary.nines:.1f} nines; "
        f"{summary.expected_annual_downtime / HOUR:.1f} h expected "
        "downtime/yr)\n"
    )

    # 4. Degraded-mode exposure: tape backup down for two weeks.
    profile = exposure_profile(
        casestudy.baseline_design,
        workload,
        FailureScenario.array_failure("primary-array"),
        level_index=2,
        outage_start=40 * WEEK,
        outage_duration=2 * WEEK,
        horizon=320 * WEEK,
        probes=13,
    )
    table = Table(
        headers=["probe (vs outage start)", "healthy loss", "degraded loss",
                 "extra exposure"],
        title="Exposure profile: tape backup out for 2 weeks",
    )
    for point in profile.points:
        table.add_row(
            format_duration(point.probe_time - profile.outage_start),
            format_duration(point.healthy_loss),
            format_duration(point.degraded_loss),
            format_duration(point.extra_exposure),
        )
    print(table.render())
    print(
        f"peak extra exposure: {format_duration(profile.peak_extra_exposure)}; "
        "exposure normalizes "
        f"{format_duration(profile.recovery_probe() - profile.outage_end)} "
        "after service restoration."
    )


if __name__ == "__main__":
    main()
