#!/usr/bin/env python3
"""The run observatory: ledgers, structural diffs, regression attribution.

Writes two complete run ledgers of the same evaluation under one runs
root — the second with a seeded slowdown injected into recovery
planning — then loads them back through the observatory and prints:

* the run index (``repro runs list``),
* the structural diff (``repro runs diff``): span deltas, metric
  deltas, and the task join by content-addressed key,
* the regression attribution — the deepest span path that explains
  the seeded slowdown (the ``assess`` phase, which hosts the patched
  call), found by walking the merged call-path trees top-down,

demonstrating that the diff separates *performance drift* (the sleep:
same task keys, same result digests, slower spans) from *correctness
drift* (different digests — absent here, because a sleep changes no
answer).

The equivalent from the command line:

    python -m repro evaluate spec.json --cache-dir c --run-dir runs/a
    python -m repro evaluate spec.json --cache-dir c --run-dir runs/b --baseline a
    python -m repro runs diff a b --runs-root runs --fail-on-regression

Run:  python examples/run_observatory.py
"""

import shutil
import tempfile
import time

from importlib import import_module

from repro import casestudy, obs
from repro.engine import EvaluationTask, map_evaluations
from repro.obs.diff import diff_runs
from repro.obs.runs import RunRecord, RunStore, TaskLog
from repro.reporting.runs_report import run_diff_report, runs_list_report
from repro.workload.presets import cello


def record_run(directory: str, run_id: str) -> None:
    """One fully-instrumented evaluation, persisted as a run ledger."""
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    task_log = TaskLog()
    ledger = obs.RunLedger(directory, run_id=run_id, argv=["example"])
    with obs.use_tracer(tracer), obs.use_metrics(registry), \
            obs.use_task_log(task_log):
        ledger.begin(
            extra={
                "command": "example",
                "model_schema_version": "engine-example",
            }
        )
        task = EvaluationTask(
            name="baseline",
            workload=cello(),
            scenarios=tuple(casestudy.case_study_scenarios()),
            requirements=casestudy.case_study_requirements(),
            factory=casestudy.baseline_design,
        )
        (outcome,) = map_evaluations([task])
        assert outcome.ok
        ledger.finish(tracer, registry, tasks=task_log.records)


def main() -> None:
    root = tempfile.mkdtemp(prefix="observatory-")
    try:
        # Run 1: the baseline.
        record_run(f"{root}/base", run_id="example-base")

        # Run 2: the same work with a seeded ~40ms slowdown wrapped
        # around recovery planning — the attribution walk should
        # descend to the assess span that hosts the patched call.
        # (import_module, because repro.core re-exports the evaluate
        # *function* under the submodule's name.)
        evaluate_module = import_module("repro.core.evaluate")
        original = evaluate_module.plan_recovery

        def slowed(*args, **kwargs):
            time.sleep(0.04)
            return original(*args, **kwargs)

        evaluate_module.plan_recovery = slowed
        try:
            record_run(f"{root}/slow", run_id="example-slow")
        finally:
            evaluate_module.plan_recovery = original

        # The observatory: index, then diff.
        store = RunStore(root)
        print(runs_list_report(store.scan(), store.skipped))
        print()

        diff = diff_runs(
            RunRecord.load(f"{root}/base"),
            RunRecord.load(f"{root}/slow"),
        )
        print(run_diff_report(diff))
        print()

        assert diff.has_regressions, "the seeded slowdown must be attributed"
        assert not diff.has_drift, "a sleep changes timings, never answers"
        (attribution,) = diff.regressions[:1]
        print(f"attributed: {attribution.describe()}")
        print(f"deepest span: {attribution.leaf}")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
