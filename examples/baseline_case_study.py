#!/usr/bin/env python3
"""The paper's full case study, reproduced end to end.

Evaluates the baseline design (split mirroring + weekly tape backup +
4-weekly vaulting, Figure 1 / Tables 3-4) on the cello workload
(Table 2) under the three failure scopes, and prints:

* Table 5 — normal-mode utilization,
* Table 6 — worst-case recovery time and recent data loss,
* Figure 5 — the cost breakdown (outlays per technique + penalties),
* Figure 4 — the site-disaster recovery timeline.

Run:  python examples/baseline_case_study.py
"""

from repro import casestudy, evaluate_scenarios
from repro.reporting import (
    cost_breakdown_report,
    dependability_report,
    utilization_report,
)
from repro.workload.presets import cello


def main() -> None:
    workload = cello()
    design = casestudy.baseline_design()
    print(design.render_hierarchy(), "\n")
    print(f"workload: {workload.describe()}\n")

    results = evaluate_scenarios(
        design,
        workload,
        casestudy.case_study_scenarios(),
        casestudy.case_study_requirements(),
    )

    first = next(iter(results.values()))
    print(utilization_report(first.utilization, title="Table 5: normal mode utilization"))
    print()
    print(dependability_report(results, title="Table 6: worst-case RT and DL"))
    print()
    print(cost_breakdown_report(results, title="Figure 5: overall system cost"))
    print()

    site = next(a for key, a in results.items() if "site" in key)
    print("Figure 4: site-disaster recovery timeline")
    print(site.recovery.render_timeline())


if __name__ == "__main__":
    main()
