#!/usr/bin/env python3
"""Extending the framework with a new technique: erasure-coded archival.

The paper's stated goal is that its abstractions "facilitate the
inclusion of new techniques as they become available".  This example
puts that to the test: a k-of-n wide-area erasure-coded archive (in the
spirit of the paper's OceanStore reference) implemented purely on the
common parameter set, dropped into a design, and compared head-to-head
against classic tape vaulting for site-disaster protection.

Run:  python examples/erasure_archive.py
"""

import repro
from repro.devices.base import Device
from repro.devices.catalog import (
    air_shipment,
    enterprise_tape_library,
    midrange_disk_array,
    oc3_links,
    offsite_vault,
    san_link,
)
from repro.devices.costs import CostModel
from repro.reporting import Table
from repro.scenarios.locations import REMOTE_SITE
from repro.techniques import ErasureCodedArchive
from repro.units import GB, format_duration, format_money
from repro.workload.presets import cello


def vaulting_design():
    """The classic: tape backup + 4-weekly vault shipments."""
    array = midrange_disk_array(spare=repro.SpareConfig.dedicated("60 s", 1.0))
    design = repro.StorageDesign(
        "tape vaulting", recovery_facility=repro.SpareConfig.shared("9 hr", 0.2)
    )
    design.add_level(repro.PrimaryCopy(), store=array)
    design.add_level(repro.SplitMirror("12 hr", 4), store=array)
    design.add_level(
        repro.Backup("1 wk", "48 hr", "1 hr", 4),
        store=enterprise_tape_library(spare=repro.SpareConfig.dedicated("60 s", 1.0)),
        transport=san_link(),
    )
    design.add_level(
        repro.RemoteVaulting("4 wk", "24 hr", "676 hr", 39),
        store=offsite_vault(),
        transport=air_shipment(),
    )
    return design


def erasure_design():
    """The newcomer: nightly 4-of-6 coded archive spread over the WAN."""
    array = midrange_disk_array(spare=repro.SpareConfig.dedicated("60 s", 1.0))
    fragment_store = Device(
        "fragment-store",
        max_capacity=200_000 * GB,
        max_bandwidth=float("inf"),
        cost_model=CostModel.from_paper_units(fixed=30_000.0, per_gb=1.1),
        location=REMOTE_SITE,
    )
    design = repro.StorageDesign(
        "erasure archive", recovery_facility=repro.SpareConfig.shared("9 hr", 0.2)
    )
    design.add_level(repro.PrimaryCopy(), store=array)
    design.add_level(repro.SplitMirror("12 hr", 4), store=array)
    design.add_level(
        ErasureCodedArchive(
            data_fragments=4,
            total_fragments=6,
            accumulation_window="24 hr",
            propagation_window="12 hr",
            retention_count=28,
        ),
        store=fragment_store,
        transport=oc3_links(2),
    )
    return design


def main() -> None:
    workload = cello()
    requirements = repro.BusinessRequirements.per_hour(50_000, 50_000)
    scenario = repro.FailureScenario.site_disaster()

    table = Table(
        headers=["design", "site RT", "site DL", "outlays", "total cost"],
        title="Site-disaster protection: tape vaulting vs erasure archive",
    )
    for factory in (vaulting_design, erasure_design):
        design = factory()
        result = repro.evaluate(design, workload, scenario, requirements)
        table.add_row(
            design.name,
            format_duration(result.recovery_time),
            format_duration(result.recent_data_loss),
            format_money(result.costs.total_outlays),
            format_money(result.total_cost),
        )
    print(table.render())
    print()
    print(
        "The coded archive ships RPs nightly over the WAN instead of "
        "4-weekly by courier: ~40x less data loss at a site disaster, no "
        "24 h shipment on the recovery path, for extra WAN and remote "
        "capacity outlays. The interesting part is HOW LITTLE code it "
        "took: see src/repro/techniques/erasure.py -- one technique "
        "class on the paper's common abstractions."
    )


if __name__ == "__main__":
    main()
