#!/usr/bin/env python3
"""Instrumented evaluation: tracing, metrics, and provenance.

Evaluates the baseline design with a real tracer and metrics registry
installed (both are no-ops by default), then prints:

* the per-phase span tree — where the evaluation spent its time,
* the metrics table — counters, gauges, and latency histograms,
* the provenance record — *why* each of the four output metrics
  (utilization, recovery time, data loss, cost) came out as it did,

and finally exports everything as JSONL, the same format the CLI's
``--trace-out`` flag writes.

The equivalent from the command line:

    python -m repro case-study --trace --metrics --trace-out trace.jsonl

Run:  python examples/traced_evaluation.py
"""

import io

from repro import casestudy, evaluate_scenarios, obs
from repro.obs.export import write_trace_jsonl
from repro.reporting import metrics_report, provenance_report, span_tree_report
from repro.workload.presets import cello


def main() -> None:
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()

    with obs.use_tracer(tracer), obs.use_metrics(registry):
        results = evaluate_scenarios(
            casestudy.baseline_design(),
            cello(),
            casestudy.case_study_scenarios(),
            casestudy.case_study_requirements(),
        )

    print(span_tree_report(tracer))
    print()
    print(metrics_report(registry))
    print()
    print(provenance_report(results, title="Provenance: baseline design"))

    # Every assessment also explains itself directly:
    array = next(a for key, a in results.items() if "array" in key)
    print("\nassessment.explain() for the array-failure scenario:\n")
    print(array.explain())

    # The JSONL export (what --trace-out writes): one record per line,
    # spans depth-first so the tree rebuilds from the "depth" field.
    buffer = io.StringIO()
    count = write_trace_jsonl(buffer, tracer=tracer, metrics=registry)
    print(f"\nJSONL export: {count} records, first three lines:")
    for line in buffer.getvalue().splitlines()[:3]:
        print(" ", line)


if __name__ == "__main__":
    main()
