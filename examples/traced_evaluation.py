#!/usr/bin/env python3
"""Instrumented evaluation: tracing, metrics, and provenance.

Evaluates the baseline design with a real tracer and metrics registry
installed (both are no-ops by default), then prints:

* the per-phase span tree — where the evaluation spent its time,
* the aggregated span profile — call counts, cumulative/self time,
  and the merged hot call paths,
* the metrics table — counters, gauges, and latency histograms with
  p50/p90/p99 estimates,
* the provenance record — *why* each of the four output metrics
  (utilization, recovery time, data loss, cost) came out as it did,

and finally exports everything as JSONL (the CLI's ``--trace-out``
format) and as an OpenMetrics exposition (``--metrics-out``).

The equivalent from the command line:

    python -m repro case-study --trace --profile --metrics --trace-out trace.jsonl

Run:  python examples/traced_evaluation.py
"""

import io

from repro import casestudy, evaluate_scenarios, obs
from repro.obs.export import openmetrics_text, write_trace_jsonl
from repro.reporting import metrics_report, provenance_report, span_tree_report
from repro.reporting.obs_report import profile_report
from repro.workload.presets import cello


def main() -> None:
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()

    with obs.use_tracer(tracer), obs.use_metrics(registry):
        results = evaluate_scenarios(
            casestudy.baseline_design(),
            cello(),
            casestudy.case_study_scenarios(),
            casestudy.case_study_requirements(),
        )

    print(span_tree_report(tracer))
    print()
    print(profile_report(tracer))
    print()
    print(metrics_report(registry))
    print()
    print(provenance_report(results, title="Provenance: baseline design"))

    # Every assessment also explains itself directly:
    array = next(a for key, a in results.items() if "array" in key)
    print("\nassessment.explain() for the array-failure scenario:\n")
    print(array.explain())

    # The JSONL export (what --trace-out writes): one record per line,
    # spans depth-first so the tree rebuilds from the "depth" field.
    buffer = io.StringIO()
    count = write_trace_jsonl(buffer, tracer=tracer, metrics=registry)
    print(f"\nJSONL export: {count} records, first three lines:")
    for line in buffer.getvalue().splitlines()[:3]:
        print(" ", line)

    # The OpenMetrics exposition (what --metrics-out writes), ready
    # for a Prometheus scrape or a pushgateway:
    exposition = openmetrics_text(registry)
    print(f"\nOpenMetrics export, first three lines of {len(exposition)} chars:")
    for line in exposition.splitlines()[:3]:
        print(" ", line)


if __name__ == "__main__":
    main()
