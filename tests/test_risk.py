"""The probabilistic risk subsystem: ensembles, k-of-n, folding, MC.

The load-bearing contracts:

* a one-member, 1-per-year ensemble reproduces the deterministic
  ``evaluate`` result exactly (the degenerate anchor);
* cascade and correlation splits conserve total rate;
* the analytic compound-Poisson fold matches the seeded Monte Carlo
  cross-check within grid resolution;
* the JSON report is byte-identical across serial, parallel, factory
  and warm-cache runs.
"""

import json
import math

import numpy as np
import pytest

from repro import casestudy
from repro.core.evaluate import evaluate
from repro.engine import EngineConfig, ResultCache
from repro.exceptions import DesignError, ReproError, RiskError
from repro.risk import (
    CascadeSpec,
    EnsembleMember,
    KofNModel,
    ScenarioEnsemble,
    array_failure_during_backup_window,
    assess_risk,
    compound_poisson_distribution,
    correlated_pair,
    cross_check,
    degenerate_assessment,
    empirical_distribution,
    object_corruption_grid,
    scenario_digest,
    simulated_loss_check,
)
from repro.scenarios import FailureScenario
from repro.serialization import (
    canonical_json,
    ensemble_from_spec,
    ensemble_to_dict,
)
from repro.units import DAY, HOUR, MB, MINUTE, YEAR
from repro.workload.presets import cello


@pytest.fixture(scope="module")
def baseline():
    return casestudy.baseline_design()


@pytest.fixture(scope="module")
def workload():
    return cello()


@pytest.fixture(scope="module")
def requirements():
    return casestudy.case_study_requirements()


def array():
    return FailureScenario.array_failure()


def site():
    return casestudy.site_failure_scenario()


class TestRiskError:
    def test_is_model_error_and_value_error(self):
        assert issubclass(RiskError, ReproError)
        assert issubclass(RiskError, ValueError)


class TestEnsembleMember:
    def test_per_year_round_trips(self):
        member = EnsembleMember.per_year("m", array(), 2.0)
        assert member.rate_per_year == pytest.approx(2.0, rel=1e-12)
        assert member.occurrence_rate == pytest.approx(2.0 / YEAR)

    def test_empty_id_rejected(self):
        with pytest.raises(RiskError, match="non-empty"):
            EnsembleMember("", array(), 1.0 / YEAR)

    def test_non_positive_rate_rejected(self):
        for rate in (0.0, -1.0, float("nan")):
            with pytest.raises(RiskError, match="non-positive"):
                EnsembleMember("m", array(), rate)


class TestEnsemble:
    def test_duplicate_ids_rejected_across_groups(self):
        cascade = CascadeSpec(
            "twin", array(), 0.1 / YEAR, site(), probability=0.5
        )
        with pytest.raises(RiskError, match="duplicate member id"):
            ScenarioEnsemble(
                "e",
                (EnsembleMember.per_year("twin", array(), 1.0),),
                (cascade,),
            )

    def test_empty_ensemble_rejected(self):
        with pytest.raises(RiskError, match="no members"):
            ScenarioEnsemble("empty", ())

    def test_total_rate_includes_cascades(self):
        cascade = CascadeSpec(
            "c", array(), 0.25 / YEAR, site(), probability=0.5
        )
        ensemble = ScenarioEnsemble(
            "e",
            (EnsembleMember.per_year("m", array(), 1.0),),
            (cascade,),
        )
        assert len(ensemble) == 2
        assert ensemble.total_rate * YEAR == pytest.approx(1.25, rel=1e-12)


class TestCorrelatedPair:
    def test_split_conserves_rate(self):
        members = correlated_pair(
            "arr", array(), site(), 0.5 / YEAR, 0.25
        )
        assert [m.member_id for m in members] == ["arr.corr", "arr"]
        total = sum(m.occurrence_rate for m in members)
        assert total == pytest.approx(0.5 / YEAR, rel=1e-12)
        assert members[0].occurrence_rate == pytest.approx(0.125 / YEAR)

    def test_full_correlation_yields_single_member(self):
        members = correlated_pair("arr", array(), site(), 0.5 / YEAR, 1.0)
        assert [m.member_id for m in members] == ["arr.corr"]

    def test_fraction_outside_unit_interval_rejected(self):
        for fraction in (0.0, -0.5, 1.5):
            with pytest.raises(RiskError, match="outside"):
                correlated_pair("arr", array(), site(), 0.5 / YEAR, fraction)

    def test_backup_window_helper_defaults_to_building(self):
        members = array_failure_during_backup_window(
            "arr", 0.5 / YEAR, 0.25
        )
        assert members[0].scenario == FailureScenario.building_disaster()
        assert members[1].scenario == FailureScenario.array_failure()


class TestCascadeSpec:
    def test_needs_exactly_one_mechanism(self):
        with pytest.raises(RiskError, match="exactly one"):
            CascadeSpec("c", array(), 0.1 / YEAR, site())
        with pytest.raises(RiskError, match="exactly one"):
            CascadeSpec(
                "c", array(), 0.1 / YEAR, site(),
                secondary_rate=0.5 / YEAR, probability=0.5,
            )

    def test_probability_outside_unit_interval_rejected(self):
        for probability in (0.0, -0.1, 1.0001):
            with pytest.raises(RiskError, match="outside"):
                CascadeSpec(
                    "c", array(), 0.1 / YEAR, site(),
                    probability=probability,
                )

    def test_rate_derived_probability(self):
        cascade = CascadeSpec(
            "c", array(), 0.1 / YEAR, site(), secondary_rate=0.5 / YEAR
        )
        window = 26.4 * HOUR
        expected = 1.0 - math.exp(-(0.5 / YEAR) * window)
        assert cascade.cascade_probability(window) == pytest.approx(expected)
        # A design that cannot recover has no finite exposure window.
        assert cascade.cascade_probability(float("inf")) == 1.0
        with pytest.raises(RiskError, match="recovery time"):
            cascade.cascade_probability(float("nan"))

    def test_split_conserves_rate(self):
        cascade = CascadeSpec(
            "c", array(), 0.1 / YEAR, site(), probability=0.25
        )
        members = cascade.split(0.0)
        assert [m.member_id for m in members] == ["c.cascade", "c"]
        assert members[0].scenario == site()
        assert members[1].scenario == array()
        total = sum(m.occurrence_rate for m in members)
        assert total == pytest.approx(0.1 / YEAR, rel=1e-12)

    def test_certain_cascade_yields_single_escalated_member(self):
        cascade = CascadeSpec(
            "c", array(), 0.1 / YEAR, site(), probability=1.0
        )
        members = cascade.split(0.0)
        assert [m.member_id for m in members] == ["c.cascade"]
        assert members[0].occurrence_rate == pytest.approx(0.1 / YEAR)


class TestKofN:
    def test_mirrored_pair_matches_classic_formula(self):
        lam, tau = 2.0 / YEAR, 8 * HOUR
        for repair in ("parallel", "serial"):
            model = KofNModel(2, 1, lam, tau, repair)
            assert model.effective_failure_rate() == pytest.approx(
                2 * lam * lam * tau, rel=1e-12
            )

    def test_serial_repair_stretches_by_m_factorial(self):
        lam, tau = 2.0 / YEAR, 8 * HOUR
        parallel = KofNModel(8, 6, lam, tau, "parallel")
        serial = KofNModel(8, 6, lam, tau, "serial")
        assert serial.tolerated_failures == 2
        assert serial.effective_failure_rate() == pytest.approx(
            2 * parallel.effective_failure_rate(), rel=1e-12
        )

    def test_no_redundancy_degenerates_to_sum_of_unit_rates(self):
        lam = 2.0 / YEAR
        model = KofNModel(4, 4, lam, 8 * HOUR)
        assert model.effective_failure_rate() == pytest.approx(4 * lam)

    def test_mttf_is_reciprocal(self):
        model = KofNModel(2, 1, 2.0 / YEAR, 8 * HOUR)
        assert model.mttf() == pytest.approx(
            1.0 / model.effective_failure_rate()
        )

    def test_member_carries_effective_rate(self):
        model = KofNModel(2, 1, 2.0 / YEAR, 8 * HOUR)
        member = model.member("raid", array())
        assert member.occurrence_rate == pytest.approx(
            model.effective_failure_rate()
        )

    def test_invalid_shapes_rejected(self):
        with pytest.raises(RiskError, match="k <= n"):
            KofNModel(2, 3, 2.0 / YEAR, 8 * HOUR)
        with pytest.raises(RiskError, match="repair must be"):
            KofNModel(2, 1, 2.0 / YEAR, 8 * HOUR, "magic")
        with pytest.raises(RiskError, match="positive"):
            KofNModel(2, 1, 0.0, 8 * HOUR)

    def test_approximation_validity_enforced(self):
        # unit_rate * repair_time = 0.1: the first-order approximation
        # is no longer trustworthy and construction must refuse.
        with pytest.raises(RiskError, match="too large"):
            KofNModel(2, 1, 0.1 / HOUR, 1 * HOUR)


class TestCompoundPoisson:
    def test_mean_is_exact(self):
        rate, severity = 3.0 / YEAR, 4 * HOUR
        dist = compound_poisson_distribution([(rate, severity)], YEAR)
        assert dist.mean == pytest.approx(rate * YEAR * severity, rel=1e-12)

    def test_quantiles_are_event_count_multiples(self):
        # Intensity 1/yr: P(0)=.368, P(<=1)=.736, P(<=2)=.920, P(<=3)=.981.
        severity = 4 * HOUR
        dist = compound_poisson_distribution([(1.0 / YEAR, severity)], YEAR)
        step = severity / 100  # far below one grid step's worth of slack
        assert abs(dist.p50 - severity) < severity * 0.01 + step
        assert abs(dist.p90 - 2 * severity) < 2 * severity * 0.01 + step
        assert abs(dist.p99 - 4 * severity) < 4 * severity * 0.01 + step

    def test_rare_event_quantiles_are_zero(self):
        dist = compound_poisson_distribution([(0.001 / YEAR, HOUR)], YEAR)
        assert dist.p50 == 0.0
        assert dist.p99 == 0.0
        assert dist.mean == pytest.approx(0.001 * HOUR)

    def test_infinite_severity_is_an_atom_at_infinity(self):
        # lam_inf = ln 2 over the horizon: P(finite) = 0.5 exactly, so
        # p50 sits on the atom and everything above it is infinite.
        rate = math.log(2.0) / YEAR
        dist = compound_poisson_distribution([(rate, float("inf"))], YEAR)
        assert dist.mean == float("inf")
        assert dist.p50 == float("inf")
        assert dist.p99 == float("inf")

    def test_mixed_finite_and_infinite_severities(self):
        # P(no infinite event) = exp(-0.02) = .980: p50/p90/p95 are the
        # finite part's conditional quantiles, p99 crosses the atom.
        entries = [(1.0 / YEAR, 4 * HOUR), (0.02 / YEAR, float("inf"))]
        dist = compound_poisson_distribution(entries, YEAR)
        assert dist.mean == float("inf")
        assert math.isfinite(dist.p50)
        assert math.isfinite(dist.p95)
        assert dist.p99 == float("inf")

    def test_normal_approximation_branch(self):
        # Intensity 1000 is past the Panjer underflow threshold; the
        # matched normal must hold the CLT relations.
        rate, severity = 1000.0 / YEAR, 1 * MINUTE
        dist = compound_poisson_distribution([(rate, severity)], YEAR)
        mean, sigma = 1000.0 * severity, math.sqrt(1000.0) * severity
        assert dist.mean == pytest.approx(mean, rel=1e-12)
        assert dist.p50 == pytest.approx(mean, rel=1e-3)
        assert dist.p90 == pytest.approx(mean + 1.2816 * sigma, rel=1e-3)
        assert dist.p99 == pytest.approx(mean + 2.3263 * sigma, rel=1e-3)

    def test_zero_severity_entries_are_absorbed(self):
        dist = compound_poisson_distribution([(5.0 / YEAR, 0.0)], YEAR)
        assert dist.mean == 0.0
        assert dist.p99 == 0.0

    def test_validation(self):
        with pytest.raises(RiskError, match="horizon"):
            compound_poisson_distribution([(1.0 / YEAR, 1.0)], 0.0)
        with pytest.raises(RiskError, match="bins"):
            compound_poisson_distribution([(1.0 / YEAR, 1.0)], YEAR, bins=1)
        with pytest.raises(RiskError, match="non-positive rate"):
            compound_poisson_distribution([(0.0, 1.0)], YEAR)
        with pytest.raises(RiskError, match="not >= 0"):
            compound_poisson_distribution([(1.0 / YEAR, -1.0)], YEAR)
        with pytest.raises(RiskError, match="not >= 0"):
            compound_poisson_distribution([(1.0 / YEAR, float("nan"))], YEAR)

    def test_quantile_accessor(self):
        dist = compound_poisson_distribution([(1.0 / YEAR, HOUR)], YEAR)
        assert dist.quantile("p90") == dist.p90
        with pytest.raises(RiskError, match="unknown quantile"):
            dist.quantile("p17")


class TestEmpiricalDistribution:
    def test_inverted_cdf_quantiles(self):
        samples = np.arange(10, dtype=float)
        dist = empirical_distribution(samples)
        assert dist.mean == pytest.approx(4.5)
        assert dist.p50 == 4.0
        assert dist.p90 == 8.0
        assert dist.p99 == 9.0

    def test_infinite_samples_do_not_bleed_into_finite_quantiles(self):
        samples = np.array([1.0, 2.0, 3.0, float("inf")])
        dist = empirical_distribution(samples)
        assert dist.mean == float("inf")
        assert dist.p50 == 2.0
        assert dist.p99 == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(RiskError, match="empty"):
            empirical_distribution(np.array([]))


class TestMonteCarlo:
    ROWS = [
        ("a", 2.0 / YEAR, 4.0 * HOUR, 600.0, 100.0),
        ("b", 0.5 / YEAR, 26.4 * HOUR, 0.0, 2500.0),
        ("c", 12.0 / YEAR, 0.0, 30.0, 5.0),
    ]

    def test_row_order_never_matters(self):
        forward = cross_check(self.ROWS, YEAR, 500, seed=7)
        backward = cross_check(list(reversed(self.ROWS)), YEAR, 500, seed=7)
        assert forward == backward

    def test_seed_changes_the_samples(self):
        assert cross_check(self.ROWS, YEAR, 500, seed=7) != cross_check(
            self.ROWS, YEAR, 500, seed=8
        )

    def test_matches_analytic_mean(self):
        result = cross_check(self.ROWS, YEAR, 20000, seed=3)
        expected = sum(r * YEAR * d for _, r, d, _, _ in self.ROWS)
        assert result.downtime.mean == pytest.approx(expected, rel=0.05)

    def test_infinite_severity_rows(self):
        rows = [("doom", 100.0 / YEAR, float("inf"), 0.0, 0.0)]
        result = cross_check(rows, YEAR, 200, seed=0)
        assert result.downtime.p50 == float("inf")
        assert result.loss.p99 == 0.0

    def test_validation(self):
        with pytest.raises(RiskError, match="sample"):
            cross_check(self.ROWS, YEAR, 0)
        with pytest.raises(RiskError, match="horizon"):
            cross_check(self.ROWS, 0.0, 10)


class TestAssessRisk:
    def test_degenerate_ensemble_reproduces_evaluate(
        self, baseline, workload, requirements
    ):
        scenario = array()
        ensemble = ScenarioEnsemble(
            "degenerate",
            (EnsembleMember.per_year("only", scenario, 1.0),),
        )
        assessment = assess_risk(baseline, workload, ensemble, requirements)
        expected = degenerate_assessment(
            evaluate(baseline, workload, scenario, requirements)
        )
        assert len(assessment.members) == 1
        outcome = assessment.members[0]
        # rate_per_year round-trips through per-second with ~1 ulp slack.
        assert outcome.rate_per_year == pytest.approx(1.0, rel=1e-12)
        assert _same_outcome(outcome, expected)
        assert assessment.unique_scenarios == 1
        # Mean annual downtime of a 1/yr event over 1 yr is one event.
        assert assessment.downtime.mean == pytest.approx(
            expected.recovery_time, rel=1e-9
        )
        assert assessment.loss.mean == pytest.approx(
            expected.data_loss, rel=1e-9
        )
        assert assessment.penalty.mean == pytest.approx(
            expected.penalty, rel=1e-9
        )

    def test_generated_grid_dedupes_to_distinct_scenarios(
        self, baseline, workload, requirements
    ):
        ensemble = object_corruption_grid(50, 6.0, distinct_ages=5)
        assessment = assess_risk(baseline, workload, ensemble, requirements)
        assert len(assessment.members) == 50
        assert assessment.unique_scenarios == 5
        assert assessment.total_rate_per_year == pytest.approx(
            6.0, rel=1e-12
        )

    def test_cascade_expansion_conserves_rate(
        self, baseline, workload, requirements
    ):
        cascade = CascadeSpec(
            "site-during-recovery",
            array(),
            0.2 / YEAR,
            site(),
            secondary_rate=0.5 / YEAR,
        )
        ensemble = ScenarioEnsemble(
            "cascading",
            (EnsembleMember.per_year("arr", array(), 1.0),),
            (cascade,),
        )
        assessment = assess_risk(baseline, workload, ensemble, requirements)
        ids = [m.member_id for m in assessment.members]
        assert ids == ["arr", "site-during-recovery",
                       "site-during-recovery.cascade"]
        cascaded = {m.member_id: m.from_cascade for m in assessment.members}
        assert cascaded == {
            "arr": False,
            "site-during-recovery": True,
            "site-during-recovery.cascade": True,
        }
        total = sum(m.rate_per_year for m in assessment.members)
        assert total == pytest.approx(
            assessment.total_rate_per_year, rel=1e-12
        )
        assert total == pytest.approx(1.2, rel=1e-12)

    def test_serial_parallel_factory_and_cache_byte_identical(
        self, baseline, workload, requirements, tmp_path
    ):
        ensemble = object_corruption_grid(24, 6.0, distinct_ages=4)

        def run(design, config=None, cache=None):
            assessment = assess_risk(
                design, workload, ensemble, requirements,
                samples=200, seed=7, config=config, cache=cache,
            )
            return canonical_json(assessment.to_dict())

        serial = run(baseline)
        parallel = run(baseline, config=EngineConfig(workers=2))
        factory = run(casestudy.baseline_design)
        cache = ResultCache(cache_dir=tmp_path / "risk-cache")
        cold = run(baseline, cache=cache)
        warm = run(baseline, cache=cache)
        assert serial == parallel == factory == cold == warm

    def test_monte_carlo_agrees_with_analytic_fold(
        self, baseline, workload, requirements
    ):
        ensemble = ScenarioEnsemble(
            "mc-fixture",
            (
                EnsembleMember.per_year("arr", array(), 2.0),
                EnsembleMember.per_year(
                    "obj",
                    FailureScenario.object_corruption(
                        object_size=1 * MB, recovery_target_age=1 * DAY
                    ),
                    6.0,
                ),
            ),
        )
        assessment = assess_risk(
            baseline, workload, ensemble, requirements,
            samples=20000, seed=11,
        )
        mc = assessment.monte_carlo
        assert mc is not None and mc.samples == 20000 and mc.seed == 11
        # Documented tolerance: means within 5% (sampling error), each
        # percentile within 5% plus one severity-grid step of slack
        # (the analytic quantiles are exact only on the grid).
        for metric in ("downtime", "loss", "penalty"):
            analytic = getattr(assessment, metric)
            sampled = getattr(mc, metric)
            assert sampled.mean == pytest.approx(analytic.mean, rel=0.05)
            step = _grid_step(assessment, metric)
            for label in ("p50", "p90", "p95", "p99"):
                a, s = analytic.quantile(label), sampled.quantile(label)
                assert abs(a - s) <= 0.05 * max(abs(a), abs(s)) + step, (
                    metric, label, a, s, step,
                )

    def test_longer_horizon_scales_the_mean(
        self, baseline, workload, requirements
    ):
        ensemble = ScenarioEnsemble(
            "h", (EnsembleMember.per_year("arr", array(), 1.0),)
        )
        one = assess_risk(baseline, workload, ensemble, requirements)
        three = assess_risk(
            baseline, workload, ensemble, requirements, years=3.0
        )
        assert three.downtime.mean == pytest.approx(
            3 * one.downtime.mean, rel=1e-9
        )
        assert three.expected_downtime_per_year == pytest.approx(
            one.expected_downtime_per_year, rel=1e-9
        )

    def test_validation(self, baseline, workload, requirements):
        ensemble = ScenarioEnsemble(
            "v", (EnsembleMember.per_year("arr", array(), 1.0),)
        )
        with pytest.raises(RiskError, match="horizon"):
            assess_risk(
                baseline, workload, ensemble, requirements, years=0.0
            )
        with pytest.raises(RiskError, match="StorageDesign or a factory"):
            assess_risk(
                "not-a-design", workload, ensemble, requirements
            )

    def test_to_dict_shape(self, baseline, workload, requirements):
        ensemble = ScenarioEnsemble(
            "shape", (EnsembleMember.per_year("arr", array(), 1.0),)
        )
        assessment = assess_risk(baseline, workload, ensemble, requirements)
        data = assessment.to_dict()
        assert data["schema"] == 1
        assert data["kind"] == "risk_assessment"
        assert data["members"] == 1
        assert "monte_carlo" not in data
        assert data["per_member"][0]["member_id"] == "arr"
        # Round-trips through the canonical encoder (inf allowed).
        assert canonical_json(data)


def _same_outcome(outcome, expected):
    return (
        outcome.member_id == expected.member_id
        and outcome.scenario == expected.scenario
        and outcome.scenario_digest == expected.scenario_digest
        and outcome.recovery_time == expected.recovery_time
        and outcome.data_loss == expected.data_loss
        and outcome.penalty == expected.penalty
    )


def _grid_step(assessment, metric):
    """One severity-grid step of the analytic fold for ``metric``."""
    index = {"downtime": 0, "loss": 1, "penalty": 2}[metric]
    severities = []
    for member in assessment.members:
        value = (member.recovery_time, member.data_loss, member.penalty)[
            index
        ]
        if math.isfinite(value):
            severities.append((member.rate_per_year / YEAR, value))
    if not any(s > 0 for _, s in severities):
        return 0.0
    horizon = assessment.years * YEAR
    mean = horizon * sum(r * s for r, s in severities)
    second = horizon * sum(r * s * s for r, s in severities)
    grid_max = mean + 10.0 * math.sqrt(second) + 4.0 * max(
        s for _, s in severities
    )
    return grid_max / (assessment.grid_bins - 1)


class TestScenarioDigest:
    def test_digest_is_content_addressed(self):
        assert scenario_digest(array()) == scenario_digest(
            FailureScenario.array_failure()
        )
        assert scenario_digest(array()) != scenario_digest(site())
        assert len(scenario_digest(array())) == 16


class TestSimulatedLossCheck:
    def test_bounds_hold_on_the_baseline(self, baseline):
        members = [
            ("arr", array()),
            ("obj", FailureScenario.object_corruption(
                object_size=1 * MB, recovery_target_age=1 * DAY
            )),
        ]
        checks = simulated_loss_check(
            casestudy.baseline_design, members, seed=5, times_per_member=8
        )
        assert [c.member_id for c in checks] == ["arr", "obj"]
        assert all(c.within_bound for c in checks)
        assert all(c.samples == 8 for c in checks)
        # Deterministic replay: same seed, same checks.
        again = simulated_loss_check(
            baseline, members, seed=5, times_per_member=8
        )
        assert checks == again


class TestEnsembleSpec:
    SPEC = {
        "name": "from-spec",
        "members": [
            {"id": "arr", "scenario": "array", "rate": "0.5/yr"},
            {
                "id": "raid",
                "scenario": "array",
                "kofn": {
                    "n": 2, "k": 1,
                    "unit_rate": "2/yr", "repair_time": "8 hr",
                },
            },
        ],
        "correlated": [
            {
                "id": "arr-bk", "rate": "0.4/yr", "fraction": 0.25,
                "base": "array", "correlated": "building",
            }
        ],
        "cascades": [
            {
                "id": "c", "rate": "0.01/yr", "primary": "array",
                "escalated": "site", "secondary_rate": "0.5/yr",
            }
        ],
    }

    def test_builds_all_groups(self):
        ensemble = ensemble_from_spec(self.SPEC)
        assert ensemble.name == "from-spec"
        ids = [m.member_id for m in ensemble.members]
        assert ids == ["arr", "raid", "arr-bk.corr", "arr-bk"]
        assert [c.member_id for c in ensemble.cascades] == ["c"]
        expected_raid = KofNModel(
            2, 1, 2.0 / YEAR, 8 * HOUR
        ).effective_failure_rate()
        assert ensemble.members[1].occurrence_rate == pytest.approx(
            expected_raid
        )

    def test_rate_and_kofn_are_exclusive(self):
        bad = {
            "name": "x",
            "members": [{
                "id": "m", "scenario": "array", "rate": "1/yr",
                "kofn": {"n": 2, "k": 1, "unit_rate": "2/yr",
                         "repair_time": "8 hr"},
            }],
        }
        with pytest.raises(DesignError, match="exactly one"):
            ensemble_from_spec(bad)

    def test_unknown_keys_rejected(self):
        with pytest.raises(DesignError):
            ensemble_from_spec({"name": "x", "membres": []})

    def test_bad_rate_string_reports_context(self):
        bad = {
            "name": "x",
            "members": [
                {"id": "m", "scenario": "array", "rate": "fast"}
            ],
        }
        with pytest.raises(DesignError, match="ensemble member 0"):
            ensemble_from_spec(bad)

    def test_generate_object_grid(self):
        ensemble = ensemble_from_spec({
            "name": "g",
            "generate": {
                "object_grid": {
                    "count": 10, "total_rate": "5/yr",
                    "distinct_ages": 2,
                }
            },
        })
        assert len(ensemble.members) == 10
        assert ensemble.total_rate * YEAR == pytest.approx(5.0, rel=1e-12)

    def test_output_record_round_trip(self):
        ensemble = ensemble_from_spec(self.SPEC)
        record = ensemble_to_dict(ensemble)
        assert record["name"] == "from-spec"
        assert json.loads(canonical_json(record))["name"] == "from-spec"

    def test_example_spec_builds(self):
        with open("examples/specs/risk_ensemble.json") as handle:
            spec = json.load(handle)
        ensemble = ensemble_from_spec(spec["ensemble"])
        assert len(ensemble.members) == 1003
        assert len(ensemble.cascades) == 1
