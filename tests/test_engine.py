"""The evaluation engine: keys, cache tiers, executor, sweeps."""

import json
import time
from dataclasses import dataclass, field

import pytest

from repro import casestudy
from repro.design import DesignSpace, candidate_designs, optimize, run_whatif
from repro.engine import (
    EngineConfig,
    EvaluationTask,
    MemoryCache,
    ResultCache,
    fingerprint,
    map_evaluations,
    model_schema_version,
    shutdown_pool,
    task_key,
)
from repro.engine.cache import DiskCache
from repro.engine.sweep import evaluate_design_map, evaluate_scenarios_cached
from repro.exceptions import CacheKeyError, ReproError
from repro.obs import MetricsRegistry, use_metrics
from repro.workload.presets import cello


@pytest.fixture()
def workload():
    return cello()


@pytest.fixture()
def requirements():
    return casestudy.case_study_requirements()


@pytest.fixture()
def scenarios():
    return casestudy.case_study_scenarios()


@pytest.fixture(autouse=True)
def _no_leftover_pool():
    yield
    shutdown_pool()


class TestKeys:
    def test_fingerprint_deterministic_for_equal_graphs(self, workload):
        designs = candidate_designs(DesignSpace())
        name = next(iter(designs))
        one = fingerprint({"design": designs[name](), "workload": workload})
        two = fingerprint({"design": designs[name](), "workload": workload})
        assert one == two

    def test_task_key_distinguishes_designs(self, workload):
        designs = candidate_designs(DesignSpace())
        names = list(designs)
        key_a = task_key({"design": designs[names[0]](), "workload": workload})
        key_b = task_key({"design": designs[names[1]](), "workload": workload})
        assert key_a != key_b

    def test_task_key_includes_schema_version(self, workload, monkeypatch):
        from repro.engine import keys as keys_module

        payload = {"workload": workload}
        before = task_key(payload)
        monkeypatch.setattr(keys_module, "_schema_version", "engine-v0:test")
        assert task_key(payload) != before

    def test_memo_does_not_change_the_key(self, workload, scenarios):
        payload = {"workload": workload, "scenarios": tuple(scenarios)}
        memo = {}
        assert task_key(payload, memo) == task_key(payload)
        # And a second memoized call short-circuits to the same key.
        assert task_key(payload, memo) == task_key(payload)

    def test_shared_references_fingerprint_identically(self):
        shared = {"x": 1.0}
        graph_shared = [shared, shared]
        graph_copies = [{"x": 1.0}, {"x": 1.0}]
        # Plain dicts carry no identity: both graphs canonicalize alike.
        assert fingerprint(graph_shared) == fingerprint(graph_copies)

    def test_unserializable_objects_raise(self):
        with pytest.raises(CacheKeyError):
            fingerprint({"callback": lambda: None})

    def test_schema_version_is_stable_within_a_process(self):
        assert model_schema_version() == model_schema_version()
        assert model_schema_version().startswith("engine-v1")


class TestMemoryCache:
    def test_lru_evicts_oldest(self):
        cache = MemoryCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3

    def test_zero_entries_disables_the_tier(self):
        cache = MemoryCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


class TestDiskCache:
    def _results(self, workload, scenarios, requirements):
        from repro.core.evaluate import evaluate_scenarios

        return evaluate_scenarios(
            casestudy.baseline_design(), workload, scenarios, requirements
        )

    def test_round_trip_preserves_rendering(
        self, tmp_path, workload, scenarios, requirements
    ):
        results = self._results(workload, scenarios, requirements)
        disk = DiskCache(tmp_path)
        assert disk.put("k", results)
        restored = DiskCache(tmp_path).get("k")
        assert list(restored) == list(results)
        for label in results:
            assert restored[label].summary() == results[label].summary()
            assert restored[label].explain() == results[label].explain()

    def test_scenario_order_survives_the_disk(
        self, tmp_path, workload, scenarios, requirements
    ):
        # Regression: an alphabetically re-sorted payload would reorder
        # the scenario columns of every cached report.
        results = self._results(workload, list(reversed(scenarios)), requirements)
        disk = DiskCache(tmp_path)
        disk.put("k", results)
        assert list(DiskCache(tmp_path).get("k")) == list(results)

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / DiskCache.FILENAME
        path.write_text('not json\n{"key": "k", "codec": "x"}\n')
        disk = DiskCache(tmp_path)
        assert disk.get("k") is None

    def test_unknown_codec_is_a_miss(self, tmp_path):
        path = tmp_path / DiskCache.FILENAME
        path.write_text(
            json.dumps({"key": "k", "codec": "from-the-future", "payload": {}})
            + "\n"
        )
        assert DiskCache(tmp_path).get("k") is None

    def test_uncodecable_values_are_not_stored(self, tmp_path):
        disk = DiskCache(tmp_path)
        assert not disk.put("k", object())
        assert disk.get("k") is None

    def test_concurrent_writers_never_tear_records(
        self, tmp_path, workload, scenarios, requirements
    ):
        # Regression: two engine processes sharing one cache dir append
        # to the same results.jsonl.  Buffered text appends can flush a
        # large record in several chunks, interleaving mid-line and
        # corrupting the last-wins index; DiskCache.put must append
        # each record as one O_APPEND write.
        import multiprocessing

        results = self._results(workload, scenarios, requirements)
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        per_writer = 20
        writers = [
            context.Process(
                target=_hammer_cache,
                args=(tmp_path, results, f"writer{n}", per_writer, barrier),
            )
            for n in range(2)
        ]
        for process in writers:
            process.start()
        for process in writers:
            process.join(timeout=120)
            assert process.exitcode == 0
        raw = (tmp_path / DiskCache.FILENAME).read_text(encoding="utf-8")
        lines = [line for line in raw.splitlines() if line]
        assert len(lines) == 2 * per_writer
        for line in lines:
            record = json.loads(line)  # a torn line would raise here
            assert {"key", "codec", "payload"} <= set(record)
        disk = DiskCache(tmp_path)
        for n in range(2):
            for i in range(per_writer):
                assert disk.get(f"writer{n}-{i}") is not None


def _hammer_cache(cache_dir, results, prefix, count, barrier):
    """Worker for the concurrent-append regression test (module level
    so fork/spawn children can resolve it)."""
    disk = DiskCache(cache_dir)
    barrier.wait()
    for i in range(count):
        disk.put(f"{prefix}-{i}", results)


@dataclass(frozen=True)
class _FlakyTask:
    """Fails ``failures`` times, then succeeds (module-level: picklable)."""

    name: str
    failures: int
    log: list = field(default_factory=list, compare=False)

    def resolve(self):
        return self

    def key_payload(self):
        return {"kind": "flaky", "name": self.name}

    def run(self):
        if len(self.log) < self.failures:
            self.log.append("boom")
            raise RuntimeError(f"transient #{len(self.log)}")
        return "recovered"


@dataclass(frozen=True)
class _HangingTask:
    name: str

    def resolve(self):
        return self

    def key_payload(self):
        return {"kind": "hang", "name": self.name}

    def run(self):
        time.sleep(30.0)
        return "unreachable"


@dataclass(frozen=True)
class _ModelErrorTask:
    name: str

    def resolve(self):
        return self

    def key_payload(self):
        return {"kind": "modelerror", "name": self.name}

    def run(self):
        raise ReproError("infeasible candidate")


class TestExecutor:
    def test_serial_default_runs_inline(self, workload, scenarios, requirements):
        task = EvaluationTask(
            name="baseline",
            workload=workload,
            scenarios=tuple(scenarios),
            requirements=requirements,
            factory=casestudy.baseline_design,
        )
        (outcome,) = map_evaluations([task])
        assert outcome.ok and not outcome.cached
        assert set(outcome.value) == {s.describe() for s in scenarios}

    def test_parallel_matches_serial(self, workload, scenarios, requirements):
        designs = candidate_designs(DesignSpace())
        serial = evaluate_design_map(designs, workload, scenarios, requirements)
        parallel = evaluate_design_map(
            designs, workload, scenarios, requirements,
            config=EngineConfig(workers=2),
        )
        assert list(serial) == list(parallel)
        for name in serial:
            assert serial[name].ok and parallel[name].ok
            for label in serial[name].value:
                assert (
                    serial[name].value[label].summary()
                    == parallel[name].value[label].summary()
                )

    def test_model_errors_are_not_retried(self):
        task = _ModelErrorTask("bad")
        (outcome,) = map_evaluations(
            [task], EngineConfig(retries=3, retry_backoff=0.001)
        )
        assert not outcome.ok
        assert isinstance(outcome.error, ReproError)
        assert outcome.attempts == 1 and not outcome.retryable

    def test_generic_failures_retry_then_surface(self):
        task = _FlakyTask("boom", failures=99)
        (outcome,) = map_evaluations(
            [task], EngineConfig(workers=2, retries=2, retry_backoff=0.001)
        )
        assert not outcome.ok and outcome.retryable
        assert outcome.attempts == 3  # first try + two retries
        assert isinstance(outcome.error, RuntimeError)

    def test_transient_failure_recovers_on_retry(self):
        task = _FlakyTask("flaky", failures=1)
        (outcome,) = map_evaluations(
            [task], EngineConfig(workers=1, retries=2, retry_backoff=0.001)
        )
        # Inline serial execution runs once without retries...
        assert not outcome.ok
        # ...but on a pool the parent retries inline and recovers.
        task2 = _FlakyTask("flaky2", failures=1)
        (outcome2,) = map_evaluations(
            [task2], EngineConfig(workers=2, retries=2, retry_backoff=0.001)
        )
        assert outcome2.ok and outcome2.value == "recovered"

    def test_timeout_surfaces_without_hanging(self):
        start = time.monotonic()
        (outcome,) = map_evaluations(
            [_HangingTask("hang")],
            EngineConfig(
                workers=2, retries=1, retry_backoff=0.001, task_timeout=0.2
            ),
        )
        elapsed = time.monotonic() - start
        assert not outcome.ok and outcome.retryable
        assert elapsed < 10.0

    def test_outcomes_keep_input_order(self):
        tasks = [
            _ModelErrorTask("a"),
            _FlakyTask("b", failures=0),
            _ModelErrorTask("c"),
        ]
        outcomes = map_evaluations(tasks)
        assert [o.name for o in outcomes] == ["a", "b", "c"]
        assert [o.ok for o in outcomes] == [False, True, False]


class TestCaching:
    def test_memory_cache_hits_on_second_sweep(
        self, workload, scenarios, requirements
    ):
        designs = candidate_designs(DesignSpace())
        config = EngineConfig(memory_cache_entries=64)
        cache = ResultCache(memory_entries=64)
        registry = MetricsRegistry()
        with use_metrics(registry):
            first = evaluate_design_map(
                designs, workload, scenarios, requirements,
                config=config, cache=cache,
            )
            second = evaluate_design_map(
                designs, workload, scenarios, requirements,
                config=config, cache=cache,
            )
        counters = registry.snapshot()["counters"]
        assert counters["engine.cache.hits"] >= len(designs)
        assert all(second[name].cached for name in second)
        for name in first:
            for label in first[name].value:
                assert (
                    first[name].value[label].summary()
                    == second[name].value[label].summary()
                )

    def test_disk_cache_survives_processes(
        self, tmp_path, workload, scenarios, requirements
    ):
        designs = candidate_designs(DesignSpace())
        config = EngineConfig(cache_dir=str(tmp_path), memory_cache_entries=8)
        first = evaluate_design_map(
            designs, workload, scenarios, requirements, config=config
        )
        # A fresh call builds a fresh ResultCache: only the disk tier
        # persists, simulating a new process against the same dir.
        second = evaluate_design_map(
            designs, workload, scenarios, requirements, config=config
        )
        assert all(second[name].cached for name in second)
        for name in first:
            for label in first[name].value:
                assert (
                    first[name].value[label].explain()
                    == second[name].value[label].explain()
                )

    def test_unkeyable_tasks_still_run(self):
        @dataclass(frozen=True)
        class Unkeyable:
            name: str

            def resolve(self):
                return self

            def key_payload(self):
                return {"cb": lambda: None}

            def run(self):
                return 42

        (outcome,) = map_evaluations(
            [Unkeyable("u")], EngineConfig(memory_cache_entries=8)
        )
        assert outcome.ok and outcome.value == 42 and not outcome.cached

    def test_default_config_disables_caching(self):
        assert not EngineConfig().caching
        assert EngineConfig(memory_cache_entries=1).caching
        assert EngineConfig(cache_dir="/tmp/x").caching


class TestSweepHelpers:
    def test_evaluate_scenarios_cached_matches_direct(
        self, workload, scenarios, requirements
    ):
        from repro.core.evaluate import evaluate_scenarios

        direct = evaluate_scenarios(
            casestudy.baseline_design(), workload, scenarios, requirements
        )
        via_engine = evaluate_scenarios_cached(
            casestudy.baseline_design(), workload, scenarios, requirements
        )
        assert list(direct) == list(via_engine)
        for label in direct:
            assert direct[label].summary() == via_engine[label].summary()

    def test_evaluate_scenarios_cached_raises_task_errors(
        self, workload, scenarios, requirements
    ):
        def broken():
            raise ReproError("cannot build")

        with pytest.raises(ReproError):
            evaluate_scenarios_cached(
                broken, workload, scenarios, requirements
            )

    def test_whatif_through_engine_matches_history(
        self, workload, scenarios, requirements
    ):
        designs = {
            "baseline": casestudy.baseline_design,
            "weekly": casestudy.weekly_vault_design,
        }
        results = run_whatif(designs, workload, scenarios, requirements)
        assert [r.design_name for r in results] == ["baseline", "weekly"]
        parallel = run_whatif(
            designs, workload, scenarios, requirements,
            config=EngineConfig(workers=2),
        )
        for serial_result, parallel_result in zip(results, parallel):
            assert (
                serial_result.worst_total_cost
                == parallel_result.worst_total_cost
            )


class TestOptimizeParity:
    def test_parallel_ranking_identical_to_serial(
        self, workload, scenarios, requirements
    ):
        candidates = candidate_designs(DesignSpace())
        serial = optimize(candidates, workload, scenarios, requirements)
        parallel = optimize(
            candidates, workload, scenarios, requirements,
            config=EngineConfig(workers=4),
        )
        assert [e.name for e in serial.ranking] == [
            e.name for e in parallel.ranking
        ]
        assert [e.objective for e in serial.ranking] == [
            e.objective for e in parallel.ranking
        ]
        assert serial.best.name == parallel.best.name
