"""The AST code linter: raw-unit literals, broad excepts, pragmas, CLI."""

import json

import pytest

from repro.lint.codelint import (
    BROAD_EXCEPT_PRAGMA,
    DEFAULT_PATHS,
    RAW_UNIT_PRAGMA,
    count_pragmas,
    lint_paths,
    lint_source,
    main,
)
from repro.lint.diagnostics import Severity


def codes(findings):
    return [f.code for f in findings]


class TestRawUnitLiterals:
    def test_3600_flagged_as_hour(self):
        findings = lint_source("duration = 4 * 3600.0\n", "m.py")
        assert codes(findings) == ["UNI001"]
        assert "HOUR" in findings[0].message
        assert findings[0].severity is Severity.ERROR
        assert findings[0].line == 1

    def test_86400_flagged_as_day(self):
        # The acceptance scenario: reintroducing 86400 in backup code.
        source = "days = cycle_period / 86400.0\n"
        findings = lint_source(source, "repro/techniques/backup.py")
        assert codes(findings) == ["UNI001"]
        assert "DAY" in findings[0].message

    def test_week_and_year_magnitudes(self):
        findings = lint_source("a = 604800\nb = 31536000\n", "m.py")
        assert codes(findings) == ["UNI001", "UNI001"]

    def test_byte_magnitudes(self):
        findings = lint_source("kb = 1024\ngb = 1073741824\n", "m.py")
        assert codes(findings) == ["UNI002", "UNI002"]
        assert "KB" in findings[0].message

    def test_power_expressions_flagged(self):
        findings = lint_source("size = 3 * 2 ** 30\ndec = 10 ** 9\n", "m.py")
        assert codes(findings) == ["UNI002", "UNI002"]
        assert "2**30" in findings[0].message
        assert "GB" in findings[0].message
        assert "GB_DEC" in findings[1].message

    def test_innocent_numbers_not_flagged(self):
        source = "x = 60\ny = 100\nz = 2 ** 8\nio = 8192\nrate = 1000.0\n"
        assert lint_source(source, "m.py") == []

    def test_strings_and_docstrings_not_flagged(self):
        source = '"""Mentions 3600 and 86400."""\nlabel = "1024"\n'
        assert lint_source(source, "m.py") == []

    def test_booleans_not_flagged(self):
        assert lint_source("flag = True\n", "m.py") == []

    def test_pragma_allows_the_line(self):
        source = f"duration = 3600  # {RAW_UNIT_PRAGMA}\n"
        assert lint_source(source, "m.py") == []

    def test_units_module_is_allowlisted(self):
        source = "HOUR = 3600.0\nDAY = 24 * HOUR\nKB = 2.0 ** 10\n"
        assert lint_source(source, "src/repro/units.py") == []
        assert codes(lint_source(source, "other.py")) == ["UNI001", "UNI002"]


class TestBroadExcept:
    def test_except_exception_flagged(self):
        source = "try:\n    pass\nexcept Exception:\n    pass\n"
        findings = lint_source(source, "m.py")
        assert codes(findings) == ["EXC001"]
        assert findings[0].line == 3

    def test_bare_except_flagged(self):
        source = "try:\n    pass\nexcept:\n    pass\n"
        assert codes(lint_source(source, "m.py")) == ["EXC001"]

    def test_tuple_with_base_exception_flagged(self):
        source = "try:\n    pass\nexcept (ValueError, BaseException):\n    pass\n"
        assert codes(lint_source(source, "m.py")) == ["EXC001"]

    def test_narrow_handlers_pass(self):
        source = (
            "try:\n    pass\n"
            "except (AttributeError, NotImplementedError):\n    pass\n"
        )
        assert lint_source(source, "m.py") == []

    def test_boundary_pragma_allows_the_handler(self):
        source = (
            "try:\n    pass\n"
            f"except Exception:  # {BROAD_EXCEPT_PRAGMA}\n    pass\n"
        )
        assert lint_source(source, "m.py") == []

    def test_attribute_form_broad_handler_flagged(self):
        # `except builtins.BaseException:` is the same catch-all in a
        # trenchcoat; the attribute spelling must not slip past.
        source = (
            "import builtins\n"
            "try:\n    pass\n"
            "except builtins.BaseException:\n    pass\n"
        )
        findings = lint_source(source, "m.py")
        assert codes(findings) == ["EXC001"]
        assert findings[0].line == 4

    def test_attribute_form_in_tuple_flagged(self):
        source = (
            "import builtins\n"
            "try:\n    pass\n"
            "except (ValueError, builtins.Exception):\n    pass\n"
        )
        assert codes(lint_source(source, "m.py")) == ["EXC001"]

    def test_exn_family_pragma_also_allows_the_handler(self):
        # A site sanctioned for exception-flow analysis (`allow-exn`)
        # is sanctioned for the syntactic rule too: one comment covers
        # the family.
        from repro.lint.codelint import EXN_FAMILY_PRAGMA

        source = (
            "try:\n    pass\n"
            f"except Exception:  # {EXN_FAMILY_PRAGMA}\n    pass\n"
        )
        assert lint_source(source, "m.py") == []


class TestTreeAndCli:
    def test_repro_tree_is_clean(self):
        assert lint_paths(["src/repro"]) == []

    def test_examples_and_benchmarks_are_clean(self):
        # The linter's default sweep covers the runnable trees too.
        assert lint_paths(["examples", "benchmarks"]) == []

    def test_default_paths_cover_all_three_trees(self):
        assert DEFAULT_PATHS == ("src/", "examples/", "benchmarks/")

    def test_planted_raw_unit_caught_in_every_default_tree(
        self, tmp_path, monkeypatch
    ):
        # Regression guard: a raw 3600 reintroduced in examples/ or
        # benchmarks/ must fail the same way it does in src/.
        for tree in DEFAULT_PATHS:
            package = tmp_path / tree
            package.mkdir()
            (package / "planted.py").write_text("duration = 4 * 3600.0\n")
        monkeypatch.chdir(tmp_path)
        findings = lint_paths(list(DEFAULT_PATHS))
        assert codes(findings) == ["UNI001"] * len(DEFAULT_PATHS)
        flagged = {f.file for f in findings}
        assert len(flagged) == len(DEFAULT_PATHS)

    def test_tree_pragma_budget(self):
        assert count_pragmas(["src/repro"]) <= 5

    def test_max_pragmas_gate(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text(f"a = 3600  # {RAW_UNIT_PRAGMA}\n")
        ok = lint_paths([str(path)], max_pragmas=1)
        assert ok == []
        over = lint_paths([str(path)], max_pragmas=0)
        assert codes(over) == ["UNI003"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("from repro.units import HOUR\nx = 4 * HOUR\n")
        assert main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out
        dirty = tmp_path / "dirty.py"
        dirty.write_text("x = 86400\n")
        assert main([str(dirty)]) == 1
        assert "UNI001" in capsys.readouterr().out

    def test_cli_json_format(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("x = 3600\n")
        assert main([str(dirty), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        record = document["diagnostics"][0]
        assert record["code"] == "UNI001"
        assert record["source"] == "code"
        assert record["file"] == str(dirty)
        assert record["line"] == 1

    def test_cli_sarif_format(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("x = 3600\n")
        assert main([str(dirty), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        result = log["runs"][0]["results"][0]
        assert result["ruleId"] == "UNI001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == str(dirty)
        assert location["region"]["startLine"] == 1

    def test_directory_walk_skips_pycache(self, tmp_path):
        package = tmp_path / "pkg"
        cache = package / "__pycache__"
        cache.mkdir(parents=True)
        (package / "m.py").write_text("x = 3600\n")
        (cache / "m.py").write_text("x = 3600\n")
        findings = lint_paths([str(package)])
        assert len(findings) == 1
