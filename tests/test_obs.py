"""The observability layer: tracer, metrics, provenance, export."""

import io

import pytest

import repro
from repro import casestudy, obs
from repro.core.evaluate import evaluate, evaluate_scenarios
from repro.devices.catalog import midrange_disk_array, oc3_links
from repro.devices.spares import SpareConfig
from repro.obs.export import (
    metric_records,
    read_trace_jsonl,
    span_records,
    write_trace_jsonl,
)
from repro.obs.provenance import EvaluationProvenance, explain_assessment
from repro.scenarios.locations import REMOTE_SITE
from repro.techniques.mirroring import BatchedAsyncMirror
from repro.techniques.primary import PrimaryCopy
from repro.workload.presets import cello


class FakeClock:
    """A deterministic clock advanced explicitly by tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = obs.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2"):
                with tracer.span("leaf"):
                    pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner-1", "inner-2"]
        assert outer.children[1].children[0].name == "leaf"
        assert [name for (span, _d) in tracer.walk() for name in [span.name]] == [
            "outer", "inner-1", "inner-2", "leaf",
        ]

    def test_timing_uses_the_injected_clock(self):
        clock = FakeClock()
        tracer = obs.Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.5)
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert outer.duration == pytest.approx(1.5)
        assert inner.duration == pytest.approx(0.5)
        assert inner.start == pytest.approx(1.0)
        assert inner.duration_ms == pytest.approx(500.0)

    def test_attributes_and_set(self):
        tracer = obs.Tracer()
        with tracer.span("op", phase="x") as span:
            span.set(items=3)
        assert tracer.roots[0].attributes == {"phase": "x", "items": 3}

    def test_exception_closes_the_span_and_records_the_error(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        span = tracer.roots[0]
        assert span.finished
        assert "ValueError" in span.attributes["error"]
        # The stack unwound: the next span is a root, not a child of "boom".
        with tracer.span("after"):
            pass
        assert [root.name for root in tracer.roots] == ["boom", "after"]

    def test_exception_sets_status_type_and_message(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("the message")
        span = tracer.roots[0]
        assert span.failed
        assert span.status == "error"
        assert span.error_type == "ValueError"
        assert span.error_message == "the message"

    def test_clean_exit_status_ok(self):
        tracer = obs.Tracer()
        with tracer.span("fine"):
            pass
        span = tracer.roots[0]
        assert span.status == "ok"
        assert not span.failed
        assert span.error_type is None
        record = span.to_dict()
        assert record["status"] == "ok"
        assert "error_type" not in record


class TestTracerInjection:
    def test_default_is_a_noop(self):
        tracer = obs.get_tracer()
        assert tracer.enabled is False
        handle = tracer.span("anything", key="value")
        with handle as span:
            span.set(more="attrs")
        assert tracer.roots == ()
        # The null tracer hands back one shared handle: zero allocation.
        assert tracer.span("other") is handle

    def test_use_tracer_installs_and_restores(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer) as installed:
            assert installed is tracer
            assert obs.get_tracer() is tracer
            with obs.get_tracer().span("traced"):
                pass
        assert obs.get_tracer().enabled is False
        assert tracer.roots[0].name == "traced"

    def test_clear_drops_spans(self):
        tracer = obs.Tracer()
        with tracer.span("one"):
            pass
        tracer.clear()
        assert tracer.roots == []


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = obs.MetricsRegistry()
        registry.inc("calls")
        registry.inc("calls", 2)
        registry.set_gauge("depth", 7.5)
        registry.observe("latency", 10.0)
        registry.observe("latency", 30.0)
        assert registry.counter("calls").value == 3
        assert registry.gauge("depth").value == 7.5
        histogram = registry.histogram("latency")
        assert histogram.count == 2
        assert histogram.mean == pytest.approx(20.0)
        assert (histogram.min, histogram.max) == (10.0, 30.0)

    def test_counters_cannot_decrease(self):
        registry = obs.MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("x", -1)

    def test_snapshot_and_reset(self):
        registry = obs.MetricsRegistry()
        registry.inc("a")
        registry.observe("b", 1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 1}
        assert snapshot["histograms"]["b"]["count"] == 1
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_null_registry_discards_everything(self):
        registry = obs.get_metrics()
        assert registry.enabled is False
        registry.inc("calls")
        registry.observe("latency", 1.0)
        registry.set_gauge("depth", 2.0)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_global_registry_is_reset_between_tests_a(self):
        # Paired with ..._b: whichever runs second sees a fresh registry.
        registry = obs.set_metrics(obs.MetricsRegistry())
        registry.inc("leak-check")
        assert obs.get_metrics().counter("leak-check").value == 1

    def test_global_registry_is_reset_between_tests_b(self):
        assert obs.get_metrics().enabled is False
        assert obs.get_metrics().snapshot()["counters"] == {}


class TestHistogramBuckets:
    def test_single_observation_percentiles_are_exact(self):
        histogram = obs.MetricsRegistry().histogram("h")
        histogram.observe(12.0)
        # min/max clamping pins every percentile to the one value.
        assert histogram.p50 == 12.0
        assert histogram.p90 == 12.0
        assert histogram.p99 == 12.0

    def test_percentiles_are_order_independent_estimates(self):
        forward, backward = obs.Histogram("f"), obs.Histogram("b")
        values = [float(v) for v in range(1, 101)]
        for value in values:
            forward.observe(value)
        for value in reversed(values):
            backward.observe(value)
        assert forward.buckets == backward.buckets
        assert forward.p50 == backward.p50

    def test_percentile_accuracy_within_bucket_resolution(self):
        histogram = obs.Histogram("h")
        for value in range(1, 1001):
            histogram.observe(float(value))
        # Quarter-decade log buckets: estimates within ~2x of truth is
        # the guarantee; in practice interpolation does much better.
        assert histogram.p50 == pytest.approx(500.0, rel=0.5)
        assert histogram.p90 == pytest.approx(900.0, rel=0.5)
        assert histogram.p99 == pytest.approx(990.0, rel=0.5)
        # Estimates never leave the observed range and stay ordered.
        assert 1.0 <= histogram.p50 <= histogram.p90 <= histogram.p99 <= 1000.0

    def test_empty_histogram_percentiles_are_zero(self):
        histogram = obs.Histogram("h")
        assert histogram.p50 == 0.0
        assert histogram.p99 == 0.0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            obs.Histogram("h").percentile(1.5)

    def test_nonpositive_values_land_in_the_first_bucket(self):
        histogram = obs.Histogram("h")
        histogram.observe(0.0)
        histogram.observe(-3.0)
        assert histogram.count == 2
        assert histogram.buckets == {0: 2}
        # Log buckets cannot resolve below zero; the estimate clamps
        # into the observed [min, max] range.
        assert histogram.min <= histogram.p50 <= histogram.max

    def test_overflow_bucket(self):
        from repro.obs.metrics import OVERFLOW_BUCKET

        histogram = obs.Histogram("h")
        histogram.observe(1e12)
        assert histogram.buckets == {OVERFLOW_BUCKET: 1}
        assert histogram.p99 == 1e12

    def test_snapshot_includes_percentiles(self):
        registry = obs.MetricsRegistry()
        for value in (1.0, 2.0, 4.0):
            registry.observe("latency", value)
        stats = registry.snapshot()["histograms"]["latency"]
        assert {"p50", "p90", "p99"} <= set(stats)
        assert stats["min"] == 1.0 and stats["max"] == 4.0


class TestThreadSafety:
    def test_concurrent_emissions_are_not_lost(self):
        import threading

        registry = obs.MetricsRegistry()
        per_thread, thread_count = 2000, 8

        def hammer():
            for i in range(per_thread):
                registry.inc("calls")
                registry.observe("latency", float(i % 7 + 1))
                registry.set_gauge("depth", float(i))

        threads = [threading.Thread(target=hammer) for _ in range(thread_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = per_thread * thread_count
        assert registry.counter("calls").value == expected
        histogram = registry.histogram("latency")
        assert histogram.count == expected
        assert sum(histogram.buckets.values()) == expected

    def test_concurrent_instrument_creation_yields_one_instrument(self):
        import threading

        registry = obs.MetricsRegistry()
        barrier = threading.Barrier(8)
        seen = []

        def create(index):
            barrier.wait()
            seen.append(registry.counter("shared"))

        threads = [
            threading.Thread(target=create, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(registry.counters) == 1
        assert all(instrument is seen[0] for instrument in seen)


def _unprovisionable_design():
    """Recoverable data, unrecoverable hardware: mirror survives an
    array failure, but the failed primary has no spare and the design
    has no recovery facility, so plan_recovery raises RecoveryError."""
    design = repro.StorageDesign("no-spare")
    design.add_level(
        PrimaryCopy(), store=midrange_disk_array(spare=SpareConfig.none())
    )
    design.add_level(
        BatchedAsyncMirror(),
        store=midrange_disk_array(
            name="mirror-array", location=REMOTE_SITE, spare=SpareConfig.none()
        ),
        transport=oc3_links(1),
    )
    return design


class TestProvenance:
    def evaluate_baseline(self):
        return evaluate(
            casestudy.baseline_design(),
            cello(),
            casestudy.array_failure_scenario(),
            casestudy.case_study_requirements(),
        )

    def test_attached_to_every_assessment(self):
        assessment = self.evaluate_baseline()
        provenance = assessment.provenance
        assert provenance is not None
        assert provenance.design_name == "baseline"
        assert provenance.scenario_scope == "array"
        assert provenance.recovery_source == "backup"
        assert provenance.recovery_source_level == 2
        assert provenance.recovery_failure is None
        assert provenance.dominant_penalty == "loss"
        assert provenance.validation_warnings  # the vaulting hold-window
        assert any("recovery source" in d for d in provenance.decisions)

    def test_scenario_scope_resolution_recorded(self):
        results = evaluate_scenarios(
            casestudy.baseline_design(),
            cello(),
            [casestudy.object_failure_scenario()],
            casestudy.case_study_requirements(),
        )
        provenance = next(iter(results.values())).provenance
        assert provenance.scenario_scope == "object"
        assert provenance.recovery_size is not None

    def test_recovery_failure_recorded_not_swallowed(self):
        registry = obs.set_metrics(obs.MetricsRegistry())
        assessment = evaluate(
            _unprovisionable_design(),
            cello(),
            repro.FailureScenario.array_failure("primary-array"),
            casestudy.case_study_requirements(),
        )
        assert assessment.recovery is None
        assert assessment.recovery_time == float("inf")
        provenance = assessment.provenance
        assert not provenance.total_loss
        assert "no surviving spare" in provenance.recovery_failure
        assert registry.counter("recovery.plan_failed").value == 1
        assert any("planning failed" in d for d in provenance.decisions)

    def test_phase_timings_only_when_tracing(self):
        assert self.evaluate_baseline().provenance.phase_ms == {}
        with obs.use_tracer(obs.Tracer()):
            provenance = self.evaluate_baseline().provenance
        assert set(provenance.phase_ms) == {
            "validate", "demands", "utilization", "dataloss", "recovery", "cost",
        }

    def test_explain_covers_all_four_metrics(self):
        assessment = self.evaluate_baseline()
        text = assessment.explain()
        assert text == explain_assessment(assessment)
        for fragment in ("utilization =", "recovery time =", "data loss =", "cost ="):
            assert fragment in text

    def test_dict_round_trip_ignores_unknown_keys(self):
        provenance = self.evaluate_baseline().provenance
        data = provenance.to_dict()
        assert EvaluationProvenance.from_dict(data) == provenance
        data["from_the_future"] = {"nested": True}
        assert EvaluationProvenance.from_dict(data) == provenance


class TestTracedEvaluation:
    def test_span_tree_shape(self):
        with obs.use_tracer(obs.Tracer()) as tracer:
            evaluate(
                casestudy.baseline_design(),
                cello(),
                casestudy.array_failure_scenario(),
                casestudy.case_study_requirements(),
            )
        assert [root.name for root in tracer.roots] == ["evaluate"]
        names = [span.name for span, _d in tracer.walk()]
        for expected in (
            "validate", "demands", "utilization.compute", "assess",
            "recovery.plan", "cost.compute",
        ):
            assert expected in names
        assert all(span.finished for span, _d in tracer.walk())

    def test_metrics_emitted(self):
        registry = obs.set_metrics(obs.MetricsRegistry())
        evaluate_scenarios(
            casestudy.baseline_design(),
            cello(),
            casestudy.case_study_scenarios(),
            casestudy.case_study_requirements(),
        )
        assert registry.counter("evaluate.calls").value == 1
        assert registry.counter("evaluate.scenarios").value == 3
        assert registry.counter("recovery.plans").value == 3
        assert registry.histogram("recovery.plan_ms").count == 3


class TestExport:
    def make_tracer(self):
        clock = FakeClock()
        tracer = obs.Tracer(clock=clock)
        with tracer.span("root", design="baseline"):
            clock.advance(0.25)
            with tracer.span("child"):
                clock.advance(0.5)
        return tracer

    def test_span_records_are_depth_first(self):
        records = span_records(self.make_tracer())
        assert [(r["name"], r["depth"], r["parent"]) for r in records] == [
            ("root", 0, None), ("child", 1, "root"),
        ]
        assert records[0]["duration_ms"] == pytest.approx(750.0)
        assert records[1]["start_ms"] == pytest.approx(250.0)

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self.make_tracer()
        registry = obs.MetricsRegistry()
        registry.inc("evaluate.calls", 2)
        registry.observe("recovery.plan_ms", 12.5)
        path = str(tmp_path / "trace.jsonl")
        count = write_trace_jsonl(path, tracer=tracer, metrics=registry)
        records = read_trace_jsonl(path)
        assert len(records) == count == 4
        spans = [r for r in records if r["kind"] == "span"]
        assert [
            {k: v for k, v in r.items() if k != "kind"} for r in spans
        ] == span_records(tracer)
        by_kind = {(r["kind"], r["name"]): r for r in records}
        assert by_kind[("counter", "evaluate.calls")]["value"] == 2
        assert by_kind[("histogram", "recovery.plan_ms")]["count"] == 1

    def test_jsonl_to_file_object(self):
        buffer = io.StringIO()
        write_trace_jsonl(buffer, tracer=self.make_tracer())
        buffer.seek(0)
        assert [r["name"] for r in read_trace_jsonl(buffer)] == ["root", "child"]

    def test_metric_records_empty_registry(self):
        assert metric_records(obs.MetricsRegistry()) == []

    def test_errored_spans_tagged_in_jsonl(self, tmp_path):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("broken spec")
        with tracer.span("succeeds"):
            pass
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(path, tracer=tracer)
        records = {r["name"]: r for r in read_trace_jsonl(path)}
        assert records["fails"]["status"] == "error"
        assert records["fails"]["error_type"] == "ValueError"
        assert records["fails"]["error_message"] == "broken spec"
        assert records["succeeds"]["status"] == "ok"
        assert "error_type" not in records["succeeds"]


class TestObsReportEdgeCases:
    """The human reports under degenerate inputs (empty, single, error)."""

    def test_metrics_report_empty_snapshot(self):
        from repro.reporting.obs_report import metrics_report

        report = metrics_report(obs.MetricsRegistry())
        assert "(none recorded)" in report

    def test_metrics_report_histogram_percentiles(self):
        from repro.reporting.obs_report import metrics_report

        registry = obs.MetricsRegistry()
        registry.observe("latency", 5.0)
        report = metrics_report(registry)
        assert "p50=" in report and "p99=" in report

    def test_span_tree_single_span(self):
        from repro.reporting.obs_report import span_tree_report

        tracer = obs.Tracer()
        with tracer.span("only"):
            pass
        report = span_tree_report(tracer)
        assert "only" in report
        assert "ms" in report

    def test_span_tree_empty(self):
        from repro.reporting.obs_report import span_tree_report

        assert "(no spans recorded)" in span_tree_report(obs.Tracer())

    def test_span_tree_flags_exception_exiting_span(self):
        from repro.reporting.obs_report import span_tree_report

        tracer = obs.Tracer()
        with pytest.raises(KeyError):
            with tracer.span("lookup"):
                raise KeyError("missing")
        report = span_tree_report(tracer)
        assert "ERROR KeyError" in report
        # The raw repr is not duplicated through the attribute channel.
        assert "[error=" not in report

    def test_profile_report_zero_spans(self):
        from repro.reporting.obs_report import profile_report

        assert "(no spans recorded)" in profile_report(obs.Tracer())
