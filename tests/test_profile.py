"""Span profiles: aggregation, ranking, and the profile report."""

import pytest

from repro import casestudy, obs
from repro.core.evaluate import evaluate
from repro.obs.profile import build_profile
from repro.reporting.obs_report import profile_report
from repro.workload.presets import cello


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


def make_tracer():
    """Two roots; repeated names; nested self-time structure.

    root-a (3.0s total: 1.0 self + step 1.5 + step 0.5)
    root-b (1.0s, all self)
    """
    clock = FakeClock()
    tracer = obs.Tracer(clock=clock)
    with tracer.span("root-a"):
        clock.advance(1.0)
        with tracer.span("step"):
            clock.advance(1.5)
        with tracer.span("step"):
            clock.advance(0.5)
    with tracer.span("root-b"):
        clock.advance(1.0)
    return tracer


class TestBuildProfile:
    def test_per_name_aggregation(self):
        profile = build_profile(make_tracer())
        assert profile.span_count == 4
        assert profile.total_ms == pytest.approx(4000.0)
        step = profile.entry("step")
        assert step.calls == 2
        assert step.cum_ms == pytest.approx(2000.0)
        assert step.self_ms == pytest.approx(2000.0)
        assert step.min_ms == pytest.approx(500.0)
        assert step.max_ms == pytest.approx(1500.0)
        assert step.mean_ms == pytest.approx(1000.0)

    def test_self_time_excludes_children(self):
        profile = build_profile(make_tracer())
        root_a = profile.entry("root-a")
        assert root_a.cum_ms == pytest.approx(3000.0)
        assert root_a.self_ms == pytest.approx(1000.0)

    def test_ranking_is_by_self_time(self):
        profile = build_profile(make_tracer())
        assert [e.name for e in profile.entries] == ["step", "root-a", "root-b"]
        assert [e.name for e in profile.hot(1)] == ["step"]

    def test_merged_call_tree(self):
        profile = build_profile(make_tracer())
        assert [node.name for node in profile.tree] == ["root-a", "root-b"]
        root_a = profile.tree[0]
        # Both "step" spans fold into one path node.
        assert len(root_a.children) == 1
        step = root_a.children[0]
        assert step.calls == 2
        assert step.cum_ms == pytest.approx(2000.0)
        assert [(n.name, d) for n, d in root_a.walk()] == [
            ("root-a", 0), ("step", 1),
        ]

    def test_unknown_entry_raises(self):
        with pytest.raises(KeyError):
            build_profile(make_tracer()).entry("nope")

    def test_errors_counted(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        profile = build_profile(tracer)
        assert profile.entry("boom").errors == 1
        assert profile.tree[0].errors == 1

    def test_empty_tracer(self):
        profile = build_profile(obs.Tracer())
        assert profile.span_count == 0
        assert profile.entries == ()
        assert profile.tree == ()
        assert profile.total_ms == 0.0

    def test_open_spans_contribute_calls_but_no_time(self):
        clock = FakeClock()
        tracer = obs.Tracer(clock=clock)
        span_cm = tracer.span("open-op")
        span_cm.__enter__()
        clock.advance(1.0)
        profile = build_profile(tracer)
        entry = profile.entry("open-op")
        assert entry.calls == 1
        assert entry.cum_ms == 0.0
        assert entry.self_ms == 0.0

    def test_real_evaluation_profile(self):
        with obs.use_tracer(obs.Tracer()) as tracer:
            evaluate(
                casestudy.baseline_design(),
                cello(),
                casestudy.array_failure_scenario(),
                casestudy.case_study_requirements(),
            )
        profile = build_profile(tracer)
        names = [entry.name for entry in profile.entries]
        assert "evaluate" in names
        assert "recovery.plan" in names
        evaluate_entry = profile.entry("evaluate")
        assert evaluate_entry.calls == 1
        # Children are nested inside evaluate, so self < cumulative.
        assert evaluate_entry.self_ms < evaluate_entry.cum_ms


class TestProfileReport:
    def test_contains_counts_and_times(self):
        report = profile_report(make_tracer())
        assert "Span profile" in report
        assert "calls" in report and "cum ms" in report and "self ms" in report
        assert "Hot call paths" in report
        # The merged tree indents "step" under "root-a" with x2 calls.
        assert "x2" in report
        # Shares are against the whole run: root-a is 3 of 4 seconds.
        assert "75.0%" in report

    def test_accepts_prebuilt_profile(self):
        tracer = make_tracer()
        assert profile_report(build_profile(tracer)) == profile_report(tracer)

    def test_zero_spans(self):
        report = profile_report(obs.Tracer())
        assert "(no spans recorded)" in report

    def test_null_tracer(self):
        report = profile_report(obs.get_tracer())
        assert "(no spans recorded)" in report

    def test_errors_flagged(self):
        tracer = obs.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("explodes"):
                raise RuntimeError("bad")
        report = profile_report(tracer)
        assert "explodes" in report
        assert "error" in report
