"""The DES substrate and the analytic-bound validation story."""

import pytest

from repro import casestudy
from repro.core.demands import register_design_demands
from repro.exceptions import SimulationError
from repro.scenarios import FailureScenario
from repro.simulation import (
    DependabilitySimulator,
    Event,
    RPStore,
    RetrievalPoint,
    SimulationEngine,
    adversarial_times,
    random_times,
    substream_rng,
    substream_seed,
    summarize_losses,
    sweep_times,
)
from repro.scenarios.locations import PRIMARY_SITE
from repro.units import DAY, HOUR, MB, WEEK
from repro.workload.presets import cello


class TestEngine:
    def test_events_in_time_order(self):
        seen = []
        engine = SimulationEngine()
        engine.on("e", lambda eng, ev: seen.append((eng.now, ev.payload)))
        engine.schedule(5.0, Event("e", "late"))
        engine.schedule(1.0, Event("e", "early"))
        engine.run_to_completion()
        assert seen == [(1.0, "early"), (5.0, "late")]

    def test_simultaneous_events_stable(self):
        seen = []
        engine = SimulationEngine()
        engine.on("e", lambda eng, ev: seen.append(ev.payload))
        engine.schedule(1.0, Event("e", "first"))
        engine.schedule(1.0, Event("e", "second"))
        engine.run_to_completion()
        assert seen == ["first", "second"]

    def test_handlers_can_schedule(self):
        engine = SimulationEngine()

        def tick(eng, ev):
            if eng.now < 3:
                eng.schedule(eng.now + 1, Event("tick"))

        engine.on("tick", tick)
        engine.schedule(0.0, Event("tick"))
        engine.run_to_completion()
        assert engine.processed == 4

    def test_run_until_stops_before_later_events(self):
        seen = []
        engine = SimulationEngine()
        engine.on("e", lambda eng, ev: seen.append(eng.now))
        engine.schedule(1.0, Event("e"))
        engine.schedule(10.0, Event("e"))
        engine.run_until(5.0)
        assert seen == [1.0]
        assert engine.now == 5.0
        assert engine.pending == 1

    def test_past_scheduling_rejected(self):
        engine = SimulationEngine()
        engine.on("e", lambda eng, ev: None)
        engine.schedule(5.0, Event("e"))
        engine.run_until(6.0)
        with pytest.raises(SimulationError):
            engine.schedule(1.0, Event("e"))

    def test_unhandled_event_kind_raises(self):
        engine = SimulationEngine()
        engine.schedule(0.0, Event("mystery"))
        with pytest.raises(SimulationError):
            engine.run_to_completion()


class TestRPStore:
    def make_point(self, snapshot, avail=None, expires=None, **kw):
        return RetrievalPoint(
            snapshot_time=snapshot,
            available_at=snapshot if avail is None else avail,
            expires_at=snapshot + 100 if expires is None else expires,
            **kw,
        )

    def test_usability_window(self):
        store = RPStore("lvl")
        point = self.make_point(10.0, avail=20.0, expires=50.0)
        store.add(point)
        assert not store.usable(point, 15.0)  # not yet available
        assert store.usable(point, 30.0)
        assert not store.usable(point, 50.0)  # expired

    def test_newest_usable_respects_target(self):
        store = RPStore("lvl")
        for t in (0.0, 10.0, 20.0):
            store.add(self.make_point(t))
        best = store.newest_usable_at_or_before(target_time=15.0, at_time=25.0)
        assert best.snapshot_time == 10.0

    def test_incremental_needs_live_base_full(self):
        store = RPStore("lvl")
        store.add(self.make_point(0.0, expires=30.0, is_full=True))
        incr = self.make_point(
            10.0, expires=100.0, is_full=False, base_full_snapshot=0.0
        )
        store.add(incr)
        assert store.usable(incr, 20.0)
        assert not store.usable(incr, 40.0)  # base full expired

    def test_out_of_order_add_rejected(self):
        store = RPStore("lvl")
        store.add(self.make_point(10.0))
        with pytest.raises(SimulationError):
            store.add(self.make_point(5.0))

    def test_invalid_point_rejected(self):
        with pytest.raises(SimulationError):
            RetrievalPoint(snapshot_time=10, available_at=5, expires_at=20)


@pytest.fixture(scope="module")
def baseline_sim():
    design = casestudy.baseline_design()
    register_design_demands(design, cello())
    sim = DependabilitySimulator(design, horizon=320 * WEEK)
    sim.build()
    return sim


class TestValidationAgainstAnalyticModel:
    """The headline property: simulated loss <= analytic worst case,
    and adversarial injection makes the bound tight."""

    @pytest.mark.parametrize(
        "scenario_factory,level_index",
        [
            (lambda: FailureScenario.array_failure("primary-array"), 2),
            (lambda: FailureScenario.site_disaster(PRIMARY_SITE), 3),
            (lambda: FailureScenario.object_corruption(1 * MB, "24 hr"), 1),
        ],
    )
    def test_bound_dominates_sweep(self, baseline_sim, scenario_factory, level_index):
        scenario = scenario_factory()
        bound = baseline_sim.analytic_bound(scenario)
        start, end = baseline_sim.steady_state_window()
        stats = summarize_losses(
            baseline_sim.measure_losses(scenario, sweep_times(start, end, 300))
        )
        assert stats.total_loss_count == 0
        assert stats.within_bound(bound)

    def test_bound_dominates_random(self, baseline_sim):
        scenario = FailureScenario.array_failure("primary-array")
        bound = baseline_sim.analytic_bound(scenario)
        start, end = baseline_sim.steady_state_window()
        stats = summarize_losses(
            baseline_sim.measure_losses(
                scenario, random_times(start, end, 300, seed=42)
            )
        )
        assert stats.within_bound(bound)

    def test_adversarial_times_achieve_bound(self, baseline_sim):
        scenario = FailureScenario.array_failure("primary-array")
        bound = baseline_sim.analytic_bound(scenario)
        start, end = baseline_sim.steady_state_window()
        times = adversarial_times(baseline_sim, level_index=2, start=start, end=end)
        stats = summarize_losses(baseline_sim.measure_losses(scenario, times))
        assert stats.within_bound(bound)
        assert stats.tightness(bound) > 0.99

    def test_mean_loss_well_below_worst_case(self, baseline_sim):
        """The worst case is pessimistic on average — the reason the
        paper reports it separately from typical behaviour."""
        scenario = FailureScenario.array_failure("primary-array")
        start, end = baseline_sim.steady_state_window()
        stats = summarize_losses(
            baseline_sim.measure_losses(scenario, sweep_times(start, end, 300))
        )
        assert stats.mean_loss < 0.75 * baseline_sim.analytic_bound(scenario)

    def test_simulated_source_matches_analytic_choice(self, baseline_sim):
        scenario = FailureScenario.array_failure("primary-array")
        start, end = baseline_sim.steady_state_window()
        for sample in baseline_sim.measure_losses(
            scenario, sweep_times(start, end, 50)
        ):
            assert sample.source_level_index == 2  # tape backup


class TestDegradedMode:
    def test_disabled_level_increases_exposure(self):
        design = casestudy.baseline_design()
        register_design_demands(design, cello())
        healthy = DependabilitySimulator(design, horizon=320 * WEEK)
        healthy.build()

        degraded_design = casestudy.baseline_design()
        register_design_demands(degraded_design, cello())
        degraded = DependabilitySimulator(degraded_design, horizon=320 * WEEK)
        start, end = healthy.steady_state_window()
        outage_start = start + 2 * WEEK
        # The tape backup service is down for two weeks.
        degraded.disable_level(2, outage_start, outage_start + 2 * WEEK)
        degraded.build()

        scenario = FailureScenario.array_failure("primary-array")
        probe = outage_start + 2 * WEEK  # failure right at service restoration
        healthy_loss = healthy.measure_loss(scenario, probe).data_loss
        degraded_loss = degraded.measure_loss(scenario, probe).data_loss
        assert degraded_loss > healthy_loss
        assert degraded_loss >= 2 * WEEK  # missed two weeks of backups

    def test_disable_after_build_rejected(self, baseline_sim):
        with pytest.raises(SimulationError):
            baseline_sim.disable_level(2, 0, WEEK)

    def test_disable_primary_rejected(self):
        design = casestudy.baseline_design()
        sim = DependabilitySimulator(design, horizon=320 * WEEK)
        with pytest.raises(SimulationError):
            sim.disable_level(0, 0, WEEK)


class TestSimulatorGuards:
    def test_short_horizon_rejected(self):
        design = casestudy.baseline_design()
        sim = DependabilitySimulator(design, horizon=1 * WEEK)
        with pytest.raises(SimulationError):
            sim.build()

    def test_failure_time_outside_horizon_rejected(self, baseline_sim):
        scenario = FailureScenario.array_failure("primary-array")
        with pytest.raises(SimulationError):
            baseline_sim.measure_loss(scenario, baseline_sim.horizon + 1)

    def test_injection_helpers_validate(self):
        with pytest.raises(SimulationError):
            sweep_times(10, 0, 5)
        with pytest.raises(SimulationError):
            sweep_times(0, 10, 0)
        with pytest.raises(SimulationError):
            random_times(0, 10, 0)

    def test_sweep_single_point(self):
        assert sweep_times(5, 10, 1) == [5]

    def test_summarize_empty_rejected(self):
        with pytest.raises(SimulationError):
            summarize_losses([])


class TestSubstreams:
    """The per-scenario substream contract behind parallel campaigns.

    One root seed plus a stream label must yield a sequence that does
    not depend on when, in what order, or in which worker it is drawn —
    the regression guard for the risk layer's serial == parallel
    byte-identity.
    """

    def test_substream_seed_is_deterministic(self):
        assert substream_seed(7, "risk:arr") == substream_seed(7, "risk:arr")

    def test_substreams_are_distinct(self):
        seeds = {
            substream_seed(7, f"risk:m-{i:03d}") for i in range(100)
        }
        assert len(seeds) == 100
        assert substream_seed(7, "risk:arr") != substream_seed(8, "risk:arr")

    def test_substream_rng_reproduces(self):
        a = substream_rng(7, "risk:arr").random(8)
        b = substream_rng(7, "risk:arr").random(8)
        assert list(a) == list(b)

    def test_random_times_stream_is_draw_order_independent(self):
        # Drawing stream B alone must equal drawing it after A: each
        # stream owns its generator, so sharding members across workers
        # (any order, any partition) reproduces the serial sequence.
        first_a = random_times(0, WEEK, 5, seed=7, stream="a")
        first_b = random_times(0, WEEK, 5, seed=7, stream="b")
        alone_b = random_times(0, WEEK, 5, seed=7, stream="b")
        assert first_b == alone_b
        assert first_a != first_b

    def test_random_times_without_stream_keeps_legacy_seeding(self):
        legacy = random_times(0, WEEK, 5, seed=42)
        import numpy as np

        rng = np.random.default_rng(42)
        assert legacy == sorted(rng.uniform(0, WEEK, 5))

    def test_stream_times_stay_in_window(self):
        times = random_times(3 * DAY, 2 * WEEK, 64, seed=0, stream="w")
        assert all(3 * DAY <= t <= 2 * WEEK for t in times)
