"""ASCII bar charts."""

import pytest

from repro.reporting import bar_chart, stacked_bar_chart


class TestBarChart:
    def test_bars_scale_to_largest(self):
        chart = bar_chart({"a": 10, "b": 20}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title(self):
        chart = bar_chart({"a": 1}, title="T")
        assert chart.splitlines()[0] == "T"

    def test_zero_values(self):
        chart = bar_chart({"a": 0, "b": 0})
        assert "#" not in chart

    def test_small_nonzero_gets_one_glyph(self):
        chart = bar_chart({"tiny": 1, "huge": 10_000}, width=10)
        assert chart.splitlines()[0].count("#") == 1

    def test_infinite_value(self):
        chart = bar_chart({"a": 5, "boom": float("inf")}, width=10)
        assert "unbounded" in chart
        assert chart.splitlines()[1].count("#") == 10

    def test_custom_formatter(self):
        chart = bar_chart({"a": 1500}, formatter=lambda v: f"${v / 1e3:.1f}K")
        assert "$1.5K" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 1}, width=0)


class TestStackedBarChart:
    def test_segments_use_distinct_glyphs(self):
        chart = stacked_bar_chart(
            {"row": {"x": 10, "y": 10}},
            segment_order=["x", "y"],
            width=10,
        )
        bar_line = chart.splitlines()[0]
        assert "#" in bar_line and "=" in bar_line

    def test_legend_present(self):
        chart = stacked_bar_chart(
            {"row": {"x": 1}}, segment_order=["x"]
        )
        assert "legend" in chart and "#=x" in chart

    def test_rows_scale_to_largest_total(self):
        chart = stacked_bar_chart(
            {"small": {"x": 5}, "big": {"x": 10}},
            segment_order=["x"],
            width=10,
        )
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_missing_segment_is_skipped(self):
        chart = stacked_bar_chart(
            {"row": {"x": 10}}, segment_order=["x", "y"], width=10
        )
        assert "=" not in chart.splitlines()[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stacked_bar_chart({}, segment_order=[])
