"""The batch update rate curve: interpolation, monotonicity, errors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WorkloadError
from repro.units import HOUR, KB, MINUTE
from repro.workload import BatchUpdateCurve


@pytest.fixture
def cello_curve():
    return BatchUpdateCurve(
        {
            "1 min": 727 * KB,
            "12 hr": 350 * KB,
            "24 hr": 317 * KB,
            "48 hr": 317 * KB,
            "1 wk": 317 * KB,
        },
        short_window_rate=799 * KB,
    )


class TestConstruction:
    def test_accepts_strings_and_numbers(self):
        curve = BatchUpdateCurve({60.0: 800 * KB, "1 hr": "500 KB/s"})
        assert curve.rate(60) == 800 * KB

    def test_empty_curve_rejected(self):
        with pytest.raises(WorkloadError):
            BatchUpdateCurve({})

    def test_duplicate_windows_rejected(self):
        with pytest.raises(WorkloadError):
            BatchUpdateCurve({"60 s": 100, "1 min": 200})

    def test_increasing_rate_rejected(self):
        # Rates must be non-increasing in the window.
        with pytest.raises(WorkloadError):
            BatchUpdateCurve({"1 min": 100, "1 hr": 200})

    def test_decreasing_unique_bytes_rejected(self):
        # 1 min at 100 B/s = 6000 B; 2 min at 40 B/s = 4800 B < 6000.
        with pytest.raises(WorkloadError):
            BatchUpdateCurve({"1 min": 100, "2 min": 40})

    def test_negative_rate_rejected(self):
        with pytest.raises(WorkloadError):
            BatchUpdateCurve({"1 min": -5})

    def test_zero_window_rejected(self):
        with pytest.raises(WorkloadError):
            BatchUpdateCurve({0: 100})

    def test_short_window_rate_below_first_sample_rejected(self):
        with pytest.raises(WorkloadError):
            BatchUpdateCurve({"1 min": 100}, short_window_rate=50)

    def test_default_short_window_rate_is_first_sample(self):
        curve = BatchUpdateCurve({"1 min": 100})
        assert curve.short_window_rate == 100


class TestQueries:
    def test_exact_sample_points(self, cello_curve):
        assert cello_curve.rate("1 min") == pytest.approx(727 * KB)
        assert cello_curve.rate("12 hr") == pytest.approx(350 * KB)
        assert cello_curve.rate("1 wk") == pytest.approx(317 * KB)

    def test_interpolation_between_samples(self, cello_curve):
        # Between 12 h and 24 h the rate must land between the samples.
        rate = cello_curve.rate("18 hr")
        assert 317 * KB <= rate <= 350 * KB

    def test_extrapolation_beyond_largest_window(self, cello_curve):
        # Beyond 1 week the largest-window rate persists (60 h resilver
        # window in the baseline uses this).
        assert cello_curve.rate("60 hr") == pytest.approx(317 * KB, rel=0.01)
        assert cello_curve.rate("8 wk") == pytest.approx(317 * KB)

    def test_below_smallest_window_uses_short_rate(self, cello_curve):
        assert cello_curve.rate("10 s") == pytest.approx(799 * KB)

    def test_zero_window_gives_zero_bytes(self, cello_curve):
        assert cello_curve.unique_bytes(0) == 0.0
        assert cello_curve.rate(0) == cello_curve.short_window_rate

    def test_negative_window_rejected(self, cello_curve):
        with pytest.raises(WorkloadError):
            cello_curve.unique_bytes(-5)

    def test_sample_windows_sorted(self, cello_curve):
        windows = cello_curve.sample_windows()
        assert list(windows) == sorted(windows)
        assert windows[0] == MINUTE

    def test_as_dict(self, cello_curve):
        mapping = cello_curve.as_dict()
        assert mapping[12 * HOUR] == pytest.approx(350 * KB)

    def test_iteration(self, cello_curve):
        points = list(cello_curve)
        assert len(points) == 5


class TestScaling:
    def test_scaled_rates(self, cello_curve):
        doubled = cello_curve.scaled(2.0)
        assert doubled.rate("12 hr") == pytest.approx(700 * KB)
        assert doubled.short_window_rate == pytest.approx(2 * 799 * KB)

    def test_scale_by_zero(self, cello_curve):
        silent = cello_curve.scaled(0.0)
        assert silent.rate("12 hr") == 0.0

    def test_negative_scale_rejected(self, cello_curve):
        with pytest.raises(WorkloadError):
            cello_curve.scaled(-1.0)


class TestCurveInvariants:
    """Property-based checks of the two monotonicity invariants."""

    @staticmethod
    @st.composite
    def curves(draw):
        n = draw(st.integers(min_value=1, max_value=6))
        windows = sorted(
            draw(
                st.lists(
                    st.floats(min_value=1.0, max_value=1e6),
                    min_size=n,
                    max_size=n,
                    unique=True,
                )
            )
        )
        # Build rates that respect both invariants: start from a rate and
        # shrink it while keeping window*rate non-decreasing.
        first_rate = draw(st.floats(min_value=1.0, max_value=1e6))
        points = {windows[0]: first_rate}
        prev_w, prev_r = windows[0], first_rate
        for w in windows[1:]:
            lo = prev_w * prev_r / w  # keeps unique bytes non-decreasing
            rate = draw(st.floats(min_value=lo, max_value=prev_r))
            points[w] = rate
            prev_w, prev_r = w, rate
        return BatchUpdateCurve(points)

    @given(curve=curves(), fraction=st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=80, deadline=None)
    def test_unique_bytes_monotone_in_window(self, curve, fraction):
        w_max = curve.sample_windows()[-1]
        a = fraction * w_max
        b = a * 1.5 + 1.0
        assert curve.unique_bytes(b) >= curve.unique_bytes(a) - 1e-6

    @given(curve=curves(), fraction=st.floats(min_value=0.01, max_value=2.0))
    @settings(max_examples=80, deadline=None)
    def test_rate_never_exceeds_short_window_rate(self, curve, fraction):
        w_max = curve.sample_windows()[-1]
        window = fraction * w_max
        assert curve.rate(window) <= curve.short_window_rate * (1 + 1e-9)
