"""Device models: envelopes, demand ledger, utilization, outlays, spares."""

import pytest

from repro.devices import (
    CostModel,
    Demand,
    Device,
    DiskArray,
    NetworkLink,
    Shipment,
    SpareConfig,
    SpareType,
    TapeLibrary,
    Vault,
)
from repro.exceptions import DeviceError
from repro.units import GB, HOUR, MB, TB


class TestCostModel:
    def test_from_paper_units(self):
        model = CostModel.from_paper_units(fixed=100, per_gb=2.0, per_mb_per_sec=3.0)
        assert model.fixed == 100
        assert model.capacity_cost(10 * GB) == pytest.approx(20.0)
        assert model.bandwidth_cost(5 * MB) == pytest.approx(15.0)

    def test_shipment_cost(self):
        model = CostModel(per_shipment=50)
        assert model.shipment_cost(13) == 650.0

    def test_total_cost_composition(self):
        model = CostModel.from_paper_units(fixed=10, per_gb=1, per_mb_per_sec=1)
        total = model.total_cost(capacity_bytes=2 * GB, bandwidth_bps=3 * MB)
        assert total == pytest.approx(10 + 2 + 3)

    def test_negative_components_rejected(self):
        with pytest.raises(DeviceError):
            CostModel(fixed=-1)

    def test_negative_usage_clamped(self):
        model = CostModel.from_paper_units(per_gb=1)
        assert model.capacity_cost(-5) == 0.0


class TestSpareConfig:
    def test_dedicated_defaults(self):
        spare = SpareConfig.dedicated()
        assert spare.spare_type is SpareType.DEDICATED
        assert spare.provisioning_time == 60.0
        assert spare.discount == 1.0
        assert spare.exists

    def test_shared_defaults(self):
        spare = SpareConfig.shared()
        assert spare.provisioning_time == 9 * HOUR
        assert spare.discount == 0.2

    def test_none_has_no_cost_or_time(self):
        spare = SpareConfig.none()
        assert not spare.exists
        with pytest.raises(DeviceError):
            SpareConfig(SpareType.NONE, provisioning_time=60)

    def test_negative_discount_rejected(self):
        with pytest.raises(DeviceError):
            SpareConfig(SpareType.DEDICATED, 60, discount=-0.5)


def plain_device(**overrides):
    params = dict(
        name="dev",
        max_capacity=100 * GB,
        max_bandwidth=100 * MB,
        cost_model=CostModel.from_paper_units(fixed=1000, per_gb=1, per_mb_per_sec=2),
    )
    params.update(overrides)
    return Device(**params)


class TestDeviceLedger:
    def test_demand_validation(self):
        with pytest.raises(DeviceError):
            Demand(technique="", bandwidth=1)
        with pytest.raises(DeviceError):
            Demand(technique="t", bandwidth=-1)

    def test_register_and_clear(self):
        dev = plain_device()
        dev.register_demand("a", bandwidth=10 * MB, capacity=10 * GB)
        dev.register_demand("b", capacity=20 * GB)
        assert len(dev.demands) == 2
        assert dev.primary_technique == "a"
        dev.clear_demands()
        assert dev.demands == ()
        assert dev.primary_technique is None

    def test_utilizations(self):
        dev = plain_device()
        dev.register_demand("a", bandwidth=25 * MB, capacity=50 * GB)
        assert dev.bandwidth_utilization() == pytest.approx(0.25)
        assert dev.capacity_utilization() == pytest.approx(0.50)
        assert dev.available_bandwidth() == pytest.approx(75 * MB)

    def test_infinite_envelopes_report_zero_utilization(self):
        dev = plain_device(max_capacity=float("inf"), max_bandwidth=float("inf"))
        dev.register_demand("a", bandwidth=1e9, capacity=1e15)
        assert dev.capacity_utilization() == 0.0
        assert dev.bandwidth_utilization() == 0.0
        assert dev.available_bandwidth() == float("inf")

    def test_utilization_report_by_technique(self):
        dev = plain_device()
        dev.register_demand("a", bandwidth=10 * MB, capacity=10 * GB)
        dev.register_demand("b", bandwidth=30 * MB, capacity=40 * GB)
        report = dev.utilization()
        assert report.bandwidth_demand == pytest.approx(40 * MB)
        assert len(report.by_technique) == 2
        assert report.by_technique[1].capacity_utilization == pytest.approx(0.4)

    def test_describe_has_name(self):
        dev = plain_device()
        assert "dev" in dev.utilization().describe()


class TestDeviceOutlays:
    def test_fixed_cost_goes_to_primary_technique(self):
        dev = plain_device()
        dev.register_demand("primary", capacity=10 * GB)
        dev.register_demand("secondary", capacity=10 * GB)
        outlays = dev.outlays_by_technique()
        assert outlays["primary"] == pytest.approx(1000 + 10)
        assert outlays["secondary"] == pytest.approx(10)

    def test_spare_multiplies_outlays(self):
        dev = plain_device(spare=SpareConfig.dedicated("60 s", 1.0))
        dev.register_demand("primary", capacity=10 * GB)
        assert dev.outlays_by_technique()["primary"] == pytest.approx(2 * 1010)

    def test_shared_spare_fractional(self):
        dev = plain_device(spare=SpareConfig.shared("9 hr", 0.2))
        dev.register_demand("primary", capacity=10 * GB)
        assert dev.outlays_by_technique()["primary"] == pytest.approx(1.2 * 1010)

    def test_same_technique_twice_charged_fixed_once(self):
        dev = plain_device()
        dev.register_demand("primary", capacity=10 * GB)
        dev.register_demand("primary", capacity=10 * GB)
        assert dev.total_outlay() == pytest.approx(1000 + 20)


class TestDiskArray:
    def make(self, **overrides):
        params = dict(
            name="array",
            max_capacity_slots=256,
            slot_capacity=73 * GB,
            max_bandwidth_slots=256,
            slot_bandwidth=25 * MB,
            enclosure_bandwidth=512 * MB,
            raid_capacity_factor=2.0,
        )
        params.update(overrides)
        return DiskArray(**params)

    def test_envelopes_use_min_of_enclosure_and_slots(self):
        array = self.make()
        assert array.max_capacity == 256 * 73 * GB
        # 256 * 25 MB/s exceeds the 512 MB/s enclosure -> enclosure binds.
        assert array.max_bandwidth == 512 * MB

    def test_slot_bound_bandwidth(self):
        array = self.make(max_bandwidth_slots=4, enclosure_bandwidth=512 * MB)
        assert array.max_bandwidth == 4 * 25 * MB

    def test_raid_factor_inflates_capacity(self):
        array = self.make()
        array.register_demand("a", capacity=1360 * GB)
        assert array.capacity_demand_raw() == pytest.approx(2720 * GB)
        assert array.capacity_utilization() == pytest.approx(
            2720 * GB / (256 * 73 * GB)
        )

    def test_raid_factor_below_one_rejected(self):
        with pytest.raises(DeviceError):
            self.make(raid_capacity_factor=0.5)

    def test_disks_required(self):
        array = self.make()
        array.register_demand("a", capacity=365 * GB)  # 730 GB raw
        assert array.disks_required() == 10

    def test_zero_slots_rejected(self):
        with pytest.raises(DeviceError):
            self.make(max_capacity_slots=0)


class TestTapeLibrary:
    def make(self):
        return TapeLibrary(
            name="lib",
            max_cartridges=500,
            cartridge_capacity=400 * GB,
            max_drives=16,
            drive_bandwidth=60 * MB,
            enclosure_bandwidth=240 * MB,
        )

    def test_envelopes(self):
        lib = self.make()
        assert lib.max_capacity == 500 * 400 * GB
        assert lib.max_bandwidth == 240 * MB  # enclosure binds vs 960
        assert lib.access_delay == pytest.approx(36.0)

    def test_no_raid_overhead(self):
        lib = self.make()
        lib.register_demand("backup", capacity=1 * TB)
        assert lib.capacity_demand_raw() == 1 * TB

    def test_cartridge_and_drive_math(self):
        lib = self.make()
        lib.register_demand("backup", bandwidth=100 * MB, capacity=1000 * GB)
        assert lib.cartridges_required() == 3
        assert lib.drives_required() == 2
        assert lib.cartridges_for(1360 * GB) == 4


class TestVault:
    def test_capacity_only(self):
        vault = Vault("v", max_cartridges=5000, cartridge_capacity=400 * GB)
        assert vault.max_capacity == 5000 * 400 * GB
        assert vault.max_bandwidth == float("inf")
        vault.register_demand("vaulting", capacity=39 * 1360 * GB)
        assert vault.bandwidth_utilization() == 0.0
        assert vault.capacity_utilization() == pytest.approx(0.0265, abs=0.001)


class TestInterconnects:
    def test_network_link_aggregation(self):
        link = NetworkLink("wan", link_bandwidth="155 Mbps", link_count=10)
        assert link.max_bandwidth == pytest.approx(10 * 155e6 / 8)
        assert link.is_interconnect

    def test_network_transfer_time_uses_available_bandwidth(self):
        link = NetworkLink("wan", link_bandwidth=10 * MB)
        link.register_demand("mirror", bandwidth=5 * MB)
        assert link.transfer_time(50 * MB) == pytest.approx(10.0)

    def test_network_transfer_zero_bytes(self):
        link = NetworkLink("wan", link_bandwidth=10 * MB)
        assert link.transfer_time(0) == 0.0

    def test_saturated_link_transfer_is_infinite(self):
        link = NetworkLink("wan", link_bandwidth=10 * MB)
        link.register_demand("mirror", bandwidth=10 * MB)
        assert link.transfer_time(1) == float("inf")

    def test_link_billed_on_provisioned_bandwidth(self):
        link = NetworkLink(
            "wan",
            link_bandwidth=1 * MB,
            link_count=10,
            cost_model=CostModel(per_byte_per_sec=1.0),
        )
        link.register_demand("mirror", bandwidth=0.1 * MB)  # nearly idle
        assert link.outlays_by_technique()["mirror"] == pytest.approx(10 * MB)

    def test_unused_link_has_no_outlay(self):
        link = NetworkLink("wan", link_bandwidth=1 * MB,
                           cost_model=CostModel(per_byte_per_sec=1.0))
        assert link.outlays_by_technique() == {}

    def test_shipment_constant_delay(self):
        courier = Shipment("air", delay="24 hr")
        assert courier.transfer_time(1) == 24 * HOUR
        assert courier.transfer_time(100 * TB) == 24 * HOUR
        assert courier.transfer_time(0) == 0.0

    def test_shipment_outlay_per_run(self):
        courier = Shipment("air", cost_model=CostModel(per_shipment=50))
        courier.register_demand("vaulting", shipments_per_year=13)
        assert courier.outlays_by_technique()["vaulting"] == pytest.approx(650)

    def test_zero_links_rejected(self):
        with pytest.raises(DeviceError):
            NetworkLink("wan", link_bandwidth=1 * MB, link_count=0)
