"""The run observatory: store, record fallbacks, diff, attribution, CLI.

Covers the observatory end to end:

* manifest schema v2 round-trips (rollup, metrics snapshot, task
  records) and the crash-safe atomic manifest write;
* v1 backward compatibility against the committed fixture in
  ``tests/data/ledger_v1`` — span rollups rebuilt from ``spans.jsonl``,
  counters recovered from ``metrics.prom``;
* ledger edge cases: crashed runs (manifest stuck ``running``), empty
  span streams, heartbeat-only progress files, unparseable manifests
  (skip-and-count), schema-version mismatches between compared runs;
* :func:`repro.obs.diff.diff_runs`: identical pairs diff to nothing,
  seeded slowdowns attribute to the correct deepest span path,
  correctness drift separates from cache/perf churn;
* the engine's task log: keys + result digests recorded identically in
  serial and parallel runs;
* the ``repro runs`` CLI family and the ``--fail-on-regression`` /
  ``--baseline`` gates.

All span trees are built with an injected fake clock, so every timing
assertion is exact, not statistical.
"""

import json
import os

import pytest

from repro import casestudy
from repro.cli import main
from repro.engine import EngineConfig, EvaluationTask, map_evaluations, shutdown_pool
from repro.obs import (
    MANIFEST_SCHEMA,
    ManifestError,
    MetricsRegistry,
    RunLedger,
    Tracer,
    read_manifest,
)
from repro.obs.diff import diff_runs
from repro.obs.runs import (
    NULL_TASK_LOG,
    RunLookupError,
    RunRecord,
    RunStore,
    TaskLog,
    get_task_log,
    resolve_run,
    use_task_log,
)
from repro.workload.presets import cello

FIXTURE_V1 = os.path.join(os.path.dirname(__file__), "data", "ledger_v1")


class FakeClock:
    """A scripted monotonic clock: advances only when told to."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance_ms(self, ms):
        self.now += ms / 1000.0


def emit_spans(tracer, clock, plan):
    """Emit one (name, self_ms, children) tree through the tracer."""
    name, self_ms, children = plan
    with tracer.span(name):
        for child in children:
            emit_spans(tracer, clock, child)
        clock.advance_ms(self_ms)


def make_run(
    directory,
    plans,
    run_id,
    command="evaluate",
    counters=None,
    tasks=None,
    model_version="engine-v1:feedface00000000",
    status="ok",
):
    """Write one complete v2 ledger with exact, scripted span timings."""
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    for plan in plans:
        emit_spans(tracer, clock, plan)
    registry = MetricsRegistry()
    for name, value in (counters or {}).items():
        registry.counter(name).inc(value)
    ledger = RunLedger(directory, run_id=run_id, argv=[command])
    ledger.begin(extra={"command": command, "model_schema_version": model_version})
    ledger.finish(tracer, registry, status=status, tasks=tasks)
    return ledger


#: The baseline span forest: optimize > map > {task: 10ms, serialize: 2ms}.
BASE_PLAN = [
    (
        "optimize",
        3.0,
        [("engine.map", 5.0, [("engine.task", 10.0, []), ("serialize", 2.0, [])])],
    )
]

#: The same forest with engine.task seeded 50ms slower.
SLOW_PLAN = [
    (
        "optimize",
        3.0,
        [("engine.map", 5.0, [("engine.task", 60.0, []), ("serialize", 2.0, [])])],
    )
]


def task_record(key, digest, cached=False, task="design", label="array"):
    return {
        "task": task,
        "label": label,
        "key": key,
        "digest": digest,
        "cached": cached,
        "ok": True,
        "error_type": None,
        "attempts": 1,
    }


class TestManifestV2:
    def test_round_trip_rollup_metrics_tasks(self, tmp_path):
        tasks = [task_record("k1", "d1"), task_record("k2", "d2", cached=True)]
        make_run(
            tmp_path / "run",
            BASE_PLAN,
            run_id="r-1",
            counters={"evaluate.calls": 4},
            tasks=tasks,
        )
        record = RunRecord.load(tmp_path / "run")
        assert record.manifest_schema == MANIFEST_SCHEMA
        assert record.run_id == "r-1"
        stats = record.span_stats()
        assert stats["engine.task"]["cum_ms"] == pytest.approx(10.0)
        assert stats["optimize"]["cum_ms"] == pytest.approx(20.0)
        assert stats["optimize"]["self_ms"] == pytest.approx(3.0)
        (root,) = record.tree()
        assert root["name"] == "optimize"
        assert root["children"][0]["name"] == "engine.map"
        assert record.metrics()["counters"]["evaluate.calls"] == 4
        assert record.tasks() == tasks
        # The exposition carries the run's identity as an info metric.
        prom = (tmp_path / "run" / "metrics.prom").read_text()
        assert 'repro_run_info{run_id="r-1"} 1' in prom

    def test_manifest_write_is_atomic(self, tmp_path):
        make_run(tmp_path / "run", BASE_PLAN, run_id="r-atomic")
        leftovers = [
            name
            for name in os.listdir(tmp_path / "run")
            if ".tmp." in name
        ]
        assert leftovers == []
        assert read_manifest(tmp_path / "run")["status"] == "ok"

    def test_unparseable_manifest_raises_manifest_error(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        (run / "manifest.json").write_text("{torn")
        with pytest.raises(ManifestError):
            read_manifest(run)
        (run / "manifest.json").write_text('["not a mapping"]')
        with pytest.raises(ManifestError):
            read_manifest(run)
        with pytest.raises(ManifestError):
            read_manifest(tmp_path / "missing")


class TestV1Compatibility:
    def test_fixture_loads_with_schema_1(self):
        record = RunRecord.load(FIXTURE_V1)
        assert record.manifest_schema == 1
        assert record.run_id == "20260101T000000-0001-deadbeef"
        assert record.command == "optimize"
        assert record.status == "ok"

    def test_rollup_rebuilt_from_span_stream(self):
        record = RunRecord.load(FIXTURE_V1)
        stats = record.span_stats()
        # Two engine.task spans, 48ms + 45ms, merged by name.
        assert stats["engine.task"]["calls"] == 2
        assert stats["engine.task"]["cum_ms"] == pytest.approx(93.0)
        # Self time subtracts the nested evaluate_scenarios.
        assert stats["engine.task"]["self_ms"] == pytest.approx(53.0)
        (root,) = record.tree()
        assert root["name"] == "optimizer.optimize"
        assert record.rollup()["total_ms"] == pytest.approx(100.0)
        assert record.rollup()["span_count"] == 5

    def test_metrics_recovered_from_prom(self):
        record = RunRecord.load(FIXTURE_V1)
        metrics = record.metrics()
        assert metrics["counters"]["evaluate_calls"] == 16
        assert metrics["gauges"]["engine_tasks_inflight"] == 0
        assert metrics["histograms"]["evaluate_ms"]["count"] == 16

    def test_fixture_diffs_cleanly_against_itself(self):
        record = RunRecord.load(FIXTURE_V1)
        diff = diff_runs(record, RunRecord.load(FIXTURE_V1))
        assert not diff.has_regressions and not diff.has_drift
        assert diff.total_delta_ms == pytest.approx(0.0)
        assert all(d.delta == 0.0 for d in diff.counter_deltas)

    def test_v1_counters_align_with_v2_dotted_names(self, tmp_path):
        # v1 stores sanitized prom names; v2 stores dotted instrument
        # names. The diff must join them as the same counter.
        make_run(
            tmp_path / "v2",
            BASE_PLAN,
            run_id="r-v2",
            counters={"evaluate.calls": 16, "engine.cache.misses": 0},
        )
        diff = diff_runs(RunRecord.load(FIXTURE_V1), RunRecord.load(tmp_path / "v2"))
        deltas = {d.name: d for d in diff.counter_deltas}
        assert deltas["evaluate_calls"].base == 16
        assert deltas["evaluate_calls"].cand == 16
        assert deltas["evaluate_calls"].delta == 0.0


class TestLedgerEdgeCases:
    def test_crashed_run_status_stays_running(self, tmp_path):
        ledger = RunLedger(tmp_path / "crash", run_id="r-crash", argv=[])
        ledger.begin(extra={"command": "evaluate"})
        # No finish(): the process died. The begin manifest survives.
        record = RunRecord.load(tmp_path / "crash")
        assert record.status == "running"
        assert record.span_stats() == {}
        assert record.tasks() == []
        assert record.wall_time_s is None

    def test_empty_span_stream_rolls_up_to_nothing(self, tmp_path):
        run = tmp_path / "empty"
        ledger = RunLedger(run, run_id="r-empty", argv=[])
        ledger.begin()
        (run / "spans.jsonl").write_text("")
        record = RunRecord.load(run)
        assert record.rollup()["span_count"] == 0
        assert record.tree() == []

    def test_heartbeat_only_progress_file(self, tmp_path):
        ledger = RunLedger(tmp_path / "hb", run_id="r-hb", argv=[])
        ledger.begin()
        ledger.heartbeat({"done": 1, "total": 8})
        ledger.heartbeat({"done": 8, "total": 8})
        record = RunRecord.load(tmp_path / "hb")
        assert [h["done"] for h in record.heartbeats()] == [1, 8]

    def test_store_skips_and_counts_unparseable_manifests(self, tmp_path):
        make_run(tmp_path / "good", BASE_PLAN, run_id="r-good")
        torn = tmp_path / "torn"
        torn.mkdir()
        (torn / "manifest.json").write_text("{")
        store = RunStore(tmp_path)
        records = store.scan()
        assert [r.run_id for r in records] == ["r-good"]
        assert len(store.skipped) == 1
        assert str(torn) in store.skipped[0][0]


class TestRunStore:
    def make_three(self, tmp_path):
        make_run(tmp_path / "a", BASE_PLAN, run_id="aaa-1", command="evaluate")
        make_run(tmp_path / "b", BASE_PLAN, run_id="bbb-2", command="optimize")
        make_run(
            tmp_path / "c",
            BASE_PLAN,
            run_id="bbc-3",
            command="optimize",
            status="error",
        )
        return RunStore(tmp_path)

    def test_list_filters(self, tmp_path):
        store = self.make_three(tmp_path)
        assert len(store.list()) == 3
        assert [r.run_id for r in store.list(command="evaluate")] == ["aaa-1"]
        assert [r.run_id for r in store.list(status="error")] == ["bbc-3"]
        assert len(store.list(schema=str(MANIFEST_SCHEMA))) == 3
        assert len(store.list(schema="engine-v1")) == 3
        assert store.list(schema="engine-v99") == []

    def test_latest_prefers_newest(self, tmp_path):
        store = self.make_three(tmp_path)
        # Equal start stamps tie-break on run_id.
        assert store.latest().run_id == "bbc-3"
        assert store.latest(command="evaluate").run_id == "aaa-1"
        assert RunStore(tmp_path / "nowhere").latest() is None

    def test_find_exact_prefix_ambiguous_missing(self, tmp_path):
        store = self.make_three(tmp_path)
        assert store.find("aaa-1").run_id == "aaa-1"  # exact run ID
        assert store.find("c").run_id == "bbc-3"      # exact dirname
        assert store.find("bbb").run_id == "bbb-2"    # unique ID prefix
        with pytest.raises(RunLookupError):
            store.find("bb")  # ambiguous prefix: bbb-2 and bbc-3
        with pytest.raises(RunLookupError):
            store.find("zzz")

    def test_gc_keeps_newest_and_running(self, tmp_path):
        store = self.make_three(tmp_path)
        crash = RunLedger(tmp_path / "live", run_id="zzz-live", argv=[])
        crash.begin()
        removed = store.gc(keep=1)
        assert [r.run_id for r in removed] == ["aaa-1", "bbb-2"]
        survivors = {r.run_id for r in store.scan()}
        assert survivors == {"bbc-3", "zzz-live"}

    def test_resolve_run_by_path_and_token(self, tmp_path):
        self.make_three(tmp_path)
        assert resolve_run(str(tmp_path / "a")).run_id == "aaa-1"
        assert resolve_run("bbb-2", root=tmp_path).run_id == "bbb-2"
        with pytest.raises(RunLookupError):
            resolve_run("bbb-2")  # no root to resolve against


class TestDiff:
    def test_identical_pair_diffs_to_nothing(self, tmp_path):
        tasks = [task_record("k1", "d1"), task_record("k2", "d2")]
        make_run(
            tmp_path / "one", BASE_PLAN, run_id="r1",
            counters={"evaluate.calls": 4}, tasks=tasks,
        )
        make_run(
            tmp_path / "two", BASE_PLAN, run_id="r2",
            counters={"evaluate.calls": 4}, tasks=tasks,
        )
        diff = diff_runs(
            RunRecord.load(tmp_path / "one"), RunRecord.load(tmp_path / "two")
        )
        assert not diff.has_regressions
        assert not diff.has_drift
        assert diff.total_delta_ms == pytest.approx(0.0)
        assert diff.matched_tasks == 2
        assert diff.tasks_added == [] and diff.tasks_removed == []
        assert diff.newly_cached == [] and diff.newly_uncached == []
        assert not diff.schema_mismatch

    def test_seeded_slowdown_attributes_to_deepest_path(self, tmp_path):
        make_run(tmp_path / "base", BASE_PLAN, run_id="rb")
        make_run(tmp_path / "slow", SLOW_PLAN, run_id="rs")
        diff = diff_runs(
            RunRecord.load(tmp_path / "base"), RunRecord.load(tmp_path / "slow")
        )
        assert diff.has_regressions
        (attribution,) = diff.regressions
        assert attribution.path == ["optimize", "engine.map", "engine.task"]
        assert attribution.leaf == "engine.task"
        assert attribution.root_delta_ms == pytest.approx(50.0)
        assert attribution.delta_ms == pytest.approx(50.0)
        assert attribution.share == pytest.approx(1.0)
        assert "engine.task" in attribution.describe()

    def test_small_deltas_stay_below_thresholds(self, tmp_path):
        jitter = [("optimize", 3.5, [("engine.map", 5.0, [])])]
        make_run(tmp_path / "base", BASE_PLAN, run_id="rb")
        make_run(tmp_path / "near", jitter, run_id="rn")
        diff = diff_runs(
            RunRecord.load(tmp_path / "base"), RunRecord.load(tmp_path / "near")
        )
        # 0.5ms slower: under the 5ms absolute gate, no regression.
        assert not diff.has_regressions

    def test_correctness_drift_vs_cache_churn(self, tmp_path):
        base_tasks = [
            task_record("k1", "d1"),
            task_record("k2", "d2"),
            task_record("k3", "d3"),
        ]
        cand_tasks = [
            task_record("k1", "DIFFERENT"),          # drift
            task_record("k2", "d2", cached=True),    # newly cached
            task_record("k4", "d4"),                 # added (k3 removed)
        ]
        make_run(tmp_path / "base", BASE_PLAN, run_id="rb", tasks=base_tasks)
        make_run(tmp_path / "cand", BASE_PLAN, run_id="rc", tasks=cand_tasks)
        diff = diff_runs(
            RunRecord.load(tmp_path / "base"), RunRecord.load(tmp_path / "cand")
        )
        (drift,) = diff.correctness_drift
        assert drift.key == "k1"
        assert drift.base_digest == "d1" and drift.cand_digest == "DIFFERENT"
        assert diff.newly_cached == ["k2"]
        assert diff.tasks_added == ["k4"]
        assert diff.tasks_removed == ["k3"]
        assert diff.matched_tasks == 2

    def test_schema_mismatch_flagged(self, tmp_path):
        make_run(tmp_path / "old", BASE_PLAN, run_id="ro",
                 model_version="engine-v1:aaaa")
        make_run(tmp_path / "new", BASE_PLAN, run_id="rn",
                 model_version="engine-v1:bbbb")
        diff = diff_runs(
            RunRecord.load(tmp_path / "old"), RunRecord.load(tmp_path / "new")
        )
        assert diff.schema_mismatch
        assert diff.to_dict()["schema_mismatch"] is True

    def test_span_added_and_removed_marked(self, tmp_path):
        make_run(tmp_path / "base", BASE_PLAN, run_id="rb")
        extra = [("optimize", 3.0, [("brand.new", 7.0, [])])]
        make_run(tmp_path / "cand", extra, run_id="rc")
        diff = diff_runs(
            RunRecord.load(tmp_path / "base"), RunRecord.load(tmp_path / "cand")
        )
        by_name = {d.name: d for d in diff.span_deltas}
        assert by_name["brand.new"].status == "added"
        assert by_name["engine.task"].status == "removed"
        assert by_name["optimize"].status == "common"

    def test_to_dict_is_json_serializable(self, tmp_path):
        make_run(tmp_path / "base", BASE_PLAN, run_id="rb",
                 counters={"evaluate.calls": 1})
        make_run(tmp_path / "cand", SLOW_PLAN, run_id="rc",
                 counters={"evaluate.calls": 2})
        diff = diff_runs(
            RunRecord.load(tmp_path / "base"), RunRecord.load(tmp_path / "cand")
        )
        document = json.loads(json.dumps(diff.to_dict()))
        assert document["base"]["run_id"] == "rb"
        assert document["regressions"][0]["path"][-1] == "engine.task"


class TestTaskLog:
    @pytest.fixture(autouse=True)
    def _no_leftover_pool(self):
        yield
        shutdown_pool()

    def make_tasks(self):
        workload = cello()
        scenarios = tuple(casestudy.case_study_scenarios())
        requirements = casestudy.case_study_requirements()
        return [
            EvaluationTask(
                name="baseline",
                workload=workload,
                scenarios=scenarios,
                requirements=requirements,
                factory=casestudy.baseline_design,
            )
        ]

    def test_null_log_by_default(self):
        assert get_task_log() is NULL_TASK_LOG
        assert not get_task_log().enabled

    def test_log_records_keys_and_digests(self):
        with use_task_log(TaskLog()) as log:
            (outcome,) = map_evaluations(self.make_tasks())
        assert outcome.ok
        (record,) = log.records
        assert record["task"] == "baseline"
        assert len(record["key"]) == 64
        assert len(record["digest"]) == 64
        assert record["ok"] and not record["cached"]
        assert record["error_type"] is None

    def test_serial_and_parallel_digests_match(self):
        with use_task_log(TaskLog()) as serial_log:
            map_evaluations(self.make_tasks())
        with use_task_log(TaskLog()) as parallel_log:
            map_evaluations(self.make_tasks(), EngineConfig(workers=2))
        (serial,) = serial_log.records
        (parallel,) = parallel_log.records
        assert serial["key"] == parallel["key"]
        assert serial["digest"] == parallel["digest"]


class TestRunsCli:
    def seed_pair(self, tmp_path):
        tasks = [task_record("k1", "d1")]
        make_run(tmp_path / "base", BASE_PLAN, run_id="run-base", tasks=tasks)
        make_run(tmp_path / "slow", SLOW_PLAN, run_id="run-slow", tasks=tasks)
        return str(tmp_path)

    def test_list_and_show_and_latest(self, tmp_path, capsys):
        root = self.seed_pair(tmp_path)
        assert main(["runs", "list", "--runs-root", root]) == 0
        out = capsys.readouterr().out
        assert "run-base" in out and "run-slow" in out
        assert main(["runs", "show", "run-base", "--runs-root", root]) == 0
        assert "manifest v2" in capsys.readouterr().out
        assert main(["runs", "latest", "--runs-root", root]) == 0
        assert "run-slow" in capsys.readouterr().out

    def test_list_json(self, tmp_path, capsys):
        root = self.seed_pair(tmp_path)
        assert main(["runs", "list", "--runs-root", root, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["run_id"] for r in payload["runs"]] == ["run-base", "run-slow"]
        assert payload["skipped"] == []

    def test_diff_gate_passes_on_identical_pair(self, tmp_path, capsys):
        tasks = [task_record("k1", "d1")]
        make_run(tmp_path / "one", BASE_PLAN, run_id="r1", tasks=tasks)
        make_run(tmp_path / "two", BASE_PLAN, run_id="r2", tasks=tasks)
        code = main(
            ["runs", "diff", "r1", "r2", "--runs-root", str(tmp_path),
             "--fail-on-regression"]
        )
        assert code == 0
        assert "no span regressions" in capsys.readouterr().out

    def test_diff_gate_fails_on_seeded_slowdown(self, tmp_path, capsys):
        root = self.seed_pair(tmp_path)
        out_path = tmp_path / "diff.json"
        code = main(
            ["runs", "diff", "run-base", "run-slow", "--runs-root", root,
             "--fail-on-regression", "--json-out", str(out_path)]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "optimize > engine.map > engine.task" in captured.out
        assert "FAIL" in captured.err
        document = json.loads(out_path.read_text())
        assert document["regressions"][0]["path"] == [
            "optimize", "engine.map", "engine.task",
        ]

    def test_diff_without_gate_reports_but_exits_zero(self, tmp_path):
        root = self.seed_pair(tmp_path)
        assert main(["runs", "diff", "run-base", "run-slow",
                     "--runs-root", root]) == 0

    def test_diff_json_format(self, tmp_path, capsys):
        root = self.seed_pair(tmp_path)
        code = main(["runs", "diff", "run-base", "run-slow", "--runs-root",
                     root, "--format", "json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["cand"]["run_id"] == "run-slow"

    def test_gc_cli(self, tmp_path, capsys):
        root = self.seed_pair(tmp_path)
        assert main(["runs", "gc", "--keep", "1", "--runs-root", root]) == 0
        assert "removed 1 run(s)" in capsys.readouterr().out
        store = RunStore(root)
        assert [r.run_id for r in store.scan()] == ["run-slow"]

    def test_unknown_run_exits_2(self, tmp_path, capsys):
        root = self.seed_pair(tmp_path)
        assert main(["runs", "show", "nope", "--runs-root", root]) == 2
        assert "error" in capsys.readouterr().err

    def test_baseline_requires_run_dir(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text('{"design": "baseline", "scenarios": ["array"]}')
        code = main(["evaluate", str(spec), "--baseline", "whatever"])
        assert code == 2
        assert "--run-dir" in capsys.readouterr().err

    def test_baseline_auto_diff_on_stderr(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text('{"design": "baseline", "scenarios": ["array"]}')
        first = main(["evaluate", str(spec), "--run-dir",
                      str(tmp_path / "runs" / "one")])
        assert first == 0
        capsys.readouterr()
        second = main(["evaluate", str(spec), "--run-dir",
                       str(tmp_path / "runs" / "two"), "--baseline", "one"])
        assert second == 0
        captured = capsys.readouterr()
        assert "no correctness drift" in captured.err
        assert "no correctness drift" not in captured.out

    def test_run_dir_manifest_carries_tasks(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text('{"design": "baseline", "scenarios": ["array"]}')
        assert main(["evaluate", str(spec), "--run-dir",
                     str(tmp_path / "run")]) == 0
        capsys.readouterr()
        record = RunRecord.load(tmp_path / "run")
        assert record.manifest_schema == MANIFEST_SCHEMA
        (task,) = record.tasks()
        assert task["task"] == "baseline"
        assert len(task["key"]) == 64 and len(task["digest"]) == 64
        # And the CLI leaves the process-global log reset afterwards.
        assert get_task_log() is NULL_TASK_LOG
