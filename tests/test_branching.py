"""Branching hierarchies: multiple levels feeding from one parent."""

import pytest

import repro
from repro.core.demands import register_design_demands
from repro.core.dataloss import level_range
from repro.devices.catalog import (
    enterprise_tape_library,
    midrange_disk_array,
    oc3_links,
    san_link,
)
from repro.exceptions import DesignError
from repro.scenarios import FailureScenario
from repro.scenarios.locations import PRIMARY_SITE, REMOTE_SITE
from repro.units import HOUR, MB
from repro.workload.presets import cello


@pytest.fixture
def branched_design():
    """Snapshot AND mirror both feeding from the primary, plus backup
    off the snapshot: a tree, not a chain."""
    array = midrange_disk_array(spare=repro.SpareConfig.dedicated("60 s", 1.0))
    design = repro.StorageDesign(
        "branched", recovery_facility=repro.SpareConfig.shared("9 hr", 0.2)
    )
    design.add_level(repro.PrimaryCopy(), store=array)
    design.add_level(repro.VirtualSnapshot("12 hr", 4), store=array)
    design.add_level(
        repro.BatchedAsyncMirror("1 min"),
        store=midrange_disk_array(
            name="mirror-array", location=REMOTE_SITE,
            spare=repro.SpareConfig.none(),
        ),
        transport=oc3_links(2),
        feeds_from=0,  # the branch: straight off the primary
    )
    design.add_level(
        repro.Backup("1 wk", "48 hr", "1 hr", 4),
        store=enterprise_tape_library(spare=repro.SpareConfig.dedicated("60 s", 1.0)),
        transport=san_link(),
        feeds_from=1,  # off the snapshot, not the mirror
    )
    return design


@pytest.fixture
def workload():
    return cello()


class TestBranchStructure:
    def test_parents(self, branched_design):
        assert branched_design.level(1).parent_index == 0
        assert branched_design.level(2).parent_index == 0
        assert branched_design.level(3).parent_index == 1
        assert branched_design.parent_of(branched_design.level(3)).index == 1

    def test_validates_despite_fast_mirror(self, branched_design, workload):
        """A 1-minute mirror AFTER a 12 h snapshot violates the linear
        conventions; as a sibling branch it is legal."""
        warnings = repro.validate_design(branched_design, workload)
        assert isinstance(warnings, list)

    def test_linear_equivalent_is_rejected(self, workload):
        array = midrange_disk_array()
        design = repro.StorageDesign("linear-bad")
        design.add_level(repro.PrimaryCopy(), store=array)
        design.add_level(repro.VirtualSnapshot("12 hr", 4), store=array)
        design.add_level(
            repro.BatchedAsyncMirror("1 min"),
            store=midrange_disk_array(name="m", location=REMOTE_SITE),
            transport=oc3_links(2),
            # default feeds_from: the snapshot -> convention violation
        )
        with pytest.raises(DesignError):
            repro.validate_design(design, workload)

    def test_forward_feed_rejected(self):
        array = midrange_disk_array()
        design = repro.StorageDesign("bad")
        design.add_level(repro.PrimaryCopy(), store=array)
        with pytest.raises(DesignError):
            design.add_level(
                repro.VirtualSnapshot("12 hr", 4), store=array, feeds_from=5
            )

    def test_level_zero_cannot_feed(self):
        design = repro.StorageDesign("bad")
        with pytest.raises(DesignError):
            design.add_level(
                repro.PrimaryCopy(), store=midrange_disk_array(), feeds_from=0
            )

    def test_render_marks_branches(self, branched_design):
        art = branched_design.render_hierarchy()
        assert "<- level 0" in art


class TestBranchSemantics:
    def test_upstream_delay_follows_ancestors(self, branched_design):
        # The mirror branches straight off level 0: no upstream delay
        # from the snapshot.
        assert branched_design.upstream_delay(2) == 0.0
        # The backup's ancestors are the snapshot (0 delay) and level 0.
        assert branched_design.upstream_delay(3) == 0.0

    def test_mirror_branch_gives_minute_loss(self, branched_design, workload):
        register_design_demands(branched_design, workload)
        result = repro.core.compute_data_loss(
            branched_design, FailureScenario.array_failure("primary-array")
        )
        # The mirror survives and is the closest usable level.
        assert result.source_name == "asyncB mirror"
        assert result.data_loss == pytest.approx(120.0)

    def test_backup_reads_from_snapshot_parent(self, branched_design, workload):
        register_design_demands(branched_design, workload)
        array = branched_design.primary_level.store
        backup_reads = [
            d for d in array.demands if d.technique == "backup"
        ]
        assert backup_reads and backup_reads[0].bandwidth > 0

    def test_evaluates_end_to_end(self, branched_design, workload):
        results = repro.evaluate_scenarios(
            branched_design,
            workload,
            [
                FailureScenario.object_corruption(1 * MB, "24 hr"),
                FailureScenario.array_failure("primary-array"),
                FailureScenario.site_disaster(PRIMARY_SITE),
            ],
            repro.BusinessRequirements.per_hour(50_000, 50_000),
        )
        values = list(results.values())
        # Object rollback: the snapshot branch.
        assert values[0].data_loss.source_name == "virtual snapshot"
        # Array failure: the mirror branch (minutes of loss).
        assert values[1].recent_data_loss == pytest.approx(120.0)
        # Site disaster: the mirror survives off-site.
        assert values[2].data_loss.source_name == "asyncB mirror"

    def test_without_level_reattaches_children(self, branched_design):
        # Remove the snapshot (level 1): the backup (its child) must
        # re-attach to level 0.
        degraded = branched_design.without_level(1)
        backup_level = next(
            lvl for lvl in degraded.levels if lvl.technique.name == "backup"
        )
        assert backup_level.parent_index == 0
        mirror_level = next(
            lvl for lvl in degraded.levels if "mirror" in lvl.technique.name
        )
        assert mirror_level.parent_index == 0
