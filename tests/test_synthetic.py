"""Synthetic trace generation: reproducibility and target statistics."""

import pytest

from repro.exceptions import WorkloadError
from repro.units import GB, KB, MB
from repro.workload import SyntheticWorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def small_config():
    return SyntheticWorkloadConfig(
        data_capacity=1 * GB,
        duration=1800.0,
        avg_access_rate=2 * MB,
        avg_update_rate=1 * MB,
        burst_multiplier=4.0,
        burst_period=60.0,
    )


@pytest.fixture(scope="module")
def small_trace(small_config):
    return generate_trace(small_config, seed=7)


class TestConfigValidation:
    def test_default_config_is_valid(self):
        SyntheticWorkloadConfig().validate()

    def test_update_above_access_rejected(self):
        config = SyntheticWorkloadConfig(
            avg_access_rate=1 * MB, avg_update_rate=2 * MB
        )
        with pytest.raises(WorkloadError):
            config.validate()

    def test_burst_below_one_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkloadConfig(burst_multiplier=0.9).validate()

    def test_hot_fraction_bounds(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkloadConfig(hot_fraction=0.0).validate()
        with pytest.raises(WorkloadError):
            SyntheticWorkloadConfig(hot_fraction=1.5).validate()

    def test_io_size_must_divide_block_size(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkloadConfig(io_size=12000, block_size=8192).validate()


class TestGeneration:
    def test_reproducible_with_same_seed(self, small_config):
        a = generate_trace(small_config, seed=3)
        b = generate_trace(small_config, seed=3)
        assert len(a) == len(b)
        assert (a.timestamps == b.timestamps).all()
        assert (a.offsets == b.offsets).all()

    def test_different_seeds_differ(self, small_config):
        a = generate_trace(small_config, seed=1)
        b = generate_trace(small_config, seed=2)
        assert len(a) != len(b) or (a.timestamps != b.timestamps).any()

    def test_mean_rates_near_target(self, small_config, small_trace):
        access = small_trace.total_bytes() / small_config.duration
        update = small_trace.written_bytes() / small_config.duration
        assert access == pytest.approx(small_config.avg_access_rate, rel=0.15)
        assert update == pytest.approx(small_config.avg_update_rate, rel=0.15)

    def test_timestamps_within_duration(self, small_config, small_trace):
        assert small_trace.duration <= small_config.duration
        assert (small_trace.timestamps >= 0).all()

    def test_accesses_within_object(self, small_config, small_trace):
        assert (
            small_trace.offsets + small_trace.sizes
            <= small_config.data_capacity
        ).all()

    def test_writes_are_bursty(self, small_config, small_trace):
        rates = small_trace.rate_per_interval(1.0, writes_only=True)
        mean = rates.mean()
        assert mean > 0
        # On/off arrivals should push the peak well above the mean.
        assert rates.max() / mean >= 2.0

    def test_write_locality_coalesces(self, small_config, small_trace):
        """Unique bytes in a long window grow sublinearly (hot-set skew)."""
        short = small_trace.unique_written_bytes(0.0, 60.0)
        long = small_trace.unique_written_bytes(0.0, 1800.0)
        raw_long = small_trace.written_bytes()
        assert long < raw_long  # overwrites happened
        assert long >= short

    def test_diurnal_modulation_shapes_the_day(self):
        """With a strong diurnal swing, the 'day' half of each cycle
        carries clearly more writes than the 'night' half."""
        config = SyntheticWorkloadConfig(
            data_capacity=1 * GB,
            duration=4 * 3600.0,
            avg_access_rate=2 * MB,
            avg_update_rate=1 * MB,
            burst_multiplier=2.0,
            burst_period=30.0,
            diurnal_amplitude=0.9,
            diurnal_period=3600.0,  # compressed "day" for the test
        )
        trace = generate_trace(config, seed=13)
        day_bytes = night_bytes = 0.0
        for cycle in range(4):
            base = cycle * 3600.0
            day_bytes += trace.slice(base, base + 1800.0).written_bytes()
            night_bytes += trace.slice(base + 1800.0, base + 3600.0).written_bytes()
        assert day_bytes > 1.5 * night_bytes

    def test_diurnal_preserves_mean_rate(self):
        flat = SyntheticWorkloadConfig(
            data_capacity=1 * GB, duration=7200.0,
            avg_access_rate=2 * MB, avg_update_rate=1 * MB,
            burst_multiplier=2.0, burst_period=30.0,
        )
        wavy = SyntheticWorkloadConfig(
            data_capacity=1 * GB, duration=7200.0,
            avg_access_rate=2 * MB, avg_update_rate=1 * MB,
            burst_multiplier=2.0, burst_period=30.0,
            diurnal_amplitude=0.8, diurnal_period=3600.0,
        )
        flat_rate = generate_trace(flat, seed=3).written_bytes() / 7200.0
        wavy_rate = generate_trace(wavy, seed=3).written_bytes() / 7200.0
        assert wavy_rate == pytest.approx(flat_rate, rel=0.15)

    def test_diurnal_amplitude_bounds(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkloadConfig(diurnal_amplitude=1.0).validate()
        with pytest.raises(WorkloadError):
            SyntheticWorkloadConfig(diurnal_period=0).validate()

    def test_zero_update_rate_produces_read_only_trace(self):
        config = SyntheticWorkloadConfig(
            data_capacity=256 * 1024 * 1024,
            duration=600.0,
            avg_access_rate=1 * MB,
            avg_update_rate=0.0,
        )
        trace = generate_trace(config, seed=0)
        assert trace.written_bytes() == 0.0
        assert trace.read_bytes() > 0
