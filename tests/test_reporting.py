"""Report rendering: tables and composed paper-style reports."""

import pytest

from repro import casestudy, evaluate_scenarios
from repro.reporting import (
    Table,
    cost_breakdown_report,
    dependability_report,
    utilization_report,
    whatif_report,
)
from repro.workload.presets import cello


@pytest.fixture(scope="module")
def results():
    return evaluate_scenarios(
        casestudy.baseline_design(),
        cello(),
        casestudy.case_study_scenarios(),
        casestudy.case_study_requirements(),
    )


class TestTable:
    def test_render_basic(self):
        table = Table(["name", "value"], title="T")
        table.add_row("a", 1)
        table.add_row("bb", 22)
        text = table.render()
        assert "T" in text
        assert "| a " in text and "| bb" in text
        assert text.count("+") >= 6

    def test_alignment(self):
        table = Table(["l", "r"])
        table.add_row("x", "1")
        line = table.render().splitlines()[-2]
        assert line.startswith("| x")

    def test_add_rows(self):
        table = Table(["a"])
        table.add_rows([["1"], ["2"]])
        assert len(table.rows) == 2

    def test_wrong_cell_count_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            Table(["a"], align=["x"])
        with pytest.raises(ValueError):
            Table(["a"], align=["l", "r"])

    def test_str_is_render(self):
        table = Table(["a"])
        table.add_row("1")
        assert str(table) == table.render()


class TestComposedReports:
    def test_utilization_report_contains_devices(self, results):
        text = utilization_report(next(iter(results.values())).utilization)
        assert "primary-array" in text
        assert "split mirror" in text
        assert "87.3%" in text

    def test_dependability_report_matches_table6(self, results):
        text = dependability_report(results)
        assert "split mirror" in text
        assert "217.0 hr" in text
        assert "backup" in text

    def test_cost_breakdown_has_penalties(self, results):
        text = cost_breakdown_report(results)
        assert "penalty: recent data loss" in text
        assert "outlay: backup" in text
        assert "total" in text

    def test_whatif_report_grid(self, results):
        grid = {"baseline": results}
        labels = list(results.keys())
        text = whatif_report(grid, labels)
        assert "baseline" in text
        assert "outlays" in text
        assert "RT (hr)" in text
