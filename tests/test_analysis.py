"""Trade-off analysis (Pareto frontier), availability, propagation rates."""

import pytest

from repro import casestudy
from repro.design import (
    FailureFrequencies,
    dominated_by,
    expected_availability,
    pareto_frontier,
    run_whatif,
)
from repro.exceptions import DesignError
from repro.techniques import (
    Backup,
    BatchedAsyncMirror,
    IncrementalKind,
    IncrementalPolicy,
    RemoteVaulting,
    SplitMirror,
    SyncMirror,
    VirtualSnapshot,
)
from repro.units import HOUR, WEEK
from repro.workload.presets import cello


@pytest.fixture(scope="module")
def workload():
    return cello()


@pytest.fixture(scope="module")
def requirements():
    return casestudy.case_study_requirements()


@pytest.fixture(scope="module")
def table7_results(workload, requirements):
    scenarios = [
        casestudy.array_failure_scenario(),
        casestudy.site_failure_scenario(),
    ]
    designs = {
        "baseline": casestudy.baseline_design,
        "weekly vault, daily F": casestudy.weekly_vault_daily_fulls_design,
        "weekly vault, daily F, snapshot":
            casestudy.weekly_vault_daily_fulls_snapshot_design,
        "asyncB mirror, 1 link": lambda: casestudy.async_batch_mirror_design(1),
        "asyncB mirror, 10 links": lambda: casestudy.async_batch_mirror_design(10),
    }
    return run_whatif(designs, workload, scenarios, requirements)


class TestParetoFrontier:
    def test_snapshot_dominates_split_mirror_variant(self, table7_results):
        """Same RT/DL, strictly cheaper: the split-mirror daily-F design
        must be off the frontier while its snapshot twin stays on."""
        frontier_names = {r.design_name for r in pareto_frontier(table7_results)}
        assert "weekly vault, daily F, snapshot" in frontier_names
        assert "weekly vault, daily F" not in frontier_names

    def test_mirror_designs_on_frontier(self, table7_results):
        """1 link: cheapest with minute-scale loss; 10 links: fastest.
        Neither can be dominated."""
        frontier_names = {r.design_name for r in pareto_frontier(table7_results)}
        assert "asyncB mirror, 1 link" in frontier_names
        assert "asyncB mirror, 10 links" in frontier_names

    def test_dominated_by_names_the_dominators(self, table7_results):
        daily = next(
            r for r in table7_results if r.design_name == "weekly vault, daily F"
        )
        dominators = dominated_by(daily, table7_results)
        assert any(
            d.design_name == "weekly vault, daily F, snapshot" for d in dominators
        )

    def test_frontier_member_has_no_dominators(self, table7_results):
        for result in pareto_frontier(table7_results):
            assert dominated_by(result, table7_results) == []

    def test_empty_rejected(self):
        with pytest.raises(DesignError):
            pareto_frontier([])


class TestAvailability:
    def test_availability_from_frequencies(self, workload, requirements):
        frequencies = FailureFrequencies(
            [
                (casestudy.array_failure_scenario(), 0.5),
                (casestudy.site_failure_scenario(), 0.01),
            ]
        )
        summary = expected_availability(
            casestudy.baseline_design, workload, frequencies, requirements
        )
        # 0.5 * ~2.4 h + 0.01 * ~26.4 h of expected downtime per year.
        assert summary.expected_annual_downtime == pytest.approx(
            0.5 * 2.4 * HOUR + 0.01 * 26.4 * HOUR, rel=0.05
        )
        assert 0.999 < summary.availability < 1.0
        assert summary.nines > 3.0

    def test_zero_rates_give_perfect_availability(self, workload, requirements):
        frequencies = FailureFrequencies(
            [(casestudy.array_failure_scenario(), 0.0)]
        )
        summary = expected_availability(
            casestudy.baseline_design, workload, frequencies, requirements
        )
        assert summary.availability == 1.0
        assert summary.nines == float("inf")

    def test_faster_recovery_more_nines(self, workload, requirements):
        frequencies = FailureFrequencies(
            [(casestudy.array_failure_scenario(), 1.0)]
        )
        slow = expected_availability(
            lambda: casestudy.async_batch_mirror_design(1),
            workload, frequencies, requirements, design_name="slow",
        )
        fast = expected_availability(
            lambda: casestudy.async_batch_mirror_design(10),
            workload, frequencies, requirements, design_name="fast",
        )
        assert fast.nines > slow.nines


class TestAveragePropagationRates:
    """§3.2.3 consistency: long-run average transfer never exceeds the
    provisioned (peak) bandwidth demand each technique registers."""

    def test_backup_average_below_provisioned(self, workload):
        backup = Backup("1 wk", "48 hr", "1 hr", 4)
        average = backup.average_propagation_rate(workload)
        provisioned = backup.required_bandwidth(workload)
        assert average < provisioned
        # Fulls move the dataset once a week but are sized to move it in
        # 48 h: the ratio is exactly propW / cyclePer.
        assert average / provisioned == pytest.approx(48.0 / 168.0)

    def test_backup_with_incrementals(self, workload):
        backup = Backup(
            "48 hr", "48 hr", "1 hr", 4,
            incremental=IncrementalPolicy(
                IncrementalKind.CUMULATIVE, 5, "24 hr", "12 hr", "1 hr"
            ),
        )
        per_cycle = backup.propagated_bytes_per_cycle(workload)
        assert per_cycle == pytest.approx(backup.cycle_bytes(workload))
        assert backup.average_propagation_rate(workload) <= (
            backup.required_bandwidth(workload)
        )

    def test_batched_mirror_average_equals_demand_at_full_duty(self, workload):
        """With propW == accW the link never idles: average == demand."""
        mirror = BatchedAsyncMirror("1 min")
        assert mirror.average_propagation_rate(workload) == pytest.approx(
            mirror.interconnect_demand(workload)
        )

    def test_sync_mirror_average_is_update_rate(self, workload):
        sync = SyncMirror()
        assert sync.average_propagation_rate(workload) == pytest.approx(
            workload.avg_update_rate
        )
        # ...while the provisioned demand covers the burst peak.
        assert sync.interconnect_demand(workload) == pytest.approx(
            workload.peak_update_rate
        )

    def test_vaulting_average_tiny(self, workload):
        vaulting = RemoteVaulting("4 wk", "24 hr", 4 * WEEK + 12 * HOUR, 39)
        # One full per four weeks: ~0.6 MB/s equivalent.
        assert vaulting.average_propagation_rate(workload) == pytest.approx(
            workload.data_capacity / (4 * WEEK)
        )

    def test_split_mirror_average_is_resilver_volume(self, workload):
        mirror = SplitMirror("12 hr", 4)
        expected = workload.unique_bytes(5 * 12 * HOUR) / (12 * HOUR)
        assert mirror.average_propagation_rate(workload) == pytest.approx(expected)
        # Bandwidth demand counts the read AND the write: exactly 2x.
        assert mirror.resilver_bandwidth(workload) == pytest.approx(2 * expected)

    def test_snapshot_average_is_delta_rate(self, workload):
        snapshot = VirtualSnapshot("12 hr", 4)
        assert snapshot.average_propagation_rate(workload) == pytest.approx(
            workload.unique_bytes(12 * HOUR) / (12 * HOUR)
        )
