"""The dimensional dataflow checker: seeded bug corpus, rules, CLI.

The corpus below plants known dimension bugs (size+time arithmetic,
durations passed as rates, $/hr-vs-$/s confusion, binary/decimal prefix
mixing) and asserts every one is detected — the acceptance bar is zero
false negatives over the corpus and zero findings on the shipped tree.
"""

import json

import pytest

from repro.lint.dimcheck import (
    ALLOW_DIM_PRAGMA,
    DIM_RULES,
    DimValue,
    lint_paths,
    lint_source,
    main,
    unit_value,
)
from repro.lint.diagnostics import Severity
from repro.lint.output import diagnostics_from_sarif, render_sarif
from repro.units import MONEY, MONEY_RATE, RATE, SIZE, TIME

IMPORTS = (
    "from repro.units import (\n"
    "    GB, GB_DEC, HOUR, KB, MB, MINUTE, SECOND, Seconds,\n"
    "    format_duration, parse_duration,\n"
    ")\n"
)


def codes(findings):
    return [f.code for f in findings]


def check(body):
    return lint_source(IMPORTS + body, "corpus.py")


#: The seeded-bug corpus: every entry is a dimensional error the checker
#: must report (zero false negatives), with the rule it must fire.
CORPUS = [
    # additive mismatches (DIM001)
    ("add_size_to_time", "x = 4 * GB + 2 * HOUR\n", "DIM001"),
    ("subtract_size_from_time", "lag = 5 * MINUTE - 3 * MB\n", "DIM001"),
    ("augmented_add_mismatch", "t = 2 * HOUR\nt += 3 * GB\n", "DIM001"),
    ("binary_decimal_mixing", "total = 1 * GB + 1 * GB_DEC\n", "DIM001"),
    (
        "attribute_rate_plus_duration",
        "x = device.max_bandwidth + 3 * SECOND\n",
        "DIM001",
    ),
    (
        "parsed_duration_plus_size",
        "t = parse_duration('48 h')\nx = t + 4 * GB\n",
        "DIM001",
    ),
    # arguments of the wrong dimension (DIM002)
    (
        "size_passed_as_batch_window",
        "r = w.batch_update_rate(4 * MB)\n",
        "DIM002",
    ),
    (
        "size_passed_as_outage_duration",
        "p = req.outage_penalty(2 * GB)\n",
        "DIM002",
    ),
    (
        "size_passed_to_format_duration",
        "s = format_duration(10 * KB)\n",
        "DIM002",
    ),
    ("size_passed_to_parse_duration", "t = parse_duration(5 * KB)\n", "DIM002"),
    (
        "size_keyword_for_rate_field",
        "wl = Workload(avg_update_rate=3 * MB)\n",
        "DIM002",
    ),
    (
        "size_stored_in_duration_attribute",
        "class Plan:\n"
        "    def arm(self):\n"
        "        self.recovery_time = 4 * GB\n",
        "DIM002",
    ),
    # returns disagreeing with the declaration (DIM003)
    (
        "size_returned_as_seconds",
        "def recovery_window() -> Seconds:\n    return 2 * GB\n",
        "DIM003",
    ),
    (
        "size_returned_from_duration_property",
        "class Plan:\n"
        "    @property\n"
        "    def duration(self):\n"
        "        return 3 * MB\n",
        "DIM003",
    ),
]


class TestSeededBugCorpus:
    def test_corpus_is_big_enough(self):
        # The acceptance criterion: at least 10 planted dimension bugs.
        assert len(CORPUS) >= 10

    @pytest.mark.parametrize(
        "body,expected",
        [(body, expected) for _, body, expected in CORPUS],
        ids=[name for name, _, _ in CORPUS],
    )
    def test_every_planted_bug_is_detected(self, body, expected):
        findings = check(body)
        assert codes(findings) == [expected]
        assert findings[0].severity is Severity.ERROR
        assert findings[0].category == "dimensions"

    def test_messages_name_both_dimensions(self):
        (finding,) = check("x = 4 * GB + 2 * HOUR\n")
        assert "bytes" in finding.message
        assert "s" in finding.message

    def test_convention_mixing_message(self):
        (finding,) = check("total = 1 * GB + 1 * GB_DEC\n")
        assert "binary" in finding.message
        assert "decimal" in finding.message


class TestNoFalsePositives:
    """Constructs the checker must accept without complaint."""

    @pytest.mark.parametrize(
        "body",
        [
            # scalars combine freely with dimensioned quantities
            "x = 4 * HOUR + 5\n",
            "x = 2 * (3 * GB)\n",
            # dimension algebra: SIZE/TIME is RATE, RATE*TIME is SIZE
            "size = w.avg_update_rate * (24 * HOUR)\ntotal = size + 4 * GB\n",
            "rate = (4 * GB) / (2 * HOUR)\nr2 = rate + w.avg_update_rate\n",
            "ratio = (4 * HOUR) / (1 * MINUTE)\nx = ratio + 7\n",
            # $/s * s is $
            "p = req.unavailability_penalty_rate * (2 * HOUR)\n"
            "q = p + req.outage_penalty(3 * MINUTE)\n",
            # unknown values propagate silently
            "a = mystery()\nb = a + 3 * GB\n",
            # strings to the parse helpers are unchecked
            "t = parse_duration('48 h')\ns = t + 2 * HOUR\n",
            # min/max preserve the common dimension
            "t = min(2 * HOUR, 30 * MINUTE) + 1 * SECOND\n",
            # float()/abs() pass the dimension through
            "t = float(4 * HOUR) + abs(-2 * MINUTE)\n",
            # decimal constants agree with each other
            "link = 100 * GB_DEC + 55 * GB_DEC\n",
        ],
    )
    def test_clean_constructs(self, body):
        assert check(body) == []

    def test_branch_join_conflicting_dims_goes_unknown(self):
        body = (
            "if flag:\n    x = 4 * GB\nelse:\n    x = 2 * HOUR\n"
            "y = x + 1 * MINUTE\n"
        )
        assert check(body) == []

    def test_branch_join_agreeing_dims_stays_strong(self):
        body = (
            "if flag:\n    x = 4 * GB\nelse:\n    x = 2 * MB\n"
            "y = x + 1 * MINUTE\n"
        )
        assert codes(check(body)) == ["DIM001"]

    def test_loop_reassignment_joins_with_entry(self):
        body = (
            "x = 4 * GB\n"
            "for item in items:\n    x = item.duration\n"
            "y = x + 2 * HOUR\n"
        )
        # After the loop x is bytes-or-seconds: unknown, so no finding.
        assert check(body) == []


class TestSeeding:
    def test_units_module_alias(self):
        source = (
            "from repro import units\n"
            "x = 4 * units.GB + 2 * units.HOUR\n"
        )
        assert codes(lint_source(source, "m.py")) == ["DIM001"]

    def test_import_as_alias(self):
        source = "import repro.units as u\nx = 1 * u.MB + 1 * u.SECOND\n"
        assert codes(lint_source(source, "m.py")) == ["DIM001"]

    def test_parameter_annotations_seed_the_env(self):
        body = (
            "def f(delay: Seconds, size):\n"
            "    return delay + 3 * GB\n"
        )
        assert codes(check(body)) == ["DIM001"]

    def test_well_known_parameter_names_seed_the_env(self):
        body = "def f(window):\n    return window + 3 * GB\n"
        assert codes(check(body)) == ["DIM001"]

    def test_local_function_signatures_checked(self):
        body = (
            "def f(delay: Seconds):\n    return delay\n"
            "x = f(3 * GB)\n"
        )
        assert codes(check(body)) == ["DIM002"]

    def test_unit_value_marks_convention(self):
        assert unit_value("GB").convention == "binary"
        assert unit_value("GB_DEC").convention == "decimal"
        assert unit_value("HOUR").convention is None
        assert unit_value("HOUR").dim == TIME

    def test_stub_dimensions_are_consistent(self):
        assert unit_value("GB").dim == SIZE
        assert (SIZE / TIME) == RATE
        assert (MONEY / TIME) == MONEY_RATE
        assert DimValue(RATE, strong=True).known


class TestPragmas:
    def test_pragma_suppresses_the_line(self):
        body = f"x = 4 * GB + 2 * HOUR  # {ALLOW_DIM_PRAGMA}\n"
        assert check(body) == []

    def test_stale_pragma_is_flagged_dim099(self):
        body = f"x = 4 * GB  # {ALLOW_DIM_PRAGMA}\n"
        findings = check(body)
        assert codes(findings) == ["DIM099"]
        assert findings[0].severity is Severity.WARNING
        assert "stale" in findings[0].message

    def test_used_pragma_is_not_stale(self):
        body = (
            f"x = 4 * GB + 2 * HOUR  # {ALLOW_DIM_PRAGMA}\n"
            "y = 1 * MINUTE + 1 * SECOND\n"
        )
        assert check(body) == []

    def test_pragma_budget_dim004(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text(
            "from repro.units import GB, HOUR\n"
            f"x = 4 * GB + 2 * HOUR  # {ALLOW_DIM_PRAGMA}\n"
        )
        assert lint_paths([str(path)], max_pragmas=1) == []
        over = lint_paths([str(path)], max_pragmas=0)
        assert codes(over) == ["DIM004"]
        assert "budget" in over[0].message


class TestTreeAndCli:
    def test_shipped_tree_is_clean(self):
        # The acceptance criterion: src/repro passes strict with zero
        # findings (and therefore zero pragmas in use).
        assert lint_paths(["src/repro"]) == []

    def test_examples_and_benchmarks_are_clean(self):
        assert lint_paths(["examples", "benchmarks"]) == []

    def test_units_and_checker_are_allowlisted(self):
        source = "x = 4\n"
        assert lint_source(source, "src/repro/units.py") == []
        assert lint_source(source, "src/repro/lint/dimcheck.py") == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("from repro.units import HOUR\nx = 4 * HOUR\n")
        assert main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "from repro.units import GB, HOUR\nx = 4 * GB + 2 * HOUR\n"
        )
        assert main([str(dirty)]) == 1
        assert "DIM001" in capsys.readouterr().out

    def test_cli_strict_promotes_warnings(self, tmp_path, capsys):
        stale = tmp_path / "stale.py"
        stale.write_text(f"x = 4  # {ALLOW_DIM_PRAGMA}\n")
        assert main([str(stale)]) == 0
        capsys.readouterr()
        assert main([str(stale), "--strict"]) == 1
        assert "DIM099" in capsys.readouterr().out

    def test_cli_json_format(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "from repro.units import GB, HOUR\nx = 4 * GB + 2 * HOUR\n"
        )
        assert main([str(dirty), "--format", "json"]) == 1
        record = json.loads(capsys.readouterr().out)["diagnostics"][0]
        assert record["code"] == "DIM001"
        assert record["file"] == str(dirty)
        assert record["line"] == 2


class TestSarif:
    def sample(self):
        return check("x = 4 * GB + 2 * HOUR\np = req.outage_penalty(2 * GB)\n")

    def test_round_trip(self):
        diagnostics = self.sample()
        assert diagnostics_from_sarif(render_sarif(diagnostics)) == diagnostics

    def test_rules_metadata_includes_dim_rules(self):
        log = json.loads(render_sarif(self.sample()))
        rules = {
            rule["id"]
            for rule in log["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {"DIM001", "DIM002"} <= rules
        # An empty log carries the full rule table, DIM rules included.
        empty = json.loads(render_sarif([]))
        all_rules = {
            rule["id"]
            for rule in empty["runs"][0]["tool"]["driver"]["rules"]
        }
        assert set(DIM_RULES) <= all_rules

    def test_result_shape(self):
        log = json.loads(render_sarif(self.sample()))
        result = log["runs"][0]["results"][0]
        assert result["ruleId"] == "DIM001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 5


class TestMetrics:
    def test_dimcheck_file_counter(self, tmp_path):
        from repro import obs

        path = tmp_path / "m.py"
        path.write_text("x = 1\n")
        with obs.use_metrics(obs.MetricsRegistry()) as registry:
            lint_paths([str(path)])
            counters = registry.snapshot()["counters"]
        assert counters.get("lint.dimcheck.files") == 1

    def test_diagnostic_severity_counters(self):
        from repro import obs

        with obs.use_metrics(obs.MetricsRegistry()) as registry:
            check("x = 4 * GB + 2 * HOUR\n")
            counters = registry.snapshot()["counters"]
        assert counters.get("lint.diagnostics.error") == 1


class TestEventRateDimensions:
    """The per-year rate family (1/s) wired into the checker's tables."""

    RATE_IMPORTS = (
        "from repro.units import GB, HOUR, SECOND, parse_event_rate\n"
    )

    def rate_check(self, body):
        return lint_source(self.RATE_IMPORTS + body, "rates.py")

    def test_occurrence_rate_attribute_is_a_frequency(self):
        body = "x = member.occurrence_rate + 3 * SECOND\n"
        assert codes(self.rate_check(body)) == ["DIM001"]

    def test_parse_event_rate_returns_a_frequency(self):
        body = "x = parse_event_rate('2/yr') + 4 * GB\n"
        assert codes(self.rate_check(body)) == ["DIM001"]

    def test_effective_failure_rate_stub(self):
        body = "x = model.effective_failure_rate() + 8 * HOUR\n"
        assert codes(self.rate_check(body)) == ["DIM001"]

    def test_cascade_probability_wants_a_duration(self):
        body = "p = cascade.cascade_probability(4 * GB)\n"
        assert codes(self.rate_check(body)) == ["DIM002"]

    def test_repair_time_parameter_name_seeds_time(self):
        body = (
            "def f(repair_time):\n"
            "    return repair_time + 4 * GB\n"
        )
        assert codes(self.rate_check(body)) == ["DIM001"]

    def test_dimensionally_sound_rate_code_is_clean(self):
        body = (
            "lam = parse_event_rate('2/yr')\n"
            "expected_events = lam * (8 * HOUR)\n"
            "mttf = 1.0 / lam\n"
            "window = mttf + 8 * HOUR\n"
        )
        assert self.rate_check(body) == []

    def test_frequency_dimension_relations(self):
        from repro.units import DIMENSIONLESS, FREQUENCY

        assert FREQUENCY == DIMENSIONLESS / TIME
        assert FREQUENCY * TIME == DIMENSIONLESS
