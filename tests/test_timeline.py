"""CycleModel: worst lag, RP spacing, retention span (Figures 2-3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PolicyError
from repro.techniques import CycleModel, RPEvent
from repro.units import DAY, HOUR, WEEK


class TestRPEvent:
    def test_availability_delay(self):
        event = RPEvent(offset=0, hold=1 * HOUR, prop=48 * HOUR)
        assert event.availability_delay == 49 * HOUR

    def test_negative_windows_rejected(self):
        with pytest.raises(PolicyError):
            RPEvent(offset=-1)
        with pytest.raises(PolicyError):
            RPEvent(offset=0, hold=-1)


class TestConstruction:
    def test_requires_events(self):
        with pytest.raises(PolicyError):
            CycleModel(period=10, events=[], retention_count=1)

    def test_requires_a_full(self):
        with pytest.raises(PolicyError):
            CycleModel(
                period=10,
                events=[RPEvent(offset=0, is_full=False)],
                retention_count=1,
            )

    def test_offset_outside_period_rejected(self):
        with pytest.raises(PolicyError):
            CycleModel(period=10, events=[RPEvent(offset=10)], retention_count=1)

    def test_zero_retention_rejected(self):
        with pytest.raises(PolicyError):
            CycleModel.single(10, 0, 0, retention_count=0)


class TestSingleEventCycles:
    """The simple policies reduce to the paper's closed forms."""

    def test_worst_lag_is_acc_plus_hold_plus_prop(self):
        cycle = CycleModel.single(
            accumulation_window=WEEK,
            hold_window=1 * HOUR,
            propagation_window=48 * HOUR,
            retention_count=4,
        )
        assert cycle.worst_lag() == pytest.approx(WEEK + 49 * HOUR)

    def test_split_mirror_lag(self):
        cycle = CycleModel.single(12 * HOUR, 0, 0, retention_count=4)
        assert cycle.worst_lag() == pytest.approx(12 * HOUR)

    def test_spacing_equals_period(self):
        cycle = CycleModel.single(12 * HOUR, 0, 0, retention_count=4)
        assert cycle.worst_spacing() == pytest.approx(12 * HOUR)

    def test_retention_span(self):
        cycle = CycleModel.single(12 * HOUR, 0, 0, retention_count=4)
        assert cycle.retention_span() == pytest.approx(36 * HOUR)

    def test_vault_lag(self):
        # Baseline vault: 4 wk accW, 4 wk + 12 h hold, 24 h prop.
        cycle = CycleModel.single(
            4 * WEEK, 4 * WEEK + 12 * HOUR, 24 * HOUR, retention_count=39
        )
        assert cycle.worst_lag() == pytest.approx(8 * WEEK + 36 * HOUR)
        assert cycle.retention_span() == pytest.approx(38 * 4 * WEEK)

    def test_full_availability_delay(self):
        cycle = CycleModel.single(WEEK, 1 * HOUR, 48 * HOUR, retention_count=4)
        assert cycle.full_availability_delay() == pytest.approx(49 * HOUR)

    def test_arrivals_per_period(self):
        assert CycleModel.single(WEEK, 0, 0, 1).arrivals_per_period() == 1


class TestMixedCycles:
    """Full + incrementals: the paper's F+I worst case is 73 h."""

    @pytest.fixture
    def f_plus_i(self):
        # Weekly fulls (48 h accW and propW, 1 h hold) + 5 daily
        # cumulative incrementals (24 h accW, 12 h propW, 1 h hold).
        events = [RPEvent(offset=0, hold=1 * HOUR, prop=48 * HOUR, is_full=True)]
        for k in range(5):
            events.append(
                RPEvent(
                    offset=48 * HOUR + k * 24 * HOUR,
                    hold=1 * HOUR,
                    prop=12 * HOUR,
                    is_full=False,
                    label=f"incr-{k + 1}",
                )
            )
        return CycleModel(period=WEEK, events=events, retention_count=4)

    def test_worst_lag_is_73_hours(self, f_plus_i):
        assert f_plus_i.worst_lag() == pytest.approx(73 * HOUR)

    def test_worst_spacing_is_weekend_gap(self, f_plus_i):
        assert f_plus_i.worst_spacing() == pytest.approx(48 * HOUR)

    def test_incrementals_wait_for_their_base_full(self):
        # An incremental that becomes available before its base full is
        # only usable once the full lands.
        events = [
            RPEvent(offset=0, hold=0, prop=10 * HOUR, is_full=True),
            RPEvent(offset=1 * HOUR, hold=0, prop=0, is_full=False),
        ]
        cycle = CycleModel(period=DAY, events=events, retention_count=2)
        # Just before the next full becomes usable at t = 24 + 10 h, the
        # incremental snapshotted at t = 25 h is NOT yet usable (its base
        # full is the one still propagating), so the newest usable
        # snapshot is the previous cycle's incremental at t = 1 h:
        # worst lag = 34 - 1 = 33 h.  Without the base-full dependency it
        # would wrongly be 34 - 25 = 9 h.
        assert cycle.worst_lag() == pytest.approx(33 * HOUR)

    def test_full_availability_delay_uses_full(self, f_plus_i):
        assert f_plus_i.full_availability_delay() == pytest.approx(49 * HOUR)

    def test_arrivals_per_period(self, f_plus_i):
        assert f_plus_i.arrivals_per_period() == 6


class TestCycleProperties:
    """Invariants that must hold for any well-formed cycle."""

    @staticmethod
    @st.composite
    def cycles(draw):
        period = draw(st.floats(min_value=1.0, max_value=1e6))
        n_incr = draw(st.integers(min_value=0, max_value=4))
        full_hold = draw(st.floats(min_value=0, max_value=period / 2))
        full_prop = draw(st.floats(min_value=0, max_value=period / 2))
        events = [RPEvent(offset=0, hold=full_hold, prop=full_prop, is_full=True)]
        offsets = sorted(
            draw(
                st.lists(
                    st.floats(min_value=period * 0.01, max_value=period * 0.99),
                    min_size=n_incr,
                    max_size=n_incr,
                    unique=True,
                )
            )
        )
        for offset in offsets:
            events.append(
                RPEvent(
                    offset=offset,
                    hold=draw(st.floats(min_value=0, max_value=period / 4)),
                    prop=draw(st.floats(min_value=0, max_value=period / 4)),
                    is_full=False,
                )
            )
        retention = draw(st.integers(min_value=1, max_value=10))
        return CycleModel(period=period, events=events, retention_count=retention)

    @given(cycle=cycles())
    @settings(max_examples=60, deadline=None)
    def test_worst_lag_at_least_full_delay(self, cycle):
        # The level can never be fresher than its hold+prop pipeline.
        assert cycle.worst_lag() >= cycle.events[0].availability_delay - 1e-9

    @given(cycle=cycles())
    @settings(max_examples=60, deadline=None)
    def test_worst_lag_bounded_by_two_periods_plus_delay(self, cycle):
        bound = 2 * cycle.period + cycle.full_availability_delay() + 1e-9
        assert cycle.worst_lag() <= bound

    @given(cycle=cycles())
    @settings(max_examples=60, deadline=None)
    def test_spacing_at_most_period(self, cycle):
        assert cycle.worst_spacing() <= cycle.period + 1e-9

    @given(cycle=cycles())
    @settings(max_examples=60, deadline=None)
    def test_retention_span_formula(self, cycle):
        expected = (cycle.retention_count - 1) * cycle.period
        assert cycle.retention_span() == pytest.approx(expected)
