"""The benchmark registry, runner, history trajectory and regression gate."""

import io
import json

import pytest

import repro.bench as bench_pkg
from repro.bench import (
    BenchError,
    BenchResult,
    all_benches,
    append_history,
    bench,
    check_regressions,
    get_bench,
    load_baseline,
    read_history,
    run_bench,
    unregister,
    write_baseline,
)
from repro.cli import main


@pytest.fixture
def throwaway_bench():
    """Register a trivial benchmark; unregister afterwards."""
    calls = {"setup": 0, "run": 0}

    @bench("test.throwaway", description="test-only")
    def _setup():
        calls["setup"] += 1

        def run():
            calls["run"] += 1

        return run

    yield "test.throwaway", calls
    unregister("test.throwaway")


class TestRegistry:
    def test_builtin_suite_covers_the_hot_paths(self):
        names = {info.name for info in all_benches()}
        assert {
            "evaluate",
            "evaluate_scenarios",
            "optimize",
            "sensitivity.sweep",
            "recovery.simulate",
            "lint.spec",
        } <= names
        assert len(names) >= 6

    def test_duplicate_name_rejected(self, throwaway_bench):
        name, _calls = throwaway_bench
        with pytest.raises(BenchError):
            bench(name)(lambda: (lambda: None))

    def test_unknown_name_reports_options(self):
        with pytest.raises(BenchError, match="unknown benchmark"):
            get_bench("no.such.bench")

    def test_filter_by_substring(self):
        names = [info.name for info in all_benches("lint")]
        assert names and all("lint" in name for name in names)


class TestRunner:
    def test_run_bench_times_warmup_plus_repeats(self, throwaway_bench):
        name, calls = throwaway_bench
        result = run_bench(name, repeats=4)
        assert calls["setup"] == 1
        assert calls["run"] == 5  # 1 warmup + 4 timed
        assert result.name == name
        assert result.repeats == 4
        assert result.min_ms <= result.median_ms <= result.max_ms

    def test_history_round_trip(self, throwaway_bench, tmp_path):
        name, _calls = throwaway_bench
        result = run_bench(name, repeats=2)
        path = str(tmp_path / "history.jsonl")
        assert append_history(path, [result, result]) == 2
        records = read_history(path)
        assert len(records) == 2
        assert records[0]["name"] == name
        assert records[0]["schema"] == bench_pkg.HISTORY_SCHEMA
        assert records[0]["kind"] == "bench"
        assert records[0]["median_ms"] == pytest.approx(
            result.median_ms, abs=1e-3
        )
        # Appending grows, never truncates.
        append_history(path, [result])
        assert len(read_history(path)) == 3

    def test_history_to_file_object(self, throwaway_bench):
        name, _calls = throwaway_bench
        buffer = io.StringIO()
        append_history(buffer, [run_bench(name, repeats=1)], timestamp=123.0)
        buffer.seek(0)
        (record,) = read_history(buffer)
        assert record["timestamp"] == 123.0

    def test_baseline_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        results = [
            BenchResult("a", 3, median_ms=2.0, mean_ms=2.0, min_ms=1.5, max_ms=2.5),
            BenchResult("b", 3, median_ms=9.0, mean_ms=9.0, min_ms=8.0, max_ms=10.0),
        ]
        write_baseline(path, results)
        assert load_baseline(path) == {"a": 1.5, "b": 8.0}


class TestRegressionGate:
    @staticmethod
    def result(name, min_ms):
        return BenchResult(
            name, 3, median_ms=min_ms, mean_ms=min_ms, min_ms=min_ms,
            max_ms=min_ms,
        )

    def test_regression_needs_relative_and_absolute_excess(self):
        baseline = {"fast": 10.0, "tiny": 0.01}
        reports = check_regressions(
            [self.result("fast", 20.0), self.result("tiny", 0.02)],
            baseline,
            tolerance=0.5,
            min_delta_ms=1.0,
        )
        by_name = {report.name: report for report in reports}
        # 2x a 10 ms benchmark: over tolerance and over the slack.
        assert by_name["fast"].regressed
        # 2x a 10 us benchmark: over tolerance, under the slack -> noise.
        assert not by_name["tiny"].regressed

    def test_within_tolerance_passes(self):
        reports = check_regressions(
            [self.result("x", 12.0)], {"x": 10.0}, tolerance=0.5,
            min_delta_ms=1.0,
        )
        assert not reports[0].regressed
        assert "ok" in reports[0].describe()

    def test_new_benchmark_never_fails(self):
        (report,) = check_regressions([self.result("new", 5.0)], {})
        assert report.baseline_ms is None
        assert not report.regressed
        assert "no baseline" in report.describe()

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            check_regressions([], {}, tolerance=-0.1)


class TestBenchCommand:
    def run_cli(self, tmp_path, *extra, history=True):
        args = [
            "bench",
            "--filter", "test.cli",
            "--repeats", "2",
            "--baseline", str(tmp_path / "baseline.json"),
            "--history", str(tmp_path / "history.jsonl"),
        ]
        if not history:
            args.append("--no-history")
        args.extend(extra)
        return main(args)

    @pytest.fixture
    def cli_bench(self):
        @bench("test.cli.noop", description="cli test benchmark")
        def _setup():
            return lambda: None

        yield "test.cli.noop"
        unregister("test.cli.noop")

    def test_run_appends_history_and_prints_table(
        self, cli_bench, tmp_path, capsys
    ):
        assert self.run_cli(tmp_path) == 0
        out = capsys.readouterr().out
        assert "Benchmarks" in out
        assert cli_bench in out
        records = read_history(str(tmp_path / "history.jsonl"))
        assert [r["name"] for r in records] == [cli_bench]

    def test_check_without_baseline_errors(self, cli_bench, tmp_path, capsys):
        assert self.run_cli(tmp_path, "--check", history=False) == 2
        assert "no baseline" in capsys.readouterr().err

    def test_check_passes_against_fresh_baseline(
        self, cli_bench, tmp_path, capsys
    ):
        assert self.run_cli(tmp_path, "--update-baseline", history=False) == 0
        assert self.run_cli(tmp_path, "--check", history=False) == 0
        assert "OK: no regressions" in capsys.readouterr().out

    def test_injected_regression_fails_check(self, cli_bench, tmp_path, capsys):
        # A baseline claiming the sleep takes well under a nanosecond
        # forces both the relative and absolute excess to trip.
        baseline = tmp_path / "baseline.json"

        @bench("test.cli.slow", description="deliberately slow")
        def _setup():
            import time

            return lambda: time.sleep(0.003)

        try:
            baseline.write_text(
                json.dumps(
                    {"benchmarks": {cli_bench: 1e-9, "test.cli.slow": 1e-9}}
                )
            )
            assert self.run_cli(tmp_path, "--check", history=False) == 1
            captured = capsys.readouterr()
            assert "REGRESSED" in captured.out
            assert "FAIL" in captured.err
        finally:
            unregister("test.cli.slow")

    def test_list_does_not_run(self, cli_bench, tmp_path, capsys):
        assert self.run_cli(tmp_path, "--list") == 0
        out = capsys.readouterr().out
        assert "cli test benchmark" in out
        assert not (tmp_path / "history.jsonl").exists()

    def test_unknown_filter_errors(self, tmp_path, capsys):
        assert main(["bench", "--filter", "zzz-no-such"]) == 2
        assert "no benchmarks match" in capsys.readouterr().err

    def test_json_out_document(self, cli_bench, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        assert self.run_cli(
            tmp_path, "--json-out", str(out_path), history=False
        ) == 0
        document = json.loads(out_path.read_text())
        assert [r["name"] for r in document["results"]] == [cli_bench]


class TestCommittedArtifacts:
    """The seeded trajectory and baseline stay loadable and consistent."""

    def repo_root(self):
        import pathlib

        return pathlib.Path(__file__).resolve().parent.parent

    def test_seeded_history_parses_and_starts_at_pr1(self):
        records = read_history(str(self.repo_root() / "BENCH_history.jsonl"))
        assert len(records) >= 10
        seeded = [r for r in records if r.get("source") == "BENCH_evaluate.json"]
        assert {r["name"] for r in seeded} == {
            "evaluate", "evaluate_scenarios", "optimize",
        }
        assert all(r["schema"] == bench_pkg.HISTORY_SCHEMA for r in records)
        assert all("median_ms" in r and "name" in r for r in records)

    def test_committed_baseline_covers_the_suite(self):
        baseline = load_baseline(
            str(self.repo_root() / "benchmarks" / "BENCH_baseline.json")
        )
        assert {info.name for info in all_benches()} <= set(baseline)
