"""Outlays and penalties (section 3.3.5, Figure 5)."""

import pytest

from repro import casestudy
from repro.core import compute_costs
from repro.core.cost import RECOVERY_FACILITY, compute_outlays
from repro.core.demands import register_design_demands
from repro.core.dataloss import compute_data_loss
from repro.core.recovery import plan_recovery
from repro.scenarios import BusinessRequirements, FailureScenario
from repro.scenarios.locations import PRIMARY_SITE
from repro.units import HOUR, MB
from repro.workload.presets import cello


@pytest.fixture
def workload():
    return cello()


@pytest.fixture
def baseline(workload):
    design = casestudy.baseline_design()
    register_design_demands(design, workload)
    return design


@pytest.fixture
def requirements():
    return casestudy.case_study_requirements()


class TestOutlays:
    def test_every_technique_present(self, baseline):
        outlays = compute_outlays(baseline)
        for name in (
            "foreground workload",
            "split mirror",
            "backup",
            "remote vaulting",
            RECOVERY_FACILITY,
        ):
            assert name in outlays, name

    def test_figure5_shape(self, baseline):
        """Foreground, mirroring and backup split the outlays roughly
        evenly; vaulting is negligible (paper Figure 5)."""
        outlays = compute_outlays(baseline)
        total = sum(outlays.values())
        for name in ("foreground workload", "split mirror", "backup"):
            share = outlays[name] / total
            assert 0.1 < share < 0.6, (name, share)
        assert outlays["remote vaulting"] / total < 0.08

    def test_total_outlays_near_paper(self, baseline):
        """Paper: $0.97M.  Our catalog lands within ~25%."""
        total = sum(compute_outlays(baseline).values())
        assert total == pytest.approx(0.97e6, rel=0.25)

    def test_facility_cost_is_fraction_of_primary_site(self, baseline):
        outlays = compute_outlays(baseline)
        # The facility charges 0.2x of primary-site devices only -- it
        # must be much smaller than the techniques it backs.
        assert outlays[RECOVERY_FACILITY] < 0.25 * sum(outlays.values())

    def test_mirror_design_charges_provisioned_links(self, workload):
        one = casestudy.async_batch_mirror_design(1)
        ten = casestudy.async_batch_mirror_design(10)
        register_design_demands(one, workload)
        register_design_demands(ten, workload)
        one_total = sum(compute_outlays(one).values())
        ten_total = sum(compute_outlays(ten).values())
        # Table 7: $0.93M vs $5.03M -- links dominate the 10x design.
        assert ten_total > 4 * one_total


class TestPenalties:
    def test_array_failure_penalties(self, baseline, workload, requirements):
        scenario = FailureScenario.array_failure("primary-array")
        loss = compute_data_loss(baseline, scenario)
        plan = plan_recovery(baseline, scenario, workload, loss_result=loss)
        costs = compute_costs(baseline, requirements, loss=loss, plan=plan)
        # DL penalty: 217 h * $50k/h = $10.85M dominates.
        assert costs.loss_penalty == pytest.approx(217 * 50_000, rel=0.01)
        assert costs.outage_penalty == pytest.approx(
            plan.recovery_time / HOUR * 50_000, rel=0.01
        )
        assert costs.total_cost == pytest.approx(
            costs.total_outlays + costs.total_penalties
        )

    def test_site_failure_penalties(self, baseline, workload, requirements):
        scenario = FailureScenario.site_disaster(PRIMARY_SITE)
        loss = compute_data_loss(baseline, scenario)
        plan = plan_recovery(baseline, scenario, workload, loss_result=loss)
        costs = compute_costs(baseline, requirements, loss=loss, plan=plan)
        assert costs.loss_penalty == pytest.approx(1429 * 50_000, rel=0.01)

    def test_penalties_scale_with_rates(self, baseline, workload):
        scenario = FailureScenario.array_failure("primary-array")
        loss = compute_data_loss(baseline, scenario)
        plan = plan_recovery(baseline, scenario, workload, loss_result=loss)
        cheap = compute_costs(
            baseline, BusinessRequirements.per_hour(1_000, 1_000),
            loss=loss, plan=plan,
        )
        pricey = compute_costs(
            baseline, BusinessRequirements.per_hour(100_000, 100_000),
            loss=loss, plan=plan,
        )
        assert pricey.total_penalties == pytest.approx(
            100 * cheap.total_penalties
        )

    def test_total_loss_penalty_is_infinite(self, baseline, workload, requirements):
        scenario = FailureScenario.object_corruption(1 * MB, "20 yr")
        loss = compute_data_loss(baseline, scenario)
        costs = compute_costs(baseline, requirements, loss=loss, plan=None)
        assert costs.loss_penalty == float("inf")
        assert costs.total_cost == float("inf")

    def test_no_results_means_no_penalties(self, baseline, requirements):
        costs = compute_costs(baseline, requirements)
        assert costs.total_penalties == 0.0
        assert costs.total_cost == costs.total_outlays

    def test_describe(self, baseline, requirements):
        assert "outlays" in compute_costs(baseline, requirements).describe()
