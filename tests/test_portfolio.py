"""Multi-object portfolios: shared devices, dependencies, joint costs."""

import pytest

import repro
from repro.devices.catalog import (
    enterprise_tape_library,
    midrange_disk_array,
    san_link,
)
from repro.exceptions import DesignError
from repro.units import GB, HOUR
from repro.workload.presets import oltp_database, web_server


def tape_design(name, array, library, san):
    design = repro.StorageDesign(
        name, recovery_facility=repro.SpareConfig.shared("9 hr", 0.2)
    )
    design.add_level(repro.PrimaryCopy(name=f"{name} foreground"), store=array)
    design.add_level(
        repro.VirtualSnapshot("12 hr", 4, name=f"{name} snapshot"), store=array
    )
    design.add_level(
        repro.Backup("1 wk", "48 hr", "1 hr", 4, name=f"{name} backup"),
        store=library,
        transport=san,
    )
    return design


@pytest.fixture
def shared_hardware():
    return (
        midrange_disk_array(spare=repro.SpareConfig.dedicated("60 s", 1.0)),
        enterprise_tape_library(spare=repro.SpareConfig.dedicated("60 s", 1.0)),
        san_link(),
    )


@pytest.fixture
def portfolio(shared_hardware):
    array, library, san = shared_hardware
    p = repro.Portfolio("db+app")
    p.add_object(
        "database", oltp_database(), tape_design("db", array, library, san)
    )
    p.add_object(
        "application",
        web_server(500 * GB),
        tape_design("app", array, library, san),
        depends_on=["database"],
    )
    return p


@pytest.fixture
def requirements():
    return repro.BusinessRequirements.per_hour(50_000, 50_000)


class TestConstruction:
    def test_duplicate_names_rejected(self, shared_hardware):
        array, library, san = shared_hardware
        p = repro.Portfolio("p")
        p.add_object("x", oltp_database(), tape_design("a", array, library, san))
        with pytest.raises(DesignError):
            p.add_object("x", oltp_database(), tape_design("b", array, library, san))

    def test_unknown_dependency_rejected(self, shared_hardware):
        array, library, san = shared_hardware
        p = repro.Portfolio("p")
        with pytest.raises(DesignError):
            p.add_object(
                "x", oltp_database(), tape_design("a", array, library, san),
                depends_on=["ghost"],
            )

    def test_self_dependency_rejected(self):
        with pytest.raises(DesignError):
            repro.ProtectedObject(
                name="x", workload=oltp_database(),
                design=repro.StorageDesign("d"), depends_on=("x",),
            )

    def test_empty_portfolio_cannot_register(self):
        with pytest.raises(DesignError):
            repro.Portfolio("empty").register_demands()

    def test_shared_devices_deduplicated(self, portfolio):
        names = [d.name for d in portfolio.devices()]
        assert names.count("primary-array") == 1
        assert names.count("tape-library") == 1


class TestJointUtilization:
    def test_demands_accumulate_across_objects(self, portfolio, shared_hardware):
        array, _library, _san = shared_hardware
        portfolio.register_demands()
        # Both objects' primary copies live on the array: capacity is the
        # sum of the two datasets (plus snapshot deltas).
        logical = array.capacity_demand_logical()
        assert logical > (500 + 500) * GB

    def test_joint_utilization_exceeds_single(self, portfolio, shared_hardware):
        array, library, san = shared_hardware
        portfolio.register_demands()
        joint = portfolio.utilization().device("primary-array")
        solo_design = tape_design(
            "solo",
            midrange_disk_array(),
            enterprise_tape_library(),
            san_link(),
        )
        from repro.core.demands import register_design_demands

        register_design_demands(solo_design, oltp_database())
        solo = solo_design.devices()[0].utilization()
        assert joint.capacity_utilization > solo.capacity_utilization


class TestRecoveryScheduling:
    def test_dependent_object_starts_after_dependency(self, portfolio, requirements):
        assessment = portfolio.evaluate(
            repro.FailureScenario.array_failure("primary-array"), requirements
        )
        db = assessment.outcomes["database"]
        app = assessment.outcomes["application"]
        assert db.recovery_start == 0.0
        assert app.recovery_start == pytest.approx(db.recovery_finish)
        assert assessment.portfolio_recovery_time == pytest.approx(
            app.recovery_finish
        )

    def test_serialized_recoveries(self, shared_hardware, requirements):
        array, library, san = shared_hardware
        p = repro.Portfolio("independent")
        p.add_object("a", oltp_database(), tape_design("a", array, library, san))
        p.add_object("b", web_server(500 * GB), tape_design("b", array, library, san))
        scenario = repro.FailureScenario.array_failure("primary-array")
        parallel = p.evaluate(scenario, requirements)
        serial = p.evaluate(scenario, requirements, serialize_recoveries=True)
        # Independent objects overlap in the parallel model...
        a, b = parallel.outcomes["a"], parallel.outcomes["b"]
        assert a.recovery_start == b.recovery_start == 0.0
        # ...and queue in the serialized one.
        sa, sb = serial.outcomes["a"], serial.outcomes["b"]
        assert sb.recovery_start == pytest.approx(sa.recovery_finish)
        assert (
            serial.portfolio_recovery_time > parallel.portfolio_recovery_time
        )

    def test_per_object_losses_independent(self, portfolio, requirements):
        assessment = portfolio.evaluate(
            repro.FailureScenario.array_failure("primary-array"), requirements
        )
        for outcome in assessment.outcomes.values():
            assert outcome.data_loss.data_loss == pytest.approx(217 * HOUR)


class TestContendedRecovery:
    def test_contention_slows_shared_restores(self, shared_hardware, requirements):
        array, library, san = shared_hardware
        p = repro.Portfolio("pair")
        p.add_object("a", oltp_database(), tape_design("a", array, library, san))
        p.add_object("b", web_server(500 * GB), tape_design("b", array, library, san))
        scenario = repro.FailureScenario.array_failure("primary-array")
        plain = p.evaluate(scenario, requirements)
        contended = p.evaluate_contended(scenario, requirements)
        for name in ("a", "b"):
            assert (
                contended.outcomes[name].recovery_finish
                > plain.outcomes[name].recovery_finish
            )

    def test_single_object_matches_plain_evaluation(
        self, shared_hardware, requirements
    ):
        """With no contention the event-level replay reproduces the
        analytic recovery time."""
        array, library, san = shared_hardware
        p = repro.Portfolio("solo")
        p.add_object("only", oltp_database(), tape_design("x", array, library, san))
        scenario = repro.FailureScenario.array_failure("primary-array")
        plain = p.evaluate(scenario, requirements)
        contended = p.evaluate_contended(scenario, requirements)
        assert contended.outcomes["only"].recovery_finish == pytest.approx(
            plain.outcomes["only"].recovery_finish, rel=1e-6
        )

    def test_dependencies_still_respected(self, portfolio, requirements):
        contended = portfolio.evaluate_contended(
            repro.FailureScenario.array_failure("primary-array"), requirements
        )
        db = contended.outcomes["database"]
        app = contended.outcomes["application"]
        assert app.recovery_start == pytest.approx(db.recovery_finish)

    def test_suspended_background_speeds_recovery(
        self, shared_hardware, requirements
    ):
        array, library, san = shared_hardware
        p = repro.Portfolio("pair")
        p.add_object("a", oltp_database(), tape_design("a", array, library, san))
        p.add_object("b", web_server(500 * GB), tape_design("b", array, library, san))
        scenario = repro.FailureScenario.array_failure("primary-array")
        busy = p.evaluate_contended(scenario, requirements, background_load=1.0)
        quiet = p.evaluate_contended(scenario, requirements, background_load=0.0)
        assert (
            quiet.portfolio_recovery_time <= busy.portfolio_recovery_time
        )


class TestPortfolioCosts:
    def test_shared_fixed_costs_charged_once(self, portfolio, requirements):
        assessment = portfolio.evaluate(
            repro.FailureScenario.array_failure("primary-array"), requirements
        )
        # The array's fixed cost lands on the first-registered primary
        # technique only; the app's foreground pays variable costs only.
        db_fg = assessment.outlays_by_technique["db foreground"]
        app_fg = assessment.outlays_by_technique["app foreground"]
        assert db_fg > app_fg

    def test_penalties_sum_over_objects(self, portfolio, requirements):
        assessment = portfolio.evaluate(
            repro.FailureScenario.array_failure("primary-array"), requirements
        )
        expected_loss_penalty = sum(
            requirements.loss_penalty(o.data_loss.data_loss)
            for o in assessment.outcomes.values()
        )
        assert assessment.loss_penalty == pytest.approx(expected_loss_penalty)
        # Outage penalties accrue per object until *its* recovery finish.
        expected_outage = sum(
            requirements.outage_penalty(o.recovery_finish)
            for o in assessment.outcomes.values()
        )
        assert assessment.outage_penalty == pytest.approx(expected_outage)

    def test_facility_charged_once(self, portfolio, requirements):
        assessment = portfolio.evaluate(
            repro.FailureScenario.array_failure("primary-array"), requirements
        )
        assert "recovery facility" in assessment.outlays_by_technique

    def test_summary(self, portfolio, requirements):
        assessment = portfolio.evaluate(
            repro.FailureScenario.array_failure("primary-array"), requirements
        )
        assert "db+app" in assessment.summary()
