"""The erasure-coded archive technique (extensibility demonstration)."""

import pytest

import repro
from repro.devices.catalog import midrange_disk_array, oc3_links
from repro.devices.base import Device
from repro.exceptions import PolicyError
from repro.scenarios.locations import REMOTE_SITE
from repro.techniques import ErasureCodedArchive
from repro.units import GB, HOUR
from repro.workload.presets import cello


@pytest.fixture
def archive():
    return ErasureCodedArchive(
        data_fragments=4,
        total_fragments=6,
        accumulation_window="12 hr",
        propagation_window="6 hr",
        retention_count=8,
    )


class TestConstruction:
    def test_stretch_factor(self, archive):
        assert archive.stretch_factor == pytest.approx(1.5)
        assert archive.tolerated_fragment_losses == 2

    def test_no_redundancy_rejected(self):
        with pytest.raises(PolicyError):
            ErasureCodedArchive(4, 4, "12 hr", "6 hr")

    def test_zero_data_fragments_rejected(self):
        with pytest.raises(PolicyError):
            ErasureCodedArchive(0, 4, "12 hr", "6 hr")

    def test_implausible_stretch_rejected_by_validate(self):
        archive = ErasureCodedArchive(1, 20, "12 hr", "6 hr")
        with pytest.raises(PolicyError):
            archive.validate(cello())


class TestTimeline:
    def test_worst_lag_follows_standard_cycle(self, archive):
        # accW + holdW + propW = 12 + 0 + 6 h.
        assert archive.worst_lag() == pytest.approx(18 * HOUR)

    def test_retention_span(self, archive):
        assert archive.retention_span() == pytest.approx(7 * 12 * HOUR)


class TestDemands:
    def test_capacity_is_stretched(self, archive):
        workload = cello()
        store = Device("fragment-store", max_capacity=float("inf"),
                       max_bandwidth=float("inf"))
        archive.register_demands(workload, store=store)
        demand = store.demands[0]
        base = workload.data_capacity + 8 * workload.unique_bytes(12 * HOUR)
        assert demand.capacity == pytest.approx(1.5 * base)

    def test_spread_bandwidth_on_transport(self, archive):
        workload = cello()
        store = Device("fragment-store", max_capacity=float("inf"),
                       max_bandwidth=float("inf"))
        link = oc3_links(2)
        archive.register_demands(workload, store=store, transport=link)
        expected = 1.5 * workload.unique_bytes(12 * HOUR) / (6 * HOUR)
        assert link.demands[0].bandwidth == pytest.approx(expected)

    def test_source_reads_unstretched(self, archive):
        workload = cello()
        store = Device("fragment-store", max_capacity=float("inf"),
                       max_bandwidth=float("inf"))
        source = midrange_disk_array()
        archive.register_demands(workload, store=store, source_store=source)
        assert source.demands[0].bandwidth == pytest.approx(
            workload.unique_bytes(12 * HOUR) / (6 * HOUR)
        )

    def test_recovery_size_is_logical(self, archive):
        workload = cello()
        assert archive.recovery_size(workload, workload.data_capacity) == (
            workload.data_capacity
        )


class TestEndToEnd:
    def test_composes_into_a_design(self):
        """The whole point: a new technique drops into the framework."""
        workload = cello()
        array = midrange_disk_array(spare=repro.SpareConfig.dedicated("60 s", 1.0))
        fragment_store = Device(
            "fragment-store",
            max_capacity=100_000 * GB,
            max_bandwidth=float("inf"),
            location=REMOTE_SITE,
        )
        design = repro.StorageDesign(
            "erasure-protected",
            recovery_facility=repro.SpareConfig.shared("9 hr", 0.2),
        )
        design.add_level(repro.PrimaryCopy(), store=array)
        design.add_level(
            ErasureCodedArchive(4, 6, "12 hr", "6 hr", retention_count=8),
            store=fragment_store,
            transport=oc3_links(2),
        )
        result = repro.evaluate(
            design,
            workload,
            repro.FailureScenario.array_failure("primary-array"),
            repro.BusinessRequirements.per_hour(50_000, 50_000),
        )
        assert result.data_loss.source_name == "erasure archive"
        assert result.recent_data_loss == pytest.approx(18 * HOUR)
        assert result.recovery_time > 0
        assert result.utilization.feasible
