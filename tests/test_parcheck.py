"""The parallel-safety analyzer: seeded bug corpus, rules, CLI.

The corpus below plants known parallel-safety and determinism bugs —
nondeterminism inside worker tasks, global mutation and I/O in
worker-reachable code, set-order leaking into outputs, lock-discipline
violations, pickle-hostile pool payloads — and asserts every one is
detected: the acceptance bar is zero false negatives over the corpus
and zero findings on the shipped tree.
"""

import json

import pytest

from repro.lint.diagnostics import Severity
from repro.lint.output import diagnostics_from_sarif, render_sarif
from repro.lint.parcheck import (
    ALLOW_PAR_PRAGMA,
    PAR_RULES,
    WORKER_BOUNDARY_MARKER,
    analyze_sources,
    lint_paths,
    lint_source,
    main,
)
from repro.obs import MetricsRegistry, use_metrics

PREAMBLE = (
    "import json\n"
    "import os\n"
    "import random\n"
    "import threading\n"
    "import time\n"
    "import uuid\n"
    "from concurrent.futures import ProcessPoolExecutor\n"
    "\n"
    "_STATE = {}\n"
    "_TOTAL = 0\n"
    "\n"
)

#: The standard worker boundary every corpus entry hangs off.
SUBMIT = (
    "\n"
    "def sweep(pool, items):\n"
    "    return [pool.submit(task, i) for i in items]\n"
)


def codes(findings):
    return [f.code for f in findings]


def check(body, submit=True):
    source = PREAMBLE + body + (SUBMIT if submit else "")
    return lint_source(source, "corpus.py")


#: The seeded-bug corpus: every entry is a parallel-safety bug the
#: analyzer must report (zero false negatives), with the rule it must
#: fire.  ≥ 12 planted violations spanning every PAR rule.
CORPUS = [
    # nondeterminism reachable from a worker task (PAR001)
    (
        "wall_clock_in_task",
        "def task(x):\n    return time.time()\n",
        "PAR001",
    ),
    (
        "transitive_wall_clock",
        "def stamp():\n    return time.time()\n"
        "def task(x):\n    return stamp() + x\n",
        "PAR001",
    ),
    (
        "unseeded_global_random",
        "def task(x):\n    return random.random() * x\n",
        "PAR001",
    ),
    (
        "uuid_in_task",
        "def task(x):\n    return uuid.uuid4().hex\n",
        "PAR001",
    ),
    (
        "environ_read_in_task",
        "def task(x):\n    return os.environ['SEED']\n",
        "PAR001",
    ),
    (
        "urandom_in_task",
        "def task(x):\n    return os.urandom(8)\n",
        "PAR001",
    ),
    (
        "unseeded_default_rng",
        "from numpy.random import default_rng\n"
        "def task(x):\n    return default_rng().integers(0, x)\n",
        "PAR001",
    ),
    (
        "nondet_via_method_dispatch",
        "class Nonce:\n"
        "    def fresh_token(self):\n"
        "        return uuid.uuid4().hex\n"
        "def task(x):\n"
        "    helper = Nonce()\n"
        "    return helper.fresh_token()\n",
        "PAR001",
    ),
    (
        "nondet_via_cha_union",
        "class Rows:\n"
        "    def label_rows(self):\n"
        "        return time.time()\n"
        "def task(x):\n    return x.label_rows()\n",
        "PAR001",
    ),
    # global/module-state mutation or I/O in worker-reachable code (PAR002)
    (
        "global_rebind_in_task",
        "def task(x):\n    global _TOTAL\n    _TOTAL += x\n    return _TOTAL\n",
        "PAR002",
    ),
    (
        "module_dict_mutation_in_task",
        "def task(x):\n    _STATE[x] = 1\n    return x\n",
        "PAR002",
    ),
    (
        "print_in_task",
        "def task(x):\n    print(x)\n    return x\n",
        "PAR002",
    ),
    (
        "file_write_in_task",
        "def task(x):\n"
        "    with open('log.txt', 'a') as handle:\n"
        "        handle.write(str(x))\n"
        "    return x\n",
        "PAR002",
    ),
    # set-iteration order flowing into outputs (PAR003)
    (
        "set_comprehension_returned",
        "def task(x):\n    return [item for item in {1, 2, x}]\n",
        "PAR003",
    ),
    (
        "set_loop_into_serialization",
        "def task(x):\n"
        "    out = []\n"
        "    for item in set(x):\n"
        "        out.append(item)\n"
        "    return json.dumps(out)\n",
        "PAR003",
    ),
    (
        "list_of_set_returned",
        "def task(x):\n    return list({1, 2, x})\n",
        "PAR003",
    ),
    (
        # The second real defect parcheck caught in the shipped tree:
        # dimcheck._join_env built the joined environment by iterating
        # set(left) | set(right), so its dict order depended on
        # PYTHONHASHSEED (fixed with sorted()).
        "dict_built_from_set_union",
        "def task(left, right):\n"
        "    out = {}\n"
        "    for key in set(left) | set(right):\n"
        "        out[key] = 1\n"
        "    return out\n",
        "PAR003",
    ),
    # lock-discipline violations (PAR004)
    (
        "class_unlocked_read",
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.counts = {}\n"
        "    def bump(self, name):\n"
        "        with self._lock:\n"
        "            self.counts[name] = self.counts.get(name, 0) + 1\n"
        "    def peek(self):\n"
        "        return dict(self.counts)\n",
        "PAR004",
    ),
    (
        "class_unlocked_write",
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.counts = {}\n"
        "    def bump(self, name):\n"
        "        with self._lock:\n"
        "            self.counts[name] = 1\n"
        "    def wipe(self):\n"
        "        self.counts.clear()\n",
        "PAR004",
    ),
    (
        # The real defect parcheck caught in the shipped tree:
        # obs.http.active_server() read _ACTIVE without _ACTIVE_LOCK
        # while start()/stop() write it under the lock.
        "module_unlocked_read_active_server",
        "_ACTIVE = None\n"
        "_ACTIVE_LOCK = threading.Lock()\n"
        "def install(server):\n"
        "    global _ACTIVE\n"
        "    with _ACTIVE_LOCK:\n"
        "        _ACTIVE = server\n"
        "def active_server():\n"
        "    return _ACTIVE\n",
        "PAR004",
    ),
    # pickle-hostile pool payloads (PAR005)
    (
        "lambda_submitted",
        "def kick(pool):\n    return pool.submit(lambda: 1)\n",
        "PAR005",
    ),
    (
        "nested_function_submitted",
        "def kick(pool):\n"
        "    def local():\n        return 2\n"
        "    return pool.submit(local)\n",
        "PAR005",
    ),
    (
        "generator_submitted",
        "def task(x):\n    return x\n"
        "def kick(pool, items):\n"
        "    return pool.submit(task, (i for i in items))\n",
        "PAR005",
    ),
    (
        "open_handle_submitted",
        "def task(x):\n    return x\n"
        "def kick(pool):\n"
        "    handle = open('data.txt')\n"
        "    return pool.submit(task, handle)\n",
        "PAR005",
    ),
]


class TestCorpus:
    @pytest.mark.parametrize(
        "body,expected", [(b, c) for _, b, c in CORPUS],
        ids=[name for name, _, _ in CORPUS],
    )
    def test_every_planted_bug_is_detected(self, body, expected):
        findings = check(body)
        assert expected in codes(findings), codes(findings)

    def test_corpus_spans_every_content_rule(self):
        planted = {expected for _, _, expected in CORPUS}
        assert planted == {"PAR001", "PAR002", "PAR003", "PAR004", "PAR005"}
        assert len(CORPUS) >= 12

    def test_rule_table_is_complete(self):
        assert set(PAR_RULES) == {
            "PAR001",
            "PAR002",
            "PAR003",
            "PAR004",
            "PAR005",
            "PAR006",
            "PAR099",
        }
        assert PAR_RULES["PAR003"].severity is Severity.WARNING
        assert PAR_RULES["PAR004"].severity is Severity.ERROR


class TestCleanConstructs:
    @pytest.mark.parametrize(
        "body",
        [
            # A pure task: deterministic function of its arguments.
            "def task(x):\n    return x * 2\n",
            # Seeded RNG instances are reproducible.
            "def task(x):\n    return random.Random(x).random()\n",
            "from numpy.random import default_rng\n"
            "def task(x):\n    return default_rng(x).integers(0, 10)\n",
            # Monotonic timers are the sanctioned telemetry clock.
            "def task(x):\n    t0 = time.perf_counter()\n"
            "    return x, time.perf_counter() - t0\n",
            # Sorting launders set order before it becomes observable.
            "def task(x):\n    return sorted({1, 2, x})\n",
            # Membership/size checks never observe iteration order.
            "def task(x):\n"
            "    seen = set()\n"
            "    seen.add(x)\n"
            "    return len(seen), x in seen\n",
            # Local mutation is fine; only module state is shared.
            "def task(x):\n    acc = {}\n    acc[x] = 1\n    return acc\n",
            # A fully locked class obeys its own discipline.
            "class Registry:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.counts = {}\n"
            "    def bump(self, name):\n"
            "        with self._lock:\n"
            "            self.counts[name] = 1\n"
            "    def peek(self):\n"
            "        with self._lock:\n"
            "            return dict(self.counts)\n",
            # Unlocked attributes with no locked writers are not shared
            # under the lock's contract (construction happens-before).
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.label = 'x'\n"
            "    def name(self):\n"
            "        return self.label\n",
        ],
    )
    def test_clean_constructs(self, body):
        assert check(body) == [], codes(check(body))

    def test_effects_outside_worker_reach_are_not_findings(self):
        # time.time / print in parent-side code is ordinary Python.
        body = (
            "def report():\n"
            "    print('started at', time.time())\n"
            "def task(x):\n    return x\n"
        )
        assert check(body) == []

    def test_submitting_module_function_is_clean(self):
        assert check("def task(x):\n    return x\n") == []


class TestWorkerBoundaries:
    def test_marker_creates_a_root_without_a_submit_site(self):
        body = (
            f"def task(x):  # {WORKER_BOUNDARY_MARKER}\n"
            "    return time.time()\n"
        )
        assert "PAR001" in codes(check(body, submit=False))

    def test_no_boundary_no_reachability_findings(self):
        body = "def task(x):\n    return time.time()\n"
        assert check(body, submit=False) == []

    def test_cross_module_reachability(self):
        # The call graph spans files: a.sweep submits b.task, whose
        # helper in b is nondeterministic.
        lib = (
            "import time\n"
            "def stamp():\n    return time.time()\n"
            "def task(x):\n    return stamp()\n"
        )
        app = (
            "from b import task\n"
            "def sweep(pool, items):\n"
            "    return [pool.submit(task, i) for i in items]\n"
        )
        findings = analyze_sources([("proj/b.py", lib), ("proj/a.py", app)])
        assert codes(findings) == ["PAR001"]
        assert findings[0].file == "proj/b.py"

    def test_finding_message_names_the_chain(self):
        findings = check(
            "def stamp():\n    return time.time()\n"
            "def task(x):\n    return stamp()\n"
        )
        assert any(
            "task" in f.message and "stamp" in f.message for f in findings
        )


class TestPragmas:
    def test_pragma_suppresses_the_line(self):
        body = (
            "def task(x):\n"
            f"    return time.time()  # {ALLOW_PAR_PRAGMA}\n"
        )
        assert check(body) == []

    def test_stale_pragma_is_flagged_par099(self):
        body = f"def task(x):\n    return x  # {ALLOW_PAR_PRAGMA}\n"
        findings = check(body)
        assert codes(findings) == ["PAR099"]
        assert findings[0].severity is Severity.WARNING
        assert "stale" in findings[0].message

    def test_pragma_budget_par006(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text(
            "import time\n"
            "def task(x):\n"
            f"    return time.time()  # {ALLOW_PAR_PRAGMA}\n"
            "def sweep(pool, items):\n"
            "    return [pool.submit(task, i) for i in items]\n"
        )
        assert lint_paths([str(path)], max_pragmas=1) == []
        over = lint_paths([str(path)], max_pragmas=0)
        assert codes(over) == ["PAR006"]
        assert "budget" in over[0].message


class TestTreeAndCli:
    def test_shipped_tree_is_clean(self):
        # The acceptance criterion: src/repro passes strict with zero
        # findings (and, today, zero pragmas in use).
        assert lint_paths(["src/repro"]) == []

    def test_examples_and_benchmarks_are_clean(self):
        assert lint_paths(["examples", "benchmarks"]) == []

    def test_analyzer_is_allowlisted(self):
        assert lint_source("x = 4\n", "src/repro/lint/parcheck.py") == []

    def test_obs_is_sanctioned_but_lock_checked(self):
        # Telemetry-fabric effects are not findings...
        sanctioned = (
            "import time\n"
            "def now():\n    return time.time()\n"
        )
        assert lint_source(sanctioned, "src/repro/obs/fake.py") == []
        # ...but lock discipline still applies inside repro.obs.
        undisciplined = (
            "import threading\n"
            "_ACTIVE = None\n"
            "_LOCK = threading.Lock()\n"
            "def install(x):\n"
            "    global _ACTIVE\n"
            "    with _LOCK:\n"
            "        _ACTIVE = x\n"
            "def peek():\n    return _ACTIVE\n"
        )
        findings = lint_source(undisciplined, "src/repro/obs/fake.py")
        assert codes(findings) == ["PAR004"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def task(x):\n    return x\n")
        assert main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import time\n"
            "def task(x):\n    return time.time()\n"
            "def sweep(pool, items):\n"
            "    return [pool.submit(task, i) for i in items]\n"
        )
        assert main([str(dirty)]) == 1
        assert "PAR001" in capsys.readouterr().out

    def test_cli_strict_promotes_warnings(self, tmp_path, capsys):
        stale = tmp_path / "stale.py"
        stale.write_text(f"x = 1  # {ALLOW_PAR_PRAGMA}\n")
        assert main([str(stale)]) == 0
        capsys.readouterr()
        assert main([str(stale), "--strict"]) == 1
        capsys.readouterr()

    def test_module_and_cli_subcommand_agree(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import time\n"
            "def task(x):\n    return time.time()\n"
            "def sweep(pool, items):\n"
            "    return [pool.submit(task, i) for i in items]\n"
        )
        module_exit = main([str(dirty)])
        module_out = capsys.readouterr().out
        cli_exit = cli_main(["lint", "par", str(dirty)])
        cli_out = capsys.readouterr().out
        assert module_exit == cli_exit == 1
        assert "PAR001" in module_out and "PAR001" in cli_out

    def test_sarif_round_trip(self):
        findings = check("def task(x):\n    return time.time()\n")
        assert findings
        restored = diagnostics_from_sarif(render_sarif(findings))
        assert codes(restored) == codes(findings)
        assert {f.code for f in findings} <= {
            rule["id"]
            for run in json.loads(render_sarif(findings))["runs"]
            for rule in run["tool"]["driver"]["rules"]
        }

    def test_metrics_counters(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import time\n"
            "def task(x):\n    return time.time()\n"
            "def sweep(pool, items):\n"
            "    return [pool.submit(task, i) for i in items]\n"
        )
        registry = MetricsRegistry()
        with use_metrics(registry):
            findings = lint_paths([str(dirty)])
        assert findings
        counters = registry.snapshot()["counters"]
        assert counters["lint.parcheck.files"] == 1
        assert counters["lint.diagnostics.error"] >= 1


class TestUmbrella:
    def test_lint_all_merges_every_analyzer(self, tmp_path, capsys):
        from repro.lint.allcheck import main as all_main

        path = tmp_path / "messy.py"
        path.write_text(
            "import time\n"
            "from repro.units import GB, HOUR\n"
            "retention = 4 * 3600\n"
            "mixed = 4 * GB + 2 * HOUR\n"
            "def task(x):\n    return time.time()\n"
            "def sweep(pool, items):\n"
            "    return [pool.submit(task, i) for i in items]\n"
        )
        assert all_main([str(path)]) == 1
        out = capsys.readouterr().out
        for expected in ("UNI001", "DIM001", "PAR001"):
            assert expected in out

    def test_lint_all_clean_tree_exits_zero(self, capsys):
        from repro.lint.allcheck import main as all_main

        assert all_main(["src/repro/engine", "--strict"]) == 0
        capsys.readouterr()

    def test_missing_spec_is_dep000_not_a_traceback(self, tmp_path, capsys):
        from repro.lint.allcheck import main as all_main

        assert all_main([str(tmp_path / "missing.json")]) == 1
        out = capsys.readouterr().out
        assert "DEP000" in out and "unreadable" in out

    def test_cli_all_subcommand_matches_module(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.lint.allcheck import main as all_main

        path = tmp_path / "messy.py"
        path.write_text("retention = 86400\n")
        module_exit = all_main([str(path)])
        module_out = capsys.readouterr().out
        cli_exit = cli_main(["lint", "all", str(path)])
        cli_out = capsys.readouterr().out
        assert module_exit == cli_exit == 1
        assert "UNI001" in module_out and "UNI001" in cli_out
