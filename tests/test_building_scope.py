"""Building-scope failures: PiT copies in another building survive.

The paper's failure scopes include *building* (all devices in one
building).  These tests exercise a campus design: the primary array in
building A, a synchronous mirror in building B on the same site, tape
in building A. A building-A disaster leaves the mirror intact; a
site disaster takes both buildings.
"""

import pytest

import repro
from repro.devices.catalog import (
    enterprise_tape_library,
    midrange_disk_array,
    oc3_links,
    san_link,
)
from repro.scenarios import FailureScenario, Location
from repro.units import HOUR, MB
from repro.workload.presets import cello

BUILDING_A = Location(region="r1", site="campus", building="A")
BUILDING_B = Location(region="r1", site="campus", building="B")


@pytest.fixture
def campus_design():
    primary = midrange_disk_array(
        location=BUILDING_A, spare=repro.SpareConfig.dedicated("60 s", 1.0)
    )
    mirror = midrange_disk_array(
        name="mirror-array", location=BUILDING_B, spare=repro.SpareConfig.none()
    )
    library = enterprise_tape_library(
        location=BUILDING_A, spare=repro.SpareConfig.dedicated("60 s", 1.0)
    )
    campus_link = oc3_links(10, name="campus-link", location=BUILDING_A)

    design = repro.StorageDesign(
        "campus", recovery_facility=repro.SpareConfig.shared("9 hr", 0.2)
    )
    design.add_level(repro.PrimaryCopy(), store=primary)
    design.add_level(repro.SyncMirror(), store=mirror, transport=campus_link)
    design.add_level(
        repro.Backup("1 wk", "48 hr", "1 hr", 4),
        store=library,
        transport=san_link(name="san", location=BUILDING_A),
    )
    return design


@pytest.fixture
def requirements():
    return repro.BusinessRequirements.per_hour(50_000, 50_000)


class TestBuildingFailure:
    def test_building_a_fails_primary_and_tape_not_mirror(self, campus_design):
        scenario = FailureScenario.building_disaster(BUILDING_A)
        failed = {d.name for d in campus_design.failed_devices(scenario)}
        assert "primary-array" in failed
        assert "tape-library" in failed
        assert "mirror-array" not in failed

    def test_recovery_from_the_other_building(
        self, campus_design, requirements
    ):
        workload = cello()
        result = repro.evaluate(
            campus_design,
            workload,
            FailureScenario.building_disaster(BUILDING_A),
            requirements,
        )
        # The synchronous mirror survives: zero loss.
        assert result.data_loss.source_name == "sync mirror"
        assert result.recent_data_loss == 0.0
        # Recovery: re-provision at the facility, stream back over the
        # campus links.
        assert result.recovery_time > 9 * HOUR

    def test_dedicated_spare_lost_with_its_building(
        self, campus_design, requirements
    ):
        """The hot spare is co-located: building failures fall through
        to the shared facility (9 h), unlike array failures (60 s)."""
        workload = cello()
        array_result = repro.evaluate(
            campus_design,
            workload,
            FailureScenario.array_failure("primary-array"),
            requirements,
        )
        building_result = repro.evaluate(
            campus_design,
            workload,
            FailureScenario.building_disaster(BUILDING_A),
            requirements,
        )
        assert building_result.recovery_time > array_result.recovery_time
        assert building_result.recovery_time - array_result.recovery_time == (
            pytest.approx(9 * HOUR - 60.0, rel=0.01)
        )

    def test_site_failure_takes_both_buildings(self, campus_design, requirements):
        scenario = FailureScenario.site_disaster(BUILDING_A)
        failed = {d.name for d in campus_design.failed_devices(scenario)}
        assert "mirror-array" in failed
        workload = cello()
        result = repro.evaluate(
            campus_design, workload, scenario, requirements,
            strict_utilization=False,
        )
        # Nothing survives off-site: total loss.
        assert result.data_loss.total_loss

    def test_array_failure_prefers_zero_loss_mirror(
        self, campus_design, requirements
    ):
        workload = cello()
        result = repro.evaluate(
            campus_design,
            workload,
            FailureScenario.array_failure("primary-array"),
            requirements,
        )
        assert result.data_loss.source_name == "sync mirror"
        assert result.recent_data_loss == 0.0

    def test_object_rollback_ignores_the_mirror(self, campus_design, requirements):
        """Mirrors track 'now'; rollback needs the backup level."""
        workload = cello()
        result = repro.evaluate(
            campus_design,
            workload,
            FailureScenario.object_corruption(1 * MB, "2 wk"),
            requirements,
        )
        assert result.data_loss.source_name == "backup"
