"""Trace container: construction, statistics, slicing, windowed rates."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.units import GB, KB
from repro.workload import Trace, TraceRecord


def make_trace():
    """Six accesses over ten seconds on a 1 GB object, 4 KB blocks."""
    return Trace(
        timestamps=[0.0, 1.0, 2.0, 5.0, 5.0, 10.0],
        offsets=[0, 4096, 0, 8192, 4096, 0],
        sizes=[4096] * 6,
        is_write=[True, True, True, False, True, False],
        data_capacity=1 * GB,
        block_size=4096,
    )


class TestRecord:
    def test_valid_record(self):
        r = TraceRecord(timestamp=1.0, offset=0, size=4096, is_write=True)
        assert r.end == 4096

    def test_negative_timestamp_rejected(self):
        with pytest.raises(WorkloadError):
            TraceRecord(timestamp=-1, offset=0, size=1, is_write=False)

    def test_zero_size_rejected(self):
        with pytest.raises(WorkloadError):
            TraceRecord(timestamp=0, offset=0, size=0, is_write=False)


class TestConstruction:
    def test_column_length_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            Trace([0.0], [0, 1], [10], [True], data_capacity=100)

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(WorkloadError):
            Trace([1.0, 0.0], [0, 0], [1, 1], [True, True], data_capacity=100)

    def test_access_beyond_capacity_rejected(self):
        with pytest.raises(WorkloadError):
            Trace([0.0], [90], [20], [True], data_capacity=100)

    def test_from_records_round_trip(self):
        records = [
            TraceRecord(0.0, 0, 4096, True),
            TraceRecord(1.0, 4096, 4096, False),
        ]
        trace = Trace.from_records(records, data_capacity=1 * GB)
        assert len(trace) == 2
        back = list(trace)
        assert back[0].is_write and not back[1].is_write

    def test_empty_trace(self):
        trace = Trace([], [], [], [], data_capacity=100)
        assert len(trace) == 0
        assert trace.duration == 0.0


class TestStatistics:
    def test_total_bytes(self):
        assert make_trace().total_bytes() == 6 * 4096

    def test_written_vs_read_split(self):
        trace = make_trace()
        assert trace.written_bytes() == 4 * 4096
        assert trace.read_bytes() == 2 * 4096
        assert trace.written_bytes() + trace.read_bytes() == trace.total_bytes()

    def test_duration(self):
        assert make_trace().duration == 10.0

    def test_unique_written_bytes_coalesces_overwrites(self):
        trace = make_trace()
        # Writes at t in [0, 3): blocks 0, 1, 0 -> two unique blocks.
        assert trace.unique_written_bytes(0.0, 3.0) == 2 * 4096

    def test_unique_written_bytes_empty_window(self):
        trace = make_trace()
        assert trace.unique_written_bytes(3.0, 4.0) == 0.0
        assert trace.unique_written_bytes(5.0, 5.0) == 0.0

    def test_slice_rezeroes_timestamps(self):
        sub = make_trace().slice(2.0, 6.0)
        assert len(sub) == 3
        assert sub.timestamps[0] == 0.0

    def test_rate_per_interval_writes_only(self):
        trace = make_trace()
        rates = trace.rate_per_interval(1.0, writes_only=True)
        assert rates[0] == 4096.0  # one 4 KB write in [0, 1)
        assert rates[3] == 0.0
        assert rates[5] == 4096.0

    def test_rate_per_interval_requires_positive_interval(self):
        with pytest.raises(WorkloadError):
            make_trace().rate_per_interval(0.0)

    def test_write_blocks(self):
        blocks = make_trace().write_blocks()
        assert set(np.unique(blocks)) == {0, 1}
