"""Shared test fixtures.

The observability globals (current tracer / metrics registry) are
process state; resetting them around every test keeps cases that
install a tracer or registry from leaking spans or counts into their
neighbours.
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_observability():
    obs.reset()
    yield
    obs.reset()
