"""Trace CSV persistence."""

import pytest

from repro.exceptions import WorkloadError
from repro.units import GB, MB
from repro.workload import SyntheticWorkloadConfig, Trace, generate_trace


class TestCsvRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        config = SyntheticWorkloadConfig(
            data_capacity=256 * MB, duration=300.0,
            avg_access_rate=2 * MB, avg_update_rate=1 * MB,
        )
        original = generate_trace(config, seed=5)
        path = str(tmp_path / "trace.csv")
        original.save_csv(path)
        loaded = Trace.load_csv(path)
        assert len(loaded) == len(original)
        assert loaded.data_capacity == original.data_capacity
        assert loaded.block_size == original.block_size
        assert (loaded.offsets == original.offsets).all()
        assert (loaded.is_write == original.is_write).all()
        assert loaded.timestamps == pytest.approx(original.timestamps, abs=1e-5)

    def test_round_trip_statistics_match(self, tmp_path):
        config = SyntheticWorkloadConfig(
            data_capacity=256 * MB, duration=300.0,
            avg_access_rate=2 * MB, avg_update_rate=1 * MB,
        )
        original = generate_trace(config, seed=6)
        path = str(tmp_path / "trace.csv")
        original.save_csv(path)
        loaded = Trace.load_csv(path)
        assert loaded.written_bytes() == original.written_bytes()
        assert loaded.unique_written_bytes(0, 300) == original.unique_written_bytes(0, 300)

    def test_empty_trace_round_trip(self, tmp_path):
        empty = Trace([], [], [], [], data_capacity=1 * GB)
        path = str(tmp_path / "empty.csv")
        empty.save_csv(path)
        loaded = Trace.load_csv(path)
        assert len(loaded) == 0
        assert loaded.data_capacity == 1 * GB

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,offset,size,is_write\n0.0,0,1,1\n")
        with pytest.raises(WorkloadError):
            Trace.load_csv(str(path))

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# nonsense\ntimestamp,offset,size,is_write\n")
        with pytest.raises(WorkloadError):
            Trace.load_csv(str(path))

    def test_wrong_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# data_capacity=100 block_size=10\nwrong,cols\n")
        with pytest.raises(WorkloadError):
            Trace.load_csv(str(path))
