"""Recent data loss and recovery-source selection (sections 3.3.2-3.3.3)."""

import pytest

from repro import casestudy
from repro.core import StorageDesign, compute_data_loss, find_recovery_source
from repro.core.dataloss import level_range
from repro.core.demands import register_design_demands
from repro.devices import SpareConfig
from repro.devices.catalog import midrange_disk_array, oc3_links
from repro.exceptions import RecoveryError
from repro.scenarios import FailureScenario
from repro.scenarios.locations import PRIMARY_SITE, REMOTE_SITE
from repro.techniques import PrimaryCopy, SyncMirror
from repro.units import DAY, HOUR, MB, WEEK, YEAR
from repro.workload.presets import cello


@pytest.fixture
def baseline():
    design = casestudy.baseline_design()
    register_design_demands(design, cello())
    return design


class TestLevelRanges:
    def test_split_mirror_range(self, baseline):
        rng = level_range(baseline, baseline.level(1))
        assert rng.newest_age == pytest.approx(12 * HOUR)
        assert rng.oldest_age == pytest.approx(36 * HOUR)

    def test_backup_range(self, baseline):
        rng = level_range(baseline, baseline.level(2))
        # Newest: accW + holdW + propW = 168 + 1 + 48 = 217 h.
        assert rng.newest_age == pytest.approx(217 * HOUR)
        # Oldest: (retCnt-1) * cyclePer + holdW + propW = 3 wk + 49 h.
        assert rng.oldest_age == pytest.approx(3 * WEEK + 49 * HOUR)

    def test_vault_range(self, baseline):
        rng = level_range(baseline, baseline.level(3))
        # Newest: upstream (49 h) + vault lag (4 wk + 4 wk + 12 h + 24 h).
        assert rng.newest_age == pytest.approx(1429 * HOUR)
        # Oldest reaches back ~3 years.
        assert rng.oldest_age > 2.9 * YEAR

    def test_ranges_nest_with_depth(self, baseline):
        """Slower levels reach further back AND lag further behind."""
        r1 = level_range(baseline, baseline.level(1))
        r2 = level_range(baseline, baseline.level(2))
        r3 = level_range(baseline, baseline.level(3))
        assert r1.newest_age <= r2.newest_age <= r3.newest_age
        assert r1.oldest_age <= r2.oldest_age <= r3.oldest_age


class TestTable6DataLoss:
    def test_object_rollback_from_split_mirror(self, baseline):
        scenario = FailureScenario.object_corruption(1 * MB, "24 hr")
        result = compute_data_loss(baseline, scenario)
        assert result.source_name == "split mirror"
        assert result.data_loss == pytest.approx(12 * HOUR)

    def test_array_failure_from_backup(self, baseline):
        result = compute_data_loss(
            baseline, FailureScenario.array_failure("primary-array")
        )
        assert result.source_name == "backup"
        assert result.data_loss == pytest.approx(217 * HOUR)

    def test_site_failure_from_vault(self, baseline):
        result = compute_data_loss(
            baseline, FailureScenario.site_disaster(PRIMARY_SITE)
        )
        assert result.source_name == "remote vaulting"
        assert result.data_loss == pytest.approx(1429 * HOUR)


class TestEdgeCases:
    def test_target_beyond_all_retention_is_total_loss(self, baseline):
        # Ask for a version from ten years ago.
        scenario = FailureScenario.object_corruption(1 * MB, 10 * YEAR)
        result = compute_data_loss(baseline, scenario)
        assert result.total_loss
        assert result.data_loss == float("inf")
        with pytest.raises(RecoveryError):
            compute_data_loss(baseline, scenario, allow_total_loss=False)

    def test_old_target_skips_expired_levels(self, baseline):
        # Ten weeks back: the mirrors (2 d) and backups (4 wk) have
        # expired; only the vault still holds it.
        scenario = FailureScenario.object_corruption(1 * MB, 10 * WEEK)
        result = compute_data_loss(baseline, scenario)
        assert result.source_name == "remote vaulting"
        # In-range: loss is one vault RP spacing.
        assert result.data_loss == pytest.approx(4 * WEEK)

    def test_mid_range_target_uses_backup_spacing(self, baseline):
        # Two weeks back: mirrors expired, backup range covers it.
        scenario = FailureScenario.object_corruption(1 * MB, 2 * WEEK)
        result = compute_data_loss(baseline, scenario)
        assert result.source_name == "backup"
        assert result.data_loss == pytest.approx(1 * WEEK)

    def test_sync_mirror_zero_loss(self):
        """A surviving synchronous mirror recovers 'now' losslessly."""
        design = StorageDesign("sync", recovery_facility=SpareConfig.shared())
        design.add_level(PrimaryCopy(), store=midrange_disk_array())
        design.add_level(
            SyncMirror(),
            store=midrange_disk_array(name="remote", location=REMOTE_SITE),
            transport=oc3_links(10),
        )
        register_design_demands(design, cello())
        result = compute_data_loss(
            design, FailureScenario.array_failure("primary-array")
        )
        assert result.data_loss == 0.0

    def test_sync_mirror_cannot_roll_back(self):
        """A mirror holds only 'now': rollback targets are unreachable."""
        design = StorageDesign("sync", recovery_facility=SpareConfig.shared())
        design.add_level(PrimaryCopy(), store=midrange_disk_array())
        design.add_level(
            SyncMirror(),
            store=midrange_disk_array(name="remote", location=REMOTE_SITE),
            transport=oc3_links(10),
        )
        register_design_demands(design, cello())
        scenario = FailureScenario.object_corruption(1 * MB, "24 hr")
        result = compute_data_loss(design, scenario)
        assert result.total_loss

    def test_ranges_reported_for_survivors(self, baseline):
        result = find_recovery_source(
            baseline, FailureScenario.site_disaster(PRIMARY_SITE)
        )
        assert len(result.ranges) == 1  # only the vault survives
        assert result.ranges[0].technique_name == "remote vaulting"
