"""The cross-process telemetry fabric: capsules, ledger, progress, HTTP.

Covers the observability additions end to end:

* worker-side capture and parent-side merge (:mod:`repro.obs.context`),
  including the delta semantics of counters and the percentile
  preservation of histogram merges;
* byte-stability of the merged span *skeleton* between serial and
  parallel runs of the same sweep;
* the run ledger's artifact round-trips (:mod:`repro.obs.ledger`);
* the progress reporter's throttling, ETA and heartbeats
  (:mod:`repro.obs.progress`);
* the live HTTP endpoint (:mod:`repro.obs.http`).
"""

import io
import json
import pickle
import urllib.request

import pytest

from repro import casestudy, obs
from repro.design import DesignSpace, candidate_designs
from repro.engine import EngineConfig, map_evaluations, shutdown_pool, warm_pool
from repro.engine.sweep import evaluate_design_map
from repro.obs import (
    MetricsRegistry,
    ProgressReporter,
    RunLedger,
    TelemetryCapture,
    TelemetryServer,
    TraceContext,
    Tracer,
    merge_capsule,
    read_manifest,
    read_trace_jsonl,
    skeleton_digest,
    span_skeleton,
    use_metrics,
    use_tracer,
)
from repro.workload.presets import cello


@pytest.fixture(autouse=True)
def _no_leftover_pool():
    yield
    shutdown_pool()


def _capture_chunk(ctx, work):
    """Run ``work()`` under a fresh capture scope; return the capsule."""
    capture = TelemetryCapture(ctx)
    try:
        work()
    finally:
        capsule = capture.finish()
    return capsule


class TestCapsules:
    def test_capsule_round_trips_through_pickle(self):
        ctx = TraceContext(run_id="r1", trace=True, metrics=True)

        def work():
            with obs.get_tracer().span("w.task", task="t0"):
                obs.get_metrics().inc("w.calls")

        capsule = _capture_chunk(ctx, work)
        clone = pickle.loads(pickle.dumps(capsule))
        assert clone.run_id == "r1"
        assert [s.name for s in clone.spans] == ["w.task"]
        assert clone.metrics["counters"]["w.calls"] == 1.0

    def test_capture_restores_previous_instruments(self):
        before_tracer = obs.get_tracer()
        before_metrics = obs.get_metrics()
        ctx = TraceContext(run_id="r1", trace=True, metrics=True)
        capture = TelemetryCapture(ctx)
        assert obs.get_tracer() is not before_tracer
        capture.finish()
        assert obs.get_tracer() is before_tracer
        assert obs.get_metrics() is before_metrics

    def test_counter_deltas_from_workers_sum(self):
        """N capsules each reporting a delta of k land as N*k."""
        parent = MetricsRegistry()
        ctx = TraceContext(run_id="r1", metrics=True)
        for _ in range(3):
            capsule = _capture_chunk(
                ctx, lambda: obs.get_metrics().inc("engine.sub", 2)
            )
            merge_capsule(capsule, metrics=parent)
        snapshot = parent.snapshot()
        assert snapshot["counters"]["engine.sub"] == 6.0
        assert snapshot["counters"]["obs.capsules_merged"] == 3.0

    def test_histogram_merge_preserves_percentiles(self):
        """Merged worker histograms estimate the same p50/p90/p99 as a
        single registry observing every sample (shared bucket layout)."""
        samples = [0.001 * (i + 1) for i in range(300)]
        serial = MetricsRegistry()
        for value in samples:
            serial.observe("lat", value)

        parent = MetricsRegistry()
        ctx = TraceContext(run_id="r1", metrics=True)
        for shard in (samples[0::3], samples[1::3], samples[2::3]):
            capsule = _capture_chunk(
                ctx,
                lambda shard=shard: [
                    obs.get_metrics().observe("lat", v) for v in shard
                ],
            )
            merge_capsule(capsule, metrics=parent)

        one = serial.histogram("lat")
        merged = parent.histogram("lat")
        assert merged.count == one.count == 300
        for quantile in (0.50, 0.90, 0.99):
            assert merged.percentile(quantile) == one.percentile(quantile)

    def test_merge_tags_roots_with_worker_pid_and_rebases(self):
        tracer = Tracer(clock=lambda: 0.0)
        ctx = TraceContext(run_id="r1", trace=True, base=5.0)

        def work():
            with obs.get_tracer().span("w.task"):
                pass

        capsule = _capture_chunk(ctx, work)
        capsule = pickle.loads(pickle.dumps(capsule))  # as the parent sees it
        merge_capsule(capsule, tracer=tracer, metrics=MetricsRegistry())
        (root,) = tracer.roots
        assert root.attributes["pid"] == capsule.pid
        assert root.start >= 5.0

    def test_disabled_context_is_none(self):
        assert obs.current_context() is None
        with use_tracer(Tracer()):
            ctx = obs.current_context()
            assert ctx is not None and ctx.trace and not ctx.metrics


class _SweepFixture:
    """One small real sweep, runnable serially or on a pool."""

    def __init__(self):
        self.workload = cello()
        self.requirements = casestudy.case_study_requirements()
        self.scenarios = casestudy.case_study_scenarios()[:2]
        self.designs = dict(
            list(candidate_designs(DesignSpace()).items())[:6]
        )

    def run(self, workers):
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_metrics(registry):
            if workers > 1:
                warm_pool(workers)
            outcomes = evaluate_design_map(
                self.designs,
                self.workload,
                self.scenarios,
                self.requirements,
                config=EngineConfig(workers=workers),
            )
        return tracer, registry, outcomes


class TestSerialParallelParity:
    def test_span_skeleton_byte_stable_serial_vs_parallel(self):
        sweep = _SweepFixture()
        serial_tracer, serial_metrics, serial_out = sweep.run(1)
        parallel_tracer, parallel_metrics, parallel_out = sweep.run(3)

        assert skeleton_digest(serial_tracer) == skeleton_digest(parallel_tracer)
        # The digest is over the canonical JSON of the skeleton; spell
        # the contract out on the structures too.
        one = json.dumps(span_skeleton(serial_tracer), sort_keys=True)
        two = json.dumps(span_skeleton(parallel_tracer), sort_keys=True)
        assert one == two

    def test_worker_counters_match_serial_totals(self):
        sweep = _SweepFixture()
        _, serial_metrics, _ = sweep.run(1)
        _, parallel_metrics, _ = sweep.run(3)
        serial_counts = serial_metrics.snapshot()["counters"]
        parallel_counts = parallel_metrics.snapshot()["counters"]
        # Every model-side counter incremented in workers must merge
        # back to the serial totals (engine.* bookkeeping differs:
        # chunks, capsule counters).
        for name in ("evaluate.calls", "recovery.plans", "cost.computations"):
            assert parallel_counts[name] == serial_counts[name]
        assert parallel_counts["obs.capsules_merged"] >= 1.0
        assert parallel_counts["obs.worker_spans"] >= 1.0

    def test_parallel_trace_contains_worker_pids(self):
        import os

        sweep = _SweepFixture()
        tracer, _, _ = sweep.run(3)
        pids = {
            span.attributes["pid"]
            for span, _ in tracer.walk()
            if "pid" in span.attributes
        }
        assert pids and os.getpid() not in pids


class TestRunLedger:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_metrics(registry):
            with tracer.span("work"):
                registry.inc("calls")
        ledger = RunLedger(tmp_path / "run", argv=["evaluate", "spec.json"])
        ledger.begin(extra={"model_schema_version": "engine-v1:test"})
        ledger.heartbeat({"kind": "progress", "done": 1, "total": 2})
        manifest = ledger.finish(tracer, registry)

        loaded = read_manifest(tmp_path / "run")
        assert loaded == manifest
        assert loaded["status"] == "ok"
        assert loaded["argv"] == ["evaluate", "spec.json"]
        assert loaded["model_schema_version"] == "engine-v1:test"
        assert loaded["spans"] == 1
        assert loaded["heartbeats"] == 1

        records = read_trace_jsonl(ledger.path(RunLedger.SPANS))
        assert [r["name"] for r in records if r["kind"] == "span"] == ["work"]
        prom = (tmp_path / "run" / RunLedger.METRICS).read_text()
        assert "calls_total 1" in prom and prom.endswith("# EOF\n")
        beat = json.loads(
            (tmp_path / "run" / RunLedger.PROGRESS).read_text().strip()
        )
        assert beat["done"] == 1

    def test_finish_without_instruments_skips_artifacts(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        ledger.begin()
        manifest = ledger.finish(status="error")
        assert manifest["status"] == "error"
        assert manifest["spans"] == 0
        assert not (tmp_path / "run" / RunLedger.SPANS).exists()
        assert not (tmp_path / "run" / RunLedger.METRICS).exists()

    def test_crashed_run_manifest_says_running(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        ledger.begin()
        assert read_manifest(tmp_path / "run")["status"] == "running"


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestProgressReporter:
    def _reporter(self, stream=None, ledger=None, min_interval=0.25):
        clock = _FakeClock()
        reporter = ProgressReporter(
            stream=stream,
            ledger=ledger,
            min_interval=min_interval,
            clock=clock,
            wall=clock,
        )
        return reporter, clock

    def test_throttles_between_first_and_last(self):
        stream = io.StringIO()
        reporter, clock = self._reporter(stream=stream)
        reporter.begin(100, label="designs")
        for _ in range(50):
            clock.t += 0.001  # 50 advances in 50ms: all throttled
            reporter.advance(done=1)
        assert reporter.heartbeats == 1  # only the begin emission
        clock.t += 1.0
        reporter.advance(done=1)  # past min_interval: emitted
        reporter.finish()
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[designs] 0/100")
        assert any("51/100" in line for line in lines)

    def test_completion_always_emits(self):
        reporter, clock = self._reporter()
        reporter.begin(2)
        clock.t += 0.01
        reporter.advance(done=2)  # throttle window, but done == total
        assert reporter.latest["done"] == 2

    def test_eta_from_rolling_window(self):
        reporter, clock = self._reporter()
        reporter.begin(100)
        for _ in range(10):
            clock.t += 1.0
            reporter.advance(done=1)
        record = reporter.latest
        assert record["rate_per_s"] == pytest.approx(1.0)
        assert record["eta_s"] == pytest.approx(90.0)

    def test_heartbeats_reach_the_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        ledger.begin()
        reporter, clock = self._reporter(ledger=ledger)
        reporter.begin(2, label="evaluate")
        clock.t += 1.0
        reporter.advance(done=1, cached=1)
        reporter.finish()
        lines = (tmp_path / "run" / RunLedger.PROGRESS).read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["done"] for r in records] == [0, 1, 1]
        assert records[-1]["cached"] == 1
        assert all(r["label"] == "evaluate" for r in records)

    def test_null_progress_discards(self):
        null = obs.NULL_PROGRESS
        null.begin(10)
        null.advance(done=5)
        null.finish()
        assert null.latest is None

    def test_use_progress_installs_and_restores(self):
        reporter, _ = self._reporter()
        assert obs.get_progress() is obs.NULL_PROGRESS
        with obs.use_progress(reporter):
            assert obs.get_progress() is reporter
        assert obs.get_progress() is obs.NULL_PROGRESS


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


class TestTelemetryServer:
    def test_endpoints(self):
        registry = MetricsRegistry()
        registry.inc("engine.tasks", 4)
        reporter = ProgressReporter()
        reporter.begin(4, label="sweep")
        obs.set_run_id("test-run-1")
        with TelemetryServer(0, registry=registry, progress=reporter) as server:
            status, headers, body = _get(server.url + "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith(
                "application/openmetrics-text"
            )
            assert b"engine_tasks_total 4" in body
            assert body.endswith(b"# EOF\n")

            status, _, body = _get(server.url + "/healthz")
            payload = json.loads(body)
            assert status == 200
            assert payload == {"status": "ok", "run_id": "test-run-1"}

            status, _, body = _get(server.url + "/progress")
            progress = json.loads(body)
            assert status == 200
            assert progress["total"] == 4 and progress["label"] == "sweep"

    def test_unknown_path_404(self):
        with TelemetryServer(0, registry=MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_active_server_registration(self):
        assert obs.active_server() is None
        server = TelemetryServer(0, registry=MetricsRegistry())
        server.start()
        try:
            assert obs.active_server() is server
        finally:
            server.stop()
        assert obs.active_server() is None

    def test_serves_live_state_not_snapshot(self):
        registry = MetricsRegistry()
        with TelemetryServer(0, registry=registry) as server:
            _, _, before = _get(server.url + "/metrics")
            assert b"engine_tasks_total" not in before
            registry.inc("engine.tasks")
            _, _, after = _get(server.url + "/metrics")
            assert b"engine_tasks_total 1" in after


class TestFailureDiagnosis:
    def test_tasks_failed_counters_by_type(self):
        from repro.engine import EvaluationTask
        from repro.exceptions import ReproError

        def boom():
            raise ReproError("infeasible candidate")

        sweep = _SweepFixture()
        good_name, good_design = next(iter(sweep.designs.items()))
        tasks = [
            EvaluationTask(
                name="bad",
                workload=sweep.workload,
                scenarios=tuple(sweep.scenarios),
                requirements=sweep.requirements,
                factory=boom,
            ),
            EvaluationTask(
                name="good",
                workload=sweep.workload,
                scenarios=tuple(sweep.scenarios),
                requirements=sweep.requirements,
                factory=good_design,
            ),
        ]
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_metrics(registry):
            outcomes = map_evaluations(tasks)
        assert outcomes[0].error is not None and outcomes[1].ok
        counters = registry.snapshot()["counters"]
        assert counters["engine.tasks_failed"] == 1.0
        assert counters["engine.tasks_failed.ReproError"] == 1.0
        (map_span,) = tracer.roots
        assert map_span.attributes["failed"] == 1
        (record,) = map_span.attributes["failures"]
        assert record["task"] == "bad"
        assert record["error_type"] == "ReproError"
        assert "infeasible" in record["error"]
