"""Recovery options, workload headroom, and exposure profiles."""

import pytest

import repro
from repro import casestudy
from repro.core import recovery_options, time_optimal_option
from repro.core.demands import register_design_demands
from repro.design import max_supported_capacity, max_supported_scale
from repro.exceptions import DesignError, SimulationError
from repro.scenarios import FailureScenario
from repro.simulation import exposure_profile
from repro.units import HOUR, MB, WEEK
from repro.workload.presets import cello


@pytest.fixture(scope="module")
def workload():
    return cello()


@pytest.fixture
def baseline(workload):
    design = casestudy.baseline_design()
    register_design_demands(design, workload)
    return design


class TestRecoveryOptions:
    def test_object_rollback_has_three_options(self, baseline, workload):
        """A day-old object target can come from the mirror, the tape,
        or the vault — with strictly growing loss down the hierarchy."""
        scenario = FailureScenario.object_corruption(1 * MB, "24 hr")
        options = recovery_options(baseline, scenario, workload)
        names = [o.source_name for o in options]
        assert names == ["split mirror", "backup", "remote vaulting"]
        losses = [o.data_loss for o in options]
        assert losses == sorted(losses)

    def test_first_option_matches_paper_rule(self, baseline, workload):
        """The paper picks the closest level: options[0] must equal the
        evaluator's choice."""
        scenario = FailureScenario.array_failure("primary-array")
        options = recovery_options(baseline, scenario, workload)
        paper_choice = repro.core.compute_data_loss(baseline, scenario)
        assert options[0].source_name == paper_choice.source_name
        assert options[0].data_loss == pytest.approx(paper_choice.data_loss)

    def test_time_optimal_object_restore_is_the_mirror(self, baseline, workload):
        scenario = FailureScenario.object_corruption(1 * MB, "24 hr")
        best = time_optimal_option(baseline, scenario, workload)
        assert best.source_name == "split mirror"
        assert best.recovery_time < 1.0

    def test_vault_option_slower_but_available(self, baseline, workload):
        scenario = FailureScenario.array_failure("primary-array")
        options = {o.source_name: o for o in recovery_options(baseline, scenario, workload)}
        assert options["remote vaulting"].recovery_time > (
            options["backup"].recovery_time
        )

    def test_total_loss_gives_empty_options(self, baseline, workload):
        scenario = FailureScenario.object_corruption(1 * MB, "20 yr")
        assert recovery_options(baseline, scenario, workload) == []
        assert time_optimal_option(baseline, scenario, workload) is None


class TestHeadroom:
    def test_baseline_has_large_bandwidth_headroom(self, workload):
        """2.4% array / 3.4% library bandwidth: ~29x rate headroom
        (the tape library's backup stream binds first... actually the
        backup bandwidth is capacity-driven, so the foreground stream
        and resilvering bound the scale)."""
        design = casestudy.baseline_design()
        scale = max_supported_scale(design, workload)
        assert scale > 5.0
        assert scale != float("inf")

    def test_capacity_headroom_is_tight(self, workload):
        """87.3% array capacity leaves under 15% dataset growth."""
        design = casestudy.baseline_design()
        growth = max_supported_capacity(design, workload)
        assert 1.0 < growth < 1.2

    def test_infeasible_start_rejected(self, workload):
        design = casestudy.baseline_design()
        oversized = workload.with_capacity(workload.data_capacity * 3)
        with pytest.raises(DesignError):
            max_supported_capacity(design, oversized)

    def test_ledgers_restored_after_search(self, workload):
        design = casestudy.baseline_design()
        max_supported_scale(design, workload)
        array = design.primary_level.store
        assert array.capacity_demand_logical() == pytest.approx(
            6 * workload.data_capacity
        )


class TestExposureProfile:
    @pytest.fixture(scope="class")
    def profile(self, workload):
        start = 40 * WEEK
        return exposure_profile(
            casestudy.baseline_design,
            workload,
            FailureScenario.array_failure("primary-array"),
            level_index=2,          # tape backup out of service
            outage_start=start,
            outage_duration=2 * WEEK,
            horizon=320 * WEEK,
            probes=16,
        )

    def test_exposure_grows_during_outage(self, profile):
        assert profile.peak_extra_exposure >= 1 * WEEK

    def test_healthy_never_exceeds_degraded(self, profile):
        for point in profile.points:
            assert point.degraded_loss >= point.healthy_loss - 1e-6

    def test_exposure_recovers_after_service_restoration(self, profile):
        assert profile.recovery_probe() != float("inf")

    def test_probe_validation(self, workload):
        with pytest.raises(SimulationError):
            exposure_profile(
                casestudy.baseline_design, workload,
                FailureScenario.array_failure("primary-array"),
                level_index=2, outage_start=0, outage_duration=WEEK,
                horizon=320 * WEEK, probes=1,
            )
        with pytest.raises(SimulationError):
            exposure_profile(
                casestudy.baseline_design, workload,
                FailureScenario.array_failure("primary-array"),
                level_index=2, outage_start=0, outage_duration=0,
                horizon=320 * WEEK,
            )
