"""Failure-frequency weighting and expected annual cost."""

import pytest

from repro import casestudy
from repro.design import (
    FailureFrequencies,
    expected_annual_cost,
    optimize_expected,
)
from repro.exceptions import DesignError, OptimizationError
from repro.scenarios import BusinessRequirements
from repro.workload.presets import cello


@pytest.fixture(scope="module")
def workload():
    return cello()


@pytest.fixture(scope="module")
def requirements():
    return casestudy.case_study_requirements()


@pytest.fixture(scope="module")
def frequencies():
    return FailureFrequencies(
        [
            (casestudy.object_failure_scenario(), 5.0),
            (casestudy.array_failure_scenario(), 0.5),
            (casestudy.site_failure_scenario(), 0.01),
        ]
    )


class TestFailureFrequencies:
    def test_construction(self, frequencies):
        assert len(frequencies) == 3
        assert frequencies.rates_per_year == (5.0, 0.5, 0.01)

    def test_negative_rate_rejected(self):
        with pytest.raises(DesignError):
            FailureFrequencies([(casestudy.array_failure_scenario(), -1.0)])

    def test_empty_rejected(self):
        with pytest.raises(DesignError):
            FailureFrequencies([])


class TestExpectedCost:
    def test_decomposition(self, workload, frequencies, requirements):
        cost = expected_annual_cost(
            casestudy.baseline_design, workload, frequencies, requirements
        )
        assert cost.expected_annual_cost == pytest.approx(
            cost.annual_outlays + cost.expected_annual_penalties
        )
        assert len(cost.penalty_by_scenario) == 3
        assert cost.expected_annual_penalties == pytest.approx(
            sum(cost.penalty_by_scenario.values())
        )

    def test_weights_scale_penalties(self, workload, requirements):
        rare = FailureFrequencies([(casestudy.array_failure_scenario(), 0.1)])
        common = FailureFrequencies([(casestudy.array_failure_scenario(), 1.0)])
        rare_cost = expected_annual_cost(
            casestudy.baseline_design, workload, rare, requirements
        )
        common_cost = expected_annual_cost(
            casestudy.baseline_design, workload, common, requirements
        )
        assert common_cost.expected_annual_penalties == pytest.approx(
            10 * rare_cost.expected_annual_penalties
        )

    def test_zero_rate_neutralizes_total_loss(self, workload, requirements):
        """A design that cannot survive site failure is still finite in
        expectation when site failures are rated at zero frequency."""
        def no_vault():
            return casestudy._tape_design(
                "no-vault-variant",
                casestudy._baseline_split_mirror(),
                casestudy._baseline_backup(),
                casestudy._baseline_vaulting(),
            ).without_level(3)

        frequencies = FailureFrequencies(
            [
                (casestudy.array_failure_scenario(), 0.5),
                (casestudy.site_failure_scenario(), 0.0),
            ]
        )
        cost = expected_annual_cost(no_vault, workload, frequencies, requirements)
        assert cost.expected_annual_cost != float("inf")

    def test_infinite_when_unsurvivable_and_rated(self, workload, requirements):
        def no_vault():
            return casestudy.baseline_design().without_level(3)

        frequencies = FailureFrequencies(
            [(casestudy.site_failure_scenario(), 0.01)]
        )
        cost = expected_annual_cost(no_vault, workload, frequencies, requirements)
        assert cost.expected_annual_cost == float("inf")


class TestOptimizeExpected:
    def test_frequency_changes_the_winner(self, workload, requirements):
        """Frequencies reweight the trade: if failures are vanishingly
        rare, cheap outlays win; if arrays die monthly, protection pays."""
        candidates = {
            "baseline": casestudy.baseline_design,
            "asyncB-10link": lambda: casestudy.async_batch_mirror_design(10),
        }
        rare = FailureFrequencies([(casestudy.array_failure_scenario(), 0.01)])
        frequent = FailureFrequencies([(casestudy.array_failure_scenario(), 12.0)])
        rare_ranking = optimize_expected(candidates, workload, rare, requirements)
        frequent_ranking = optimize_expected(
            candidates, workload, frequent, requirements
        )
        assert rare_ranking[0].design_name == "baseline"
        assert frequent_ranking[0].design_name == "asyncB-10link"

    def test_ranking_sorted(self, workload, frequencies, requirements):
        ranking = optimize_expected(
            {
                "baseline": casestudy.baseline_design,
                "weekly vault": casestudy.weekly_vault_design,
                "asyncB-1link": lambda: casestudy.async_batch_mirror_design(1),
            },
            workload,
            frequencies,
            requirements,
        )
        values = [entry.expected_annual_cost for entry in ranking]
        assert values == sorted(values)

    def test_empty_candidates_raise(self, workload, frequencies, requirements):
        with pytest.raises(OptimizationError):
            optimize_expected({}, workload, frequencies, requirements)
