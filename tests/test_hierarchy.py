"""StorageDesign: construction, structure queries, failure mapping."""

import pytest

from repro.core import StorageDesign, validate_design
from repro.devices import SpareConfig
from repro.devices.catalog import (
    air_shipment,
    enterprise_tape_library,
    midrange_disk_array,
    offsite_vault,
    san_link,
)
from repro.exceptions import DesignError
from repro.scenarios import FailureScenario
from repro.scenarios.locations import PRIMARY_SITE, REMOTE_SITE
from repro.techniques import Backup, PrimaryCopy, RemoteVaulting, SplitMirror
from repro.units import HOUR, WEEK
from repro.workload.presets import cello
from repro import casestudy


@pytest.fixture
def baseline():
    return casestudy.baseline_design()


class TestConstruction:
    def test_level_zero_must_be_primary(self):
        design = StorageDesign("d")
        with pytest.raises(DesignError):
            design.add_level(SplitMirror("12 hr", 4), store=midrange_disk_array())

    def test_primary_only_at_level_zero(self):
        design = StorageDesign("d")
        array = midrange_disk_array()
        design.add_level(PrimaryCopy(), store=array)
        with pytest.raises(DesignError):
            design.add_level(PrimaryCopy(), store=array)

    def test_primary_has_no_transport(self):
        design = StorageDesign("d")
        with pytest.raises(DesignError):
            design.add_level(
                PrimaryCopy(), store=midrange_disk_array(), transport=san_link()
            )

    def test_co_located_technique_must_share_device(self):
        design = StorageDesign("d")
        design.add_level(PrimaryCopy(), store=midrange_disk_array())
        with pytest.raises(DesignError):
            design.add_level(
                SplitMirror("12 hr", 4), store=midrange_disk_array(name="other")
            )

    def test_transport_must_be_interconnect(self):
        design = StorageDesign("d")
        array = midrange_disk_array()
        design.add_level(PrimaryCopy(), store=array)
        with pytest.raises(DesignError):
            design.add_level(
                Backup("1 wk", "48 hr", "1 hr", 4),
                store=enterprise_tape_library(),
                transport=midrange_disk_array(name="not-a-link"),
            )

    def test_empty_design_has_no_primary(self):
        with pytest.raises(DesignError):
            StorageDesign("d").primary_level

    def test_unnamed_design_rejected(self):
        with pytest.raises(DesignError):
            StorageDesign("")


class TestStructure:
    def test_baseline_has_four_levels(self, baseline):
        assert len(baseline.levels) == 4
        assert baseline.primary_level.index == 0
        assert len(baseline.secondary_levels()) == 3

    def test_level_lookup(self, baseline):
        assert baseline.level(2).technique.name == "backup"
        with pytest.raises(DesignError):
            baseline.level(9)

    def test_devices_unique_in_order(self, baseline):
        names = [d.name for d in baseline.devices()]
        assert names == [
            "primary-array",
            "tape-library",
            "san",
            "vault",
            "air-shipment",
        ]

    def test_storage_devices_excludes_interconnects(self, baseline):
        names = [d.name for d in baseline.storage_devices()]
        assert names == ["primary-array", "tape-library", "vault"]

    def test_upstream_delay_sums_hold_plus_prop(self, baseline):
        # Level 3 (vault): upstream = mirror (0) + backup (1 + 48 h).
        assert baseline.upstream_delay(3) == pytest.approx(49 * HOUR)
        assert baseline.upstream_delay(1) == 0.0

    def test_render_hierarchy(self, baseline):
        art = baseline.render_hierarchy()
        assert "level 0" in art and "level 3" in art
        assert "recovery facility" in art


class TestFailureMapping:
    def test_object_failure_fails_nothing(self, baseline):
        scenario = FailureScenario.object_corruption("1 MB", "24 hr")
        assert baseline.failed_devices(scenario) == ()
        assert len(baseline.surviving_levels(scenario)) == 3

    def test_array_failure_fails_named_device(self, baseline):
        scenario = FailureScenario.array_failure("primary-array")
        failed = baseline.failed_devices(scenario)
        assert [d.name for d in failed] == ["primary-array"]
        survivors = [lvl.technique.name for lvl in baseline.surviving_levels(scenario)]
        assert survivors == ["backup", "remote vaulting"]

    def test_unknown_device_rejected(self, baseline):
        scenario = FailureScenario.array_failure("nonexistent")
        with pytest.raises(DesignError):
            baseline.failed_devices(scenario)

    def test_site_failure_spares_the_vault(self, baseline):
        scenario = FailureScenario.site_disaster(PRIMARY_SITE)
        failed = {d.name for d in baseline.failed_devices(scenario)}
        assert "primary-array" in failed and "tape-library" in failed
        assert "vault" not in failed
        survivors = [lvl.technique.name for lvl in baseline.surviving_levels(scenario)]
        assert survivors == ["remote vaulting"]

    def test_site_failure_defaults_to_primary_location(self, baseline):
        scenario = FailureScenario.site_disaster()  # no explicit location
        failed = {d.name for d in baseline.failed_devices(scenario)}
        assert "primary-array" in failed

    def test_region_failure_with_colocated_vault(self):
        """A vault in the same region dies with the region."""
        array = midrange_disk_array()
        vault = offsite_vault(location=PRIMARY_SITE)
        design = StorageDesign("regional", recovery_facility=SpareConfig.shared())
        design.add_level(PrimaryCopy(), store=array)
        design.add_level(
            Backup("1 wk", "48 hr", "1 hr", 4),
            store=enterprise_tape_library(),
            transport=san_link(),
        )
        design.add_level(
            RemoteVaulting("4 wk", "24 hr", 4 * WEEK, 39),
            store=vault,
            transport=air_shipment(),
        )
        scenario = FailureScenario.region_disaster(PRIMARY_SITE)
        failed = {d.name for d in design.failed_devices(scenario)}
        assert "vault" in failed
        assert design.surviving_levels(scenario) == ()


class TestValidateDesign:
    def test_baseline_is_valid(self, baseline):
        warnings = validate_design(baseline, cello())
        # The baseline's vault hold (4 wk + 12 h) slightly exceeds the
        # backup retention (4 wk): reported as a warning, not an error.
        assert all("error" not in w.lower() for w in warnings)

    def test_shrinking_retention_rejected(self):
        design = StorageDesign("bad")
        array = midrange_disk_array()
        design.add_level(PrimaryCopy(), store=array)
        design.add_level(SplitMirror("12 hr", 4), store=array)
        design.add_level(
            Backup("1 wk", "48 hr", "1 hr", retention_count=2),  # < 4
            store=enterprise_tape_library(),
            transport=san_link(),
        )
        with pytest.raises(DesignError):
            validate_design(design, cello())

    def test_shrinking_cycle_period_rejected(self):
        design = StorageDesign("bad")
        array = midrange_disk_array()
        design.add_level(PrimaryCopy(), store=array)
        design.add_level(SplitMirror("1 wk", 4), store=array)
        design.add_level(
            Backup("12 hr", "6 hr", "1 hr", retention_count=4),  # faster than PiT
            store=enterprise_tape_library(),
            transport=san_link(),
        )
        with pytest.raises(DesignError):
            validate_design(design, cello())

    def test_non_strict_returns_messages(self):
        design = StorageDesign("bad")
        array = midrange_disk_array()
        design.add_level(PrimaryCopy(), store=array)
        design.add_level(SplitMirror("1 wk", 4), store=array)
        design.add_level(
            Backup("12 hr", "6 hr", "1 hr", retention_count=1),
            store=enterprise_tape_library(),
            transport=san_link(),
        )
        messages = validate_design(design, cello(), strict=False)
        assert messages
