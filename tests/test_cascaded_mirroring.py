"""Cascaded mirroring: sync to a bunker site, async onward to a remote.

A classic metro/geo topology composed purely from existing pieces:
level 1 mirrors synchronously to a bunker array in another building,
and level 2 mirrors batched-asynchronously *from the bunker* to a
distant region.  Exercises mirror-from-mirror composition (the parent
of a mirror level being another mirror) across all three failure
granularities.
"""

import pytest

import repro
from repro.core.demands import register_design_demands
from repro.devices.catalog import midrange_disk_array, oc3_links
from repro.scenarios import FailureScenario, Location
from repro.units import HOUR, MINUTE
from repro.workload.presets import cello

MAIN = Location(region="r1", site="metro", building="hq")
BUNKER = Location(region="r1", site="metro", building="bunker")
REMOTE = Location(region="r2", site="dr")


@pytest.fixture
def cascaded_design():
    design = repro.StorageDesign(
        "cascaded", recovery_facility=repro.SpareConfig.shared("9 hr", 0.2)
    )
    design.add_level(
        repro.PrimaryCopy(),
        store=midrange_disk_array(
            location=MAIN, spare=repro.SpareConfig.dedicated("60 s", 1.0)
        ),
    )
    design.add_level(
        repro.SyncMirror(name="bunker mirror"),
        store=midrange_disk_array(
            name="bunker-array", location=BUNKER, spare=repro.SpareConfig.none()
        ),
        transport=oc3_links(10, name="metro-links", location=MAIN),
    )
    design.add_level(
        repro.BatchedAsyncMirror("5 min", name="geo mirror"),
        store=midrange_disk_array(
            name="remote-array", location=REMOTE, spare=repro.SpareConfig.none()
        ),
        transport=oc3_links(1, name="geo-link", location=BUNKER),
    )
    return design


@pytest.fixture
def workload():
    return cello()


@pytest.fixture
def requirements():
    return repro.BusinessRequirements.per_hour(50_000, 50_000)


class TestCascadedTopology:
    def test_geo_mirror_feeds_from_bunker(self, cascaded_design):
        assert cascaded_design.level(2).parent_index == 1

    def test_demands_land_on_bunker_and_links(self, cascaded_design, workload):
        register_design_demands(cascaded_design, workload)
        geo_link = cascaded_design.level(2).transport
        # The geo hop carries only the coalesced unique updates.
        assert geo_link.demands[0].bandwidth == pytest.approx(
            workload.unique_bytes(5 * MINUTE) / (5 * MINUTE)
        )
        metro_link = cascaded_design.level(1).transport
        # The sync hop must carry the raw burst peak.
        assert metro_link.demands[0].bandwidth == pytest.approx(
            workload.peak_update_rate
        )

    def test_array_failure_recovers_from_bunker_losslessly(
        self, cascaded_design, workload, requirements
    ):
        result = repro.evaluate(
            cascaded_design, workload,
            FailureScenario.array_failure("primary-array"), requirements,
        )
        assert result.data_loss.source_name == "bunker mirror"
        assert result.recent_data_loss == 0.0

    def test_building_failure_also_uses_bunker(
        self, cascaded_design, workload, requirements
    ):
        result = repro.evaluate(
            cascaded_design, workload,
            FailureScenario.building_disaster(MAIN), requirements,
        )
        assert result.data_loss.source_name == "bunker mirror"
        assert result.recent_data_loss == 0.0

    def test_site_disaster_falls_to_geo_mirror(
        self, cascaded_design, workload, requirements
    ):
        """The metro site (hq + bunker) is gone: the geo mirror serves,
        losing one batch window plus its propagation — minutes, with the
        bunker hop contributing no extra lag (sync adds none)."""
        result = repro.evaluate(
            cascaded_design, workload,
            FailureScenario.site_disaster(MAIN), requirements,
        )
        assert result.data_loss.source_name == "geo mirror"
        assert result.recent_data_loss == pytest.approx(10 * MINUTE)
        # Recovery streams back over the single geo link after the 9 h
        # facility provisioning: tens of hours.
        assert result.recovery_time > 9 * HOUR

    def test_region_disaster_is_survivable(self, cascaded_design, workload, requirements):
        result = repro.evaluate(
            cascaded_design, workload,
            FailureScenario.region_disaster(MAIN), requirements,
        )
        assert result.data_loss.source_name == "geo mirror"

    def test_dependability_ordering_across_scopes(
        self, cascaded_design, workload, requirements
    ):
        """Wider scopes cannot recover faster or lose less."""
        results = repro.evaluate_scenarios(
            cascaded_design, workload,
            [
                FailureScenario.array_failure("primary-array"),
                FailureScenario.building_disaster(MAIN),
                FailureScenario.site_disaster(MAIN),
            ],
            requirements,
        )
        times = [a.recovery_time for a in results.values()]
        losses = [a.recent_data_loss for a in results.values()]
        assert times == sorted(times)
        assert losses == sorted(losses)
