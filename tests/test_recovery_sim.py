"""Event-level recovery simulation under bandwidth contention."""

import pytest

from repro import casestudy
from repro.core.demands import register_design_demands
from repro.core.recovery import plan_recovery
from repro.exceptions import SimulationError
from repro.scenarios import FailureScenario
from repro.simulation import RecoverySimulator, TransferSpec
from repro.units import GB, HOUR, MB
from repro.workload.presets import cello


def make_spec(label="t", ready=0.0, size=100 * MB, rate=10 * MB, devices=("d",)):
    return TransferSpec(
        label=label, ready_at=ready, size=size, nominal_rate=rate,
        devices=devices,
    )


class TestProcessorSharing:
    def test_single_transfer_runs_at_nominal(self):
        sim = RecoverySimulator({"d": 100 * MB})
        result = sim.simulate([make_spec(rate=10 * MB)])[0]
        assert result.finish_time == pytest.approx(10.0)

    def test_device_limit_caps_rate(self):
        sim = RecoverySimulator({"d": 5 * MB})
        result = sim.simulate([make_spec(rate=10 * MB)])[0]
        assert result.finish_time == pytest.approx(20.0)

    def test_two_transfers_share_a_device(self):
        sim = RecoverySimulator({"d": 10 * MB})
        results = sim.simulate(
            [
                make_spec(label="a", rate=100 * MB),
                make_spec(label="b", rate=100 * MB),
            ]
        )
        # Equal shares: both finish at 2x the solo time.
        for result in results:
            assert result.finish_time == pytest.approx(20.0)

    def test_disjoint_devices_run_in_parallel(self):
        sim = RecoverySimulator({"d1": 10 * MB, "d2": 10 * MB})
        results = sim.simulate(
            [
                make_spec(label="a", devices=("d1",), rate=100 * MB),
                make_spec(label="b", devices=("d2",), rate=100 * MB),
            ]
        )
        for result in results:
            assert result.finish_time == pytest.approx(10.0)

    def test_departure_frees_bandwidth(self):
        sim = RecoverySimulator({"d": 10 * MB})
        results = {
            r.plan_label: r
            for r in sim.simulate(
                [
                    make_spec(label="short", size=50 * MB, rate=100 * MB),
                    make_spec(label="long", size=150 * MB, rate=100 * MB),
                ]
            )
        }
        # Shared until "short" finishes at t=10 (50 MB at 5 MB/s each);
        # "long" then has 100 MB left at the full 10 MB/s: t=20.
        assert results["short"].finish_time == pytest.approx(10.0)
        assert results["long"].finish_time == pytest.approx(20.0)

    def test_late_arrival_waits_for_ready(self):
        sim = RecoverySimulator({"d": 10 * MB})
        results = {
            r.plan_label: r
            for r in sim.simulate(
                [make_spec(label="late", ready=100.0, rate=100 * MB)]
            )
        }
        assert results["late"].transfer_records[0][1] == pytest.approx(100.0)

    def test_background_load_slows_recovery(self):
        busy = RecoverySimulator(
            {"d": 10 * MB}, background_demands={"d": 5 * MB},
            background_load=1.0,
        )
        idle = RecoverySimulator(
            {"d": 10 * MB}, background_demands={"d": 5 * MB},
            background_load=0.0,
        )
        spec = make_spec(rate=100 * MB)
        assert (
            busy.simulate([spec])[0].finish_time
            > idle.simulate([spec])[0].finish_time
        )

    def test_starved_transfer_raises(self):
        sim = RecoverySimulator(
            {"d": 5 * MB}, background_demands={"d": 5 * MB},
            background_load=1.0,
        )
        with pytest.raises(SimulationError):
            sim.simulate([make_spec()])

    def test_unknown_device_rejected(self):
        sim = RecoverySimulator({"d": 5 * MB})
        with pytest.raises(SimulationError):
            sim.simulate([make_spec(devices=("ghost",))])

    def test_no_transfers_rejected(self):
        with pytest.raises(SimulationError):
            RecoverySimulator({"d": 1.0}).simulate([])

    def test_bad_background_load_rejected(self):
        with pytest.raises(SimulationError):
            RecoverySimulator({"d": 1.0}, background_load=1.5)


class TestAgainstAnalyticPlan:
    """With background_load=1.0 and one recovery, the simulation must
    reproduce the analytic recovery time exactly."""

    @pytest.fixture
    def baseline_setup(self):
        workload = cello()
        design = casestudy.baseline_design()
        register_design_demands(design, workload)
        plan = plan_recovery(
            design, FailureScenario.array_failure("primary-array"), workload
        )
        devices = {d.name: d for d in design.devices()}
        # The tape library is only ever a *source* in this plan, so its
        # recovery read efficiency folds into its effective envelope.
        bandwidths = {
            name: dev.max_bandwidth * dev.recovery_read_efficiency
            for name, dev in devices.items()
            if dev.max_bandwidth != float("inf")
        }
        demands = {
            name: dev.bandwidth_demand() * dev.recovery_read_efficiency
            for name, dev in devices.items()
            if dev.max_bandwidth != float("inf")
        }
        return plan, bandwidths, demands

    def test_matches_analytic_recovery_time(self, baseline_setup):
        plan, bandwidths, demands = baseline_setup
        sim = RecoverySimulator(bandwidths, demands, background_load=1.0)
        transfers = RecoverySimulator.transfers_from_plan(
            plan, devices_per_transfer=[("tape-library", "primary-array")]
        )
        result = sim.simulate(transfers)[0]
        assert result.finish_time == pytest.approx(plan.recovery_time, rel=1e-6)

    def test_suspending_backup_speeds_recovery(self, baseline_setup):
        plan, bandwidths, demands = baseline_setup
        transfers = RecoverySimulator.transfers_from_plan(
            plan, devices_per_transfer=[("tape-library", "primary-array")]
        )
        busy = RecoverySimulator(bandwidths, demands, background_load=1.0)
        quiet = RecoverySimulator(bandwidths, demands, background_load=0.0)
        assert (
            quiet.simulate(transfers)[0].finish_time
            < busy.simulate(transfers)[0].finish_time
        )

    def test_concurrent_restores_slow_each_other(self, baseline_setup):
        plan, bandwidths, demands = baseline_setup
        sim = RecoverySimulator(bandwidths, demands, background_load=1.0)
        solo = sim.simulate(
            RecoverySimulator.transfers_from_plan(
                plan, [("tape-library", "primary-array")], label="solo"
            )
        )[0]
        pair = sim.simulate(
            RecoverySimulator.transfers_from_plan(
                plan, [("tape-library", "primary-array")], label="a"
            )
            + RecoverySimulator.transfers_from_plan(
                plan, [("tape-library", "primary-array")], label="b"
            )
        )
        for result in pair:
            assert result.finish_time > solo.finish_time

    def test_transfer_count_mismatch_rejected(self, baseline_setup):
        plan, _bandwidths, _demands = baseline_setup
        with pytest.raises(SimulationError):
            RecoverySimulator.transfers_from_plan(plan, [])
