"""The Workload dataclass: validation, derived quantities, transforms."""

import pytest

from repro.exceptions import WorkloadError
from repro.units import GB, HOUR, KB, MB
from repro.workload import BatchUpdateCurve, Workload
from repro.workload.presets import cello, oltp_database, web_server


@pytest.fixture
def simple_curve():
    return BatchUpdateCurve({"1 min": 100 * KB, "1 hr": 50 * KB})


def make_workload(curve, **overrides):
    params = dict(
        name="test",
        data_capacity=100 * GB,
        avg_access_rate=1 * MB,
        avg_update_rate=500 * KB,
        burst_multiplier=5.0,
        batch_curve=curve,
    )
    params.update(overrides)
    return Workload(**params)


class TestValidation:
    def test_valid_workload(self, simple_curve):
        w = make_workload(simple_curve)
        assert w.data_capacity == 100 * GB

    def test_string_parameters(self, simple_curve):
        w = make_workload(
            simple_curve,
            data_capacity="1360 GB",
            avg_access_rate="1028 KB/s",
            avg_update_rate="799 KB/s",
        )
        assert w.data_capacity == 1360 * GB
        assert w.avg_update_rate == 799 * KB

    def test_zero_capacity_rejected(self, simple_curve):
        with pytest.raises(WorkloadError):
            make_workload(simple_curve, data_capacity=0)

    def test_update_rate_above_access_rate_rejected(self, simple_curve):
        with pytest.raises(WorkloadError):
            make_workload(
                simple_curve, avg_access_rate=100 * KB, avg_update_rate=200 * KB
            )

    def test_burst_below_one_rejected(self, simple_curve):
        with pytest.raises(WorkloadError):
            make_workload(simple_curve, burst_multiplier=0.5)

    def test_bad_batch_curve_rejected(self):
        with pytest.raises(WorkloadError):
            make_workload("not a curve")

    def test_negative_rate_rejected(self, simple_curve):
        with pytest.raises(WorkloadError):
            make_workload(simple_curve, avg_access_rate=-1)


class TestDerivedQuantities:
    def test_peak_update_rate(self, simple_curve):
        w = make_workload(simple_curve)
        assert w.peak_update_rate == pytest.approx(5 * 500 * KB)

    def test_read_rate(self, simple_curve):
        w = make_workload(simple_curve)
        assert w.avg_read_rate == pytest.approx(1 * MB - 500 * KB)

    def test_batch_update_rate_delegates_to_curve(self, simple_curve):
        w = make_workload(simple_curve)
        assert w.batch_update_rate("1 hr") == pytest.approx(50 * KB)

    def test_unique_bytes_capped_by_capacity(self, simple_curve):
        w = make_workload(simple_curve, data_capacity=1 * MB)
        # An hour of 50 KB/s unique updates far exceeds 1 MB of data.
        assert w.unique_bytes("1 hr") == 1 * MB

    def test_update_fraction_in_unit_interval(self, simple_curve):
        w = make_workload(simple_curve)
        fraction = w.update_fraction("1 hr")
        assert 0 <= fraction <= 1

    def test_full_coverage_window_positive(self, simple_curve):
        w = make_workload(simple_curve)
        assert w.full_coverage_window() > 0

    def test_full_coverage_window_infinite_for_zero_updates(self):
        curve = BatchUpdateCurve({"1 hr": 0.0})
        w = make_workload(curve, avg_update_rate=0.0)
        assert w.full_coverage_window() == float("inf")


class TestTransforms:
    def test_with_capacity(self, simple_curve):
        w = make_workload(simple_curve).with_capacity("200 GB")
        assert w.data_capacity == 200 * GB
        assert w.avg_access_rate == 1 * MB

    def test_scaled(self, simple_curve):
        w = make_workload(simple_curve).scaled(2.0)
        assert w.avg_access_rate == pytest.approx(2 * MB)
        assert w.avg_update_rate == pytest.approx(1000 * KB)
        assert w.batch_update_rate("1 hr") == pytest.approx(100 * KB)

    def test_scaled_zero_rejected(self, simple_curve):
        with pytest.raises(WorkloadError):
            make_workload(simple_curve).scaled(0)

    def test_describe_mentions_name(self, simple_curve):
        assert "test" in make_workload(simple_curve).describe()


class TestCombined:
    def test_capacities_and_rates_add(self):
        a = cello()
        b = oltp_database()
        c = a.combined(b)
        assert c.data_capacity == a.data_capacity + b.data_capacity
        assert c.avg_access_rate == a.avg_access_rate + b.avg_access_rate
        assert c.avg_update_rate == a.avg_update_rate + b.avg_update_rate

    def test_unique_bytes_add(self):
        a = cello()
        b = oltp_database()
        c = a.combined(b)
        for window in ("1 min", "12 hr", "24 hr"):
            assert c.batch_curve.unique_bytes(window) == pytest.approx(
                a.batch_curve.unique_bytes(window)
                + b.batch_curve.unique_bytes(window)
            )

    def test_peak_rates_add_conservatively(self):
        a = cello()
        b = oltp_database()
        c = a.combined(b)
        assert c.peak_update_rate == pytest.approx(
            a.peak_update_rate + b.peak_update_rate
        )

    def test_combined_name(self):
        c = cello().combined(oltp_database(), name="consolidated")
        assert c.name == "consolidated"

    def test_combined_is_valid_curve(self):
        """The summed curve must satisfy both monotonicity invariants."""
        c = cello().combined(web_server())
        windows = c.batch_curve.sample_windows()
        rates = [c.batch_curve.rate(w) for w in windows]
        assert rates == sorted(rates, reverse=True)

    def test_combined_evaluates_end_to_end(self):
        import repro
        from repro import casestudy

        consolidated = cello().combined(oltp_database())
        result = repro.evaluate(
            casestudy.baseline_design(),
            consolidated,
            repro.FailureScenario.array_failure("primary-array"),
            casestudy.case_study_requirements(),
            strict_utilization=False,
        )
        assert result.recent_data_loss > 0


class TestPresets:
    def test_cello_matches_table2(self):
        w = cello()
        assert w.data_capacity == 1360 * GB
        assert w.avg_access_rate == 1028 * KB
        assert w.avg_update_rate == 799 * KB
        assert w.burst_multiplier == 10.0
        assert w.batch_update_rate("1 min") == pytest.approx(727 * KB)
        assert w.batch_update_rate("12 hr") == pytest.approx(350 * KB)
        assert w.batch_update_rate("24 hr") == pytest.approx(317 * KB)
        assert w.batch_update_rate("48 hr") == pytest.approx(317 * KB)
        assert w.batch_update_rate("1 wk") == pytest.approx(317 * KB)

    def test_cello_resilver_window_rate(self):
        # The split mirror resilver window (60 h) sits between the 48 h
        # and 1 wk samples, both 317 KB/s.
        assert cello().batch_update_rate(60 * HOUR) == pytest.approx(
            317 * KB, rel=0.01
        )

    def test_other_presets_are_valid(self):
        for preset in (oltp_database(), web_server()):
            assert preset.data_capacity > 0
            assert preset.avg_update_rate <= preset.avg_access_rate
            assert preset.burst_multiplier >= 1
