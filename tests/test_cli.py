"""The command-line interface."""

import json

import pytest

from repro.cli import main


class TestCaseStudyCommand:
    def test_prints_all_tables(self, capsys):
        assert main(["case-study"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "Table 6" in out
        assert "Figure 5" in out
        assert "Table 7" in out
        assert "87.3%" in out
        assert "asyncB mirror, 1 link" in out


class TestListDesigns:
    def test_lists_seven(self, capsys):
        assert main(["list-designs"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 7


class TestOptimizeCommand:
    def test_unconstrained_picks_single_link(self, capsys):
        assert main(["optimize"]) == 0
        out = capsys.readouterr().out
        assert "best: asyncB-1link" in out
        assert "Ranking" in out

    def test_objectives_change_the_winner(self, capsys):
        assert main(["optimize", "--rto", "12 hr", "--rpo", "10 hr"]) == 0
        out = capsys.readouterr().out
        assert "best: asyncB-10link" in out

    def test_impossible_objectives_exit_one(self, capsys):
        assert main(["optimize", "--rto", "1 s", "--rpo", "1 s"]) == 1
        assert "no feasible" in capsys.readouterr().out

    def test_spec_file_inputs(self, tmp_path, capsys):
        import json as json_module

        path = tmp_path / "opt.json"
        path.write_text(
            json_module.dumps(
                {
                    "workload": "cello",
                    "scenarios": ["array"],
                    "requirements": {
                        "unavailability_per_hour": 50000,
                        "loss_per_hour": 50000,
                    },
                }
            )
        )
        assert main(["optimize", str(path)]) == 0


class TestEvaluateCommand:
    def write_spec(self, tmp_path, spec):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_named_design_spec(self, tmp_path, capsys):
        path = self.write_spec(
            tmp_path,
            {
                "workload": "cello",
                "design": "baseline",
                "scenarios": ["object", "array", "site"],
                "requirements": {
                    "unavailability_per_hour": 50000,
                    "loss_per_hour": 50000,
                },
            },
        )
        assert main(["evaluate", path]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "recovery time" in out

    def test_objective_violation_exit_code(self, tmp_path, capsys):
        path = self.write_spec(
            tmp_path,
            {
                "design": "baseline",
                "scenarios": ["array"],
                "requirements": {
                    "unavailability_per_hour": 50000,
                    "loss_per_hour": 50000,
                    "rpo": "1 hr",
                },
            },
        )
        assert main(["evaluate", path]) == 1
        assert "WARNING" in capsys.readouterr().out

    def test_custom_design_spec(self, tmp_path, capsys):
        path = self.write_spec(
            tmp_path,
            {
                "workload": "oltp",
                "design": {
                    "name": "mirror-only",
                    "recovery_facility": {
                        "type": "shared",
                        "provisioning_time": "9 hr",
                        "discount": 0.2,
                    },
                    "levels": [
                        {
                            "technique": {"kind": "primary"},
                            "store": {"catalog": "midrange_disk_array"},
                        },
                        {
                            "technique": {"kind": "batched_async_mirror"},
                            "store": {
                                "catalog": "midrange_disk_array",
                                "name": "mirror-array",
                                "location": {"region": "r2", "site": "dr"},
                            },
                            "transport": {"catalog": "oc3_links",
                                          "link_count": 4},
                        },
                    ],
                },
                "scenarios": ["array"],
            },
        )
        assert main(["evaluate", path]) == 0
        assert "mirror-only" in capsys.readouterr().out

    def test_bad_spec_reports_error(self, tmp_path, capsys):
        path = self.write_spec(tmp_path, {"design": "no-such-design"})
        assert main(["evaluate", path]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["evaluate", "/nonexistent/spec.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_case_study_trace_and_metrics(self, capsys):
        assert main(["case-study", "--trace", "--metrics"]) == 0
        out = capsys.readouterr().out
        # The per-phase span tree ...
        assert "Trace (per-phase timings)" in out
        assert "evaluate_scenarios" in out
        assert "recovery.plan" in out
        # ... the metrics table ...
        assert "Metrics" in out
        assert "evaluate.calls" in out
        assert "recovery.plan_ms" in out
        # ... and a provenance explanation of all four output metrics.
        assert "Provenance" in out
        for fragment in ("utilization =", "recovery time =", "data loss =", "cost ="):
            assert fragment in out

    def test_evaluate_trace_out_writes_jsonl(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"design": "baseline", "scenarios": ["array"]}))
        trace_path = tmp_path / "trace.jsonl"
        assert main(["evaluate", str(spec), "--trace-out", str(trace_path)]) == 0
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line
        ]
        kinds = {record["kind"] for record in records}
        assert "span" in kinds and "counter" in kinds
        assert any(
            r["kind"] == "span" and r["name"] == "evaluate_scenarios"
            for r in records
        )

    def test_optimize_metrics(self, capsys):
        assert main(["optimize", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "optimizer.candidates" in out

    def test_flags_leave_the_global_obs_state_clean(self, capsys):
        from repro import obs

        assert main(["case-study", "--trace"]) == 0
        assert obs.get_tracer().enabled is False
        assert obs.get_metrics().enabled is False

    def test_without_flags_no_obs_output(self, capsys):
        assert main(["case-study"]) == 0
        out = capsys.readouterr().out
        assert "Trace (per-phase timings)" not in out
        assert "Provenance" not in out

    def test_evaluate_profile_prints_span_profile(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"design": "baseline", "scenarios": ["array"]}))
        assert main(["evaluate", str(spec), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Span profile" in out
        # Call counts, cumulative and self time per span name ...
        assert "calls" in out and "cum ms" in out and "self ms" in out
        assert "evaluate" in out and "recovery.plan" in out
        # ... and the flamegraph-style merged call-path section.
        assert "Hot call paths" in out

    def test_case_study_profile(self, capsys):
        assert main(["case-study", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Span profile" in out
        assert "evaluate_scenarios" in out

    def test_optimize_profile(self, capsys):
        assert main(["optimize", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Span profile" in out
        assert "optimize" in out

    def test_profile_without_trace_skips_span_tree(self, capsys):
        assert main(["case-study", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Span profile" in out
        assert "Trace (per-phase timings)" not in out


class TestEngineFlags:
    def test_optimize_parallel_output_matches_serial(self, capsys):
        code = main(["optimize"])
        serial = capsys.readouterr().out
        assert main(["optimize", "--workers", "2"]) == code
        assert capsys.readouterr().out == serial

    def test_optimize_cache_dir_second_run_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["optimize", "--cache-dir", cache_dir])
        first = capsys.readouterr().out
        main(["optimize", "--cache-dir", cache_dir])
        second = capsys.readouterr().out
        assert first == second
        assert (tmp_path / "cache" / "results.jsonl").exists()

    def test_optimize_cache_hits_reported_in_metrics(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["optimize", "--cache-dir", cache_dir])
        capsys.readouterr()
        main(["optimize", "--cache-dir", cache_dir, "--metrics"])
        out = capsys.readouterr().out
        assert "engine.cache.hits" in out

    def test_evaluate_with_cache_dir(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "workload": "cello",
            "design": "baseline",
            "scenarios": ["object", "array", "site"],
        }))
        cache_dir = str(tmp_path / "cache")
        main(["evaluate", str(spec), "--cache-dir", cache_dir])
        first = capsys.readouterr().out
        main(["evaluate", str(spec), "--cache-dir", cache_dir])
        assert capsys.readouterr().out == first

    def test_case_study_workers_output_identical(self, capsys):
        assert main(["case-study", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert main(["case-study"]) == 0
        assert capsys.readouterr().out == parallel


class TestTelemetryFlags:
    def test_run_dir_writes_complete_ledger(self, tmp_path, capsys):
        run_dir = tmp_path / "out"
        assert main(["optimize", "--run-dir", str(run_dir)]) == 0
        err = capsys.readouterr().err
        assert f"run ledger written to {run_dir}" in err

        from repro.obs import RunLedger, read_manifest

        manifest = read_manifest(run_dir)
        assert manifest["status"] == "ok"
        assert manifest["command"] == "optimize"
        assert manifest["argv"] == ["optimize", "--run-dir", str(run_dir)]
        assert manifest["model_schema_version"].startswith("engine-v")
        assert manifest["spans"] > 0
        assert manifest["heartbeats"] > 0
        assert (run_dir / RunLedger.SPANS).exists()
        prom = (run_dir / RunLedger.METRICS).read_text()
        assert prom.endswith("# EOF\n")
        assert (run_dir / RunLedger.PROGRESS).read_text().strip()

    def test_parallel_run_dir_records_worker_spans(self, tmp_path):
        import os

        run_dir = tmp_path / "out"
        assert main(["optimize", "--workers", "2", "--run-dir", str(run_dir)]) == 0
        records = [
            json.loads(line)
            for line in (run_dir / "spans.jsonl").read_text().splitlines()
            if line
        ]
        pids = {
            r["attributes"]["pid"]
            for r in records
            if r["kind"] == "span" and "pid" in r.get("attributes", {})
        }
        assert pids and os.getpid() not in pids

    def test_serve_metrics_announces_port_and_stops(self, capsys):
        from repro import obs

        assert main(["optimize", "--serve-metrics", "0"]) == 0
        err = capsys.readouterr().err
        assert "serving telemetry on http://127.0.0.1:" in err
        assert obs.active_server() is None

    def test_progress_goes_to_stderr(self, capsys):
        assert main(["optimize", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[optimize]" in captured.err
        assert "[optimize]" not in captured.out

    def test_stdout_pure_under_full_telemetry(self, tmp_path, capsys):
        """A parallel run with every telemetry feature on emits exactly
        the stdout of a plain run — the satellite stdout-purity gate."""
        assert main(["optimize"]) == 0
        plain = capsys.readouterr().out
        run_dir = tmp_path / "out"
        assert (
            main(
                [
                    "optimize",
                    "--workers",
                    "2",
                    "--progress",
                    "--run-dir",
                    str(run_dir),
                    "--serve-metrics",
                    "0",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert captured.out == plain
        assert "serving telemetry" in captured.err
        assert "[optimize]" in captured.err

    def test_telemetry_flags_leave_globals_clean(self, tmp_path, capsys):
        from repro import obs

        run_dir = tmp_path / "out"
        assert main(["optimize", "--run-dir", str(run_dir), "--progress"]) == 0
        assert obs.get_tracer().enabled is False
        assert obs.get_metrics().enabled is False
        assert obs.get_progress().enabled is False


class TestRiskCommand:
    @staticmethod
    def write_spec(tmp_path, ensemble=None, **extra):
        if ensemble is None:
            ensemble = {
                "name": "cli-risk",
                "members": [
                    {"id": "arr", "scenario": "array", "rate": "0.5/yr"}
                ],
            }
        spec = {"workload": "cello", "design": "baseline", **extra}
        if ensemble:
            spec["ensemble"] = ensemble
        path = tmp_path / "risk.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_human_report(self, tmp_path, capsys):
        assert main(["risk", self.write_spec(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ensemble 'cli-risk' on design 'baseline'" in out
        assert "Annualized risk" in out
        assert "p99" in out

    def test_json_format_is_canonical_and_deterministic(
        self, tmp_path, capsys
    ):
        spec = self.write_spec(tmp_path)
        args = ["risk", spec, "--samples", "50", "--seed", "7",
                "--format", "json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        data = json.loads(first)
        assert data["kind"] == "risk_assessment"
        assert data["monte_carlo"]["samples"] == 50
        assert data["per_member"][0]["member_id"] == "arr"

    def test_workers_flag_never_changes_the_json(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        assert main(["risk", spec, "--format", "json"]) == 0
        serial = capsys.readouterr().out
        assert main(
            ["risk", spec, "--format", "json", "--workers", "2"]
        ) == 0
        assert capsys.readouterr().out == serial

    def test_years_flag_scales_the_horizon(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        assert main(["risk", spec, "--years", "3"]) == 0
        assert "over 3 yr" in capsys.readouterr().out

    def test_monte_carlo_section_appears_with_samples(
        self, tmp_path, capsys
    ):
        assert main(
            ["risk", self.write_spec(tmp_path), "--samples", "50"]
        ) == 0
        assert "Monte Carlo cross-check" in capsys.readouterr().out

    def test_spec_without_ensemble_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "plain.json"
        path.write_text(json.dumps({"design": "baseline"}))
        assert main(["risk", str(path)]) == 2
        assert "no 'ensemble' section" in capsys.readouterr().err

    def test_example_spec_runs(self, capsys):
        assert main(["risk", "examples/specs/risk_ensemble.json"]) == 0
        out = capsys.readouterr().out
        assert "1005 members, 67 distinct scenarios" in out
