"""Unit constants, quantity parsing and humanized formatting."""

import math

import pytest

from repro.exceptions import UnitError
from repro.units import (
    DAY,
    GB,
    HOUR,
    KB,
    MB,
    MBIT,
    MINUTE,
    TB,
    WEEK,
    YEAR,
    format_duration,
    format_event_rate,
    format_money,
    format_percent,
    format_rate,
    format_size,
    parse_duration,
    parse_event_rate,
    parse_rate,
    parse_size,
)


class TestConstants:
    def test_binary_size_ladder(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB

    def test_duration_ladder(self):
        assert MINUTE == 60
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY
        assert YEAR == 365 * DAY

    def test_megabit_is_decimal(self):
        # Telecom rates are decimal: an OC-3 is 155 * 10**6 / 8 bytes/s.
        assert MBIT == 1e6 / 8


class TestParseSize:
    def test_plain_number_is_bytes(self):
        assert parse_size(1234) == 1234.0
        assert parse_size(12.5) == 12.5

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1360 GB", 1360 * GB),
            ("1 MB", MB),
            ("400GB", 400 * GB),
            ("73 gb", 73 * GB),
            ("2 TB", 2 * TB),
            ("512", 512.0),
            ("8 KiB", 8 * KB),
        ],
    )
    def test_strings(self, text, expected):
        assert parse_size(text) == expected

    def test_scientific_notation(self):
        assert parse_size("1e3 MB") == 1000 * MB

    def test_unknown_unit_raises(self):
        with pytest.raises(UnitError):
            parse_size("10 parsecs")

    def test_garbage_raises(self):
        with pytest.raises(UnitError):
            parse_size("not a size")


class TestParseRate:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("799 KB/s", 799 * KB),
            ("25 MB/s", 25 * MB),
            ("155 Mbps", 155 * MBIT),
            ("155 Mbit", 155 * MBIT),
            ("60MB/s", 60 * MB),
        ],
    )
    def test_strings(self, text, expected):
        assert parse_rate(text) == pytest.approx(expected)

    def test_plain_number_is_bytes_per_second(self):
        assert parse_rate(1000) == 1000.0

    def test_oc3_conversion(self):
        # 155 Mbit/s is 19.375 decimal MB/s.
        assert parse_rate("155 Mbps") == pytest.approx(19.375e6)

    def test_unknown_unit_raises(self):
        with pytest.raises(UnitError):
            parse_rate("10 furlongs/s")


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("12 hr", 12 * HOUR),
            ("48h", 48 * HOUR),
            ("1 wk", WEEK),
            ("4 wks", 4 * WEEK),
            ("1 min", MINUTE),
            ("24 hours", 24 * HOUR),
            ("3 years", 3 * YEAR),
            ("0.01 hr", 36.0),
            ("90", 90.0),
        ],
    )
    def test_strings(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    def test_plain_number_is_seconds(self):
        assert parse_duration(3600) == 3600.0

    def test_unknown_unit_raises(self):
        with pytest.raises(UnitError):
            parse_duration("10 fortnights")


class TestFormatting:
    def test_format_size_picks_prefix(self):
        assert format_size(1360 * GB) == "1.3 TB"
        assert format_size(8 * MB) == "8.0 MB"
        assert format_size(10) == "10 B"

    def test_format_rate(self):
        assert format_rate(12.4 * MB) == "12.4 MB/s"
        assert format_rate(727 * KB) == "727.0 KB/s"

    def test_format_duration_paper_styles(self):
        # The styles the paper's tables use.
        assert format_duration(0.004) == "0.004 s"
        assert format_duration(217 * HOUR) == "217.0 hr"
        assert format_duration(2.4 * HOUR) == "2.4 hr"
        assert format_duration(90 * MINUTE) == "90.0 min"
        assert format_duration(26.4 * HOUR) == "26.4 hr"
        assert format_duration(0) == "0 s"

    def test_format_duration_negative_magnitude(self):
        assert format_duration(-30) == "-30.0 s"

    def test_format_money(self):
        assert format_money(11_940_000) == "$11.94M"
        assert format_money(970_000) == "$970.00K"
        assert format_money(50.5) == "$50.50"

    def test_format_percent(self):
        assert format_percent(0.874) == "87.4%"
        assert format_percent(0.024) == "2.4%"

    def test_round_trip_size(self):
        # format -> parse returns the same order of magnitude.
        value = 6.6 * TB
        assert parse_size(format_size(value)) == pytest.approx(value, rel=0.05)

    def test_formats_are_finite_strings(self):
        for formatter, value in [
            (format_size, 123.0),
            (format_rate, 123.0),
            (format_duration, 123.0),
            (format_money, 123.0),
        ]:
            text = formatter(value)
            assert isinstance(text, str) and text
            assert not math.isnan(value)


class TestParsingEdgeCases:
    """Corners of the quantity grammar: signs, whitespace, GB-vs-GiB."""

    def test_negative_quantities(self):
        # Negative offsets are legal quantities (the *semantic* layers
        # reject them where they make no sense, with better messages).
        assert parse_duration("-30 min") == -30 * MINUTE
        assert parse_size("-1 GB") == -GB
        assert parse_rate("-8 KB/s") == -8 * KB
        assert parse_duration(-45.0) == -45.0

    def test_explicit_positive_sign(self):
        assert parse_duration("+12 hr") == 12 * HOUR
        assert parse_size("+2 MB") == 2 * MB

    @pytest.mark.parametrize(
        "text",
        ["48 h", "48h", " 48 h ", "48  h", "\t48 h\n", "48 H"],
    )
    def test_whitespace_and_case_variants_agree(self, text):
        assert parse_duration(text) == 48 * HOUR

    def test_gb_and_gib_both_mean_binary(self):
        # The paper's tables use binary prefixes under decimal-looking
        # names (DESIGN.md section 2); the parser follows suit, so the
        # IEC spellings are exact synonyms rather than a 7.4% trap.
        assert parse_size("1 GiB") == parse_size("1 GB") == 2**30
        assert parse_size("1 MiB") == parse_size("1 MB") == 2**20
        assert parse_size("1 KiB") == parse_size("1 KB") == 2**10
        assert parse_size("1 TiB") == parse_size("1 TB") == 2**40

    def test_sign_only_or_empty_raises(self):
        for text in ("", "-", "+", "GB", "- 1 GB"):
            with pytest.raises(UnitError):
                parse_size(text)

    @pytest.mark.parametrize(
        "value",
        [1360 * GB, 400 * GB, 8.5 * MB, 727 * KB, 512.0, 6.6 * TB],
    )
    def test_size_parse_format_parse_round_trip(self, value):
        # parse(format(x)) is stable: a second round trip through the
        # humanizer reproduces the first result exactly.
        once = parse_size(format_size(value))
        assert once == pytest.approx(value, rel=0.05)
        assert parse_size(format_size(once)) == pytest.approx(once, rel=0.05)

    @pytest.mark.parametrize("value", [799 * KB, 12.4 * MB, 1.0 * GB])
    def test_rate_parse_format_parse_round_trip(self, value):
        once = parse_rate(format_rate(value))
        assert once == pytest.approx(value, rel=0.05)

    @pytest.mark.parametrize(
        "value",
        [42.0, 90 * MINUTE, 2.4 * HOUR, 217 * HOUR, 12 * DAY],
    )
    def test_duration_parse_format_parse_round_trip(self, value):
        once = parse_duration(format_duration(value))
        assert once == pytest.approx(value, rel=0.05)


class TestEventRates:
    """Occurrence rates: the paper's events-per-year idiom."""

    def test_per_year_string(self):
        assert parse_event_rate("0.5/yr") == pytest.approx(0.5 / YEAR)
        assert parse_event_rate("2/year") == pytest.approx(2.0 / YEAR)

    def test_other_durations(self):
        assert parse_event_rate("1/wk") == pytest.approx(1.0 / WEEK)
        assert parse_event_rate("1e-9/s") == pytest.approx(1e-9)

    def test_bare_numbers_are_per_second(self):
        assert parse_event_rate(3.5) == 3.5
        assert parse_event_rate("42") == 42.0

    def test_non_rate_units_rejected(self):
        with pytest.raises(UnitError, match="per-duration"):
            parse_event_rate("2 GB")
        with pytest.raises(UnitError, match="unknown event rate unit"):
            parse_event_rate("2/parsec")

    def test_format_round_trip(self):
        for rate in (0.5 / YEAR, 12.0 / YEAR, 2.0 / WEEK):
            # 3 significant figures: "2/wk" renders as "104/yr".
            assert parse_event_rate(format_event_rate(rate)) == pytest.approx(
                rate, rel=5e-3
            )
        assert format_event_rate(0.5 / YEAR) == "0.5/yr"
