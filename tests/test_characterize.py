"""Trace characterization: measuring a trace back into Table 2 parameters."""

import pytest

from repro.exceptions import WorkloadError
from repro.units import GB, MB, MINUTE
from repro.workload import (
    SyntheticWorkloadConfig,
    Trace,
    characterize_trace,
    generate_trace,
)
from repro.workload.characterize import (
    measure_batch_update_rate,
    measure_burstiness,
)


@pytest.fixture(scope="module")
def config():
    return SyntheticWorkloadConfig(
        data_capacity=1 * GB,
        duration=3600.0,
        avg_access_rate=4 * MB,
        avg_update_rate=2 * MB,
        burst_multiplier=5.0,
        burst_period=120.0,
        hot_fraction=0.05,
        hot_weight=0.9,
    )


@pytest.fixture(scope="module")
def trace(config):
    return generate_trace(config, seed=11)


class TestMeasurements:
    def test_batch_rate_declines_with_window(self, trace):
        """The cello-shaped signature: coalescing lowers the unique rate."""
        short = measure_batch_update_rate(trace, "1 min")
        long = measure_batch_update_rate(trace, "30 min")
        assert long < short

    def test_batch_rate_window_longer_than_trace_rejected(self, trace):
        with pytest.raises(WorkloadError):
            measure_batch_update_rate(trace, "2 hr")

    def test_burstiness_at_least_one(self, trace):
        assert measure_burstiness(trace) >= 1.0

    def test_burstiness_read_only_trace_is_one(self):
        read_only = Trace(
            timestamps=[0.0, 1.0, 2.0],
            offsets=[0, 0, 0],
            sizes=[4096] * 3,
            is_write=[False] * 3,
            data_capacity=1 * GB,
        )
        assert measure_burstiness(read_only) == 1.0


class TestCharacterize:
    def test_round_trip_rates(self, config, trace):
        workload = characterize_trace(
            trace, windows=["1 min", "10 min", "30 min"], name="measured"
        )
        assert workload.avg_access_rate == pytest.approx(
            config.avg_access_rate, rel=0.15
        )
        assert workload.avg_update_rate == pytest.approx(
            config.avg_update_rate, rel=0.15
        )

    def test_round_trip_burstiness_direction(self, config, trace):
        workload = characterize_trace(trace, windows=["1 min"])
        # The measured peak/mean should reflect the bursty generator.
        assert workload.burst_multiplier > 1.5

    def test_batch_curve_is_monotone(self, trace):
        workload = characterize_trace(trace, windows=["1 min", "5 min", "20 min"])
        r1 = workload.batch_update_rate("1 min")
        r2 = workload.batch_update_rate("5 min")
        r3 = workload.batch_update_rate("20 min")
        assert r1 >= r2 >= r3

    def test_burst_override(self, trace):
        workload = characterize_trace(
            trace, windows=["1 min"], burst_multiplier=10.0
        )
        assert workload.burst_multiplier == 10.0

    def test_empty_trace_rejected(self):
        empty = Trace([], [], [], [], data_capacity=1 * GB)
        with pytest.raises(WorkloadError):
            characterize_trace(empty, windows=["1 min"])

    def test_no_windows_rejected(self, trace):
        with pytest.raises(WorkloadError):
            characterize_trace(trace, windows=[])

    def test_capacity_carried_over(self, config, trace):
        workload = characterize_trace(trace, windows=["1 min"])
        assert workload.data_capacity == config.data_capacity
