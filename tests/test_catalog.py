"""Device catalog presets against the paper's Table 4."""

import pytest

from repro.devices import (
    air_shipment,
    enterprise_tape_library,
    midrange_disk_array,
    oc3_links,
    offsite_vault,
    san_link,
)
from repro.devices.spares import SpareType
from repro.units import GB, HOUR, MB


class TestDiskArrayPreset:
    def test_envelopes(self):
        array = midrange_disk_array()
        assert array.max_capacity == 256 * 73 * GB
        assert array.max_bandwidth == 512 * MB
        assert array.raid_capacity_factor == 2.0

    def test_cost_coefficients(self):
        array = midrange_disk_array()
        assert array.cost_model.fixed == 123_297.0
        assert array.cost_model.capacity_cost(1 * GB) == pytest.approx(17.2)

    def test_dedicated_hot_spare(self):
        array = midrange_disk_array()
        assert array.spare.spare_type is SpareType.DEDICATED
        assert array.spare.provisioning_time == pytest.approx(0.02 * HOUR)
        assert array.spare.discount == 1.0


class TestTapeLibraryPreset:
    def test_envelopes(self):
        lib = enterprise_tape_library()
        assert lib.max_capacity == 500 * 400 * GB
        assert lib.max_bandwidth == 240 * MB
        assert lib.access_delay == pytest.approx(0.01 * HOUR)

    def test_cost_coefficients(self):
        lib = enterprise_tape_library()
        assert lib.cost_model.fixed == 98_895.0
        assert lib.cost_model.capacity_cost(1 * GB) == pytest.approx(0.4)
        assert lib.cost_model.bandwidth_cost(1 * MB) == pytest.approx(108.6)


class TestVaultPreset:
    def test_envelope_and_costs(self):
        vault = offsite_vault()
        assert vault.max_capacity == 5000 * 400 * GB
        assert vault.cost_model.fixed == 25_000.0
        assert not vault.spare.exists

    def test_remote_location(self):
        vault = offsite_vault()
        array = midrange_disk_array()
        assert not vault.location.same_region(array.location)


class TestInterconnectPresets:
    def test_air_shipment(self):
        courier = air_shipment()
        assert courier.access_delay == 24 * HOUR
        assert courier.cost_model.per_shipment == 50.0

    def test_oc3_bandwidth(self):
        one = oc3_links(1)
        ten = oc3_links(10)
        assert one.max_bandwidth == pytest.approx(155e6 / 8)
        assert ten.max_bandwidth == pytest.approx(10 * 155e6 / 8)

    def test_oc3_cost_scales_with_links(self):
        one = oc3_links(1)
        ten = oc3_links(10)
        one.register_demand("mirror", bandwidth=1 * MB)
        ten.register_demand("mirror", bandwidth=1 * MB)
        assert ten.outlays_by_technique()["mirror"] == pytest.approx(
            10 * one.outlays_by_technique()["mirror"]
        )

    def test_oc3_annual_price_matches_table7(self):
        # Table 7: cost model b * 23535 with b in MB/s; one OC-3 carries
        # 155 Mbit/s = 18.48 binary MB/s -> ~$435k/yr.
        link = oc3_links(1)
        link.register_demand("mirror", bandwidth=1)
        cost = link.outlays_by_technique()["mirror"]
        assert cost == pytest.approx(23_535 * (155e6 / 8) / MB, rel=1e-6)

    def test_san_is_fast_and_free(self):
        san = san_link()
        assert san.max_bandwidth >= 1024 * MB
        san.register_demand("backup", bandwidth=8 * MB)
        assert san.outlays_by_technique()["backup"] == 0.0
