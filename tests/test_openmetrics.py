"""The OpenMetrics/Prometheus text-exposition exporter.

No ``prometheus_client`` in this repo, so conformance is checked two
ways: a golden-file comparison against a hand-audited exposition, and
a small grammar validator covering the slice of the Prometheus text
format the exporter emits (``# TYPE`` lines, ``name{labels} value``
samples, cumulative ``le`` buckets, the ``# EOF`` terminator).
"""

import io
import math
import pathlib
import re

import pytest

from repro.obs.export import openmetrics_text, write_openmetrics
from repro.obs.metrics import MetricsRegistry

GOLDEN = pathlib.Path(__file__).parent / "data" / "openmetrics_golden.txt"

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|[+-]Inf|NaN)$"
)
_TYPE = re.compile(r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<type>counter|gauge|histogram)$")
_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')


def golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("evaluate.calls", 3)
    registry.inc("lint.diagnostics.warning")
    registry.set_gauge("utilization.max_capacity", 0.75)
    registry.set_gauge("utilization.max_bandwidth", 1.0)
    for value in (0.8, 1.2, 15.0, 15.0, 250.0):
        registry.observe("recovery.plan_ms", value)
    registry.observe("weird-name.with dots!", 2.5e9)  # sanitized + overflow
    return registry


def parse_exposition(text: str):
    """Validate the exposition line by line; return {metric: type} and
    the parsed samples [(name, labels-dict, value-string)]."""
    lines = text.splitlines()
    assert lines and lines[-1] == "# EOF", "exposition must end with # EOF"
    assert text.endswith("\n"), "exposition must end with a newline"
    types = {}
    samples = []
    for line in lines[:-1]:
        type_match = _TYPE.match(line)
        if type_match:
            assert type_match["name"] not in types, "duplicate # TYPE"
            types[type_match["name"]] = type_match["type"]
            continue
        sample = _SAMPLE.match(line)
        assert sample, f"unparseable sample line: {line!r}"
        labels = {}
        if sample["labels"]:
            for pair in sample["labels"].split(","):
                assert _LABEL.match(pair), f"bad label: {pair!r}"
                key, value = pair.split("=", 1)
                labels[key] = value.strip('"')
        samples.append((sample["name"], labels, sample["value"]))
    return types, samples


class TestGoldenFile:
    def test_matches_committed_golden(self):
        assert openmetrics_text(golden_registry()) == GOLDEN.read_text()

    def test_golden_parses_under_the_text_format(self):
        types, samples = parse_exposition(GOLDEN.read_text())
        assert types["evaluate_calls"] == "counter"
        assert types["utilization_max_capacity"] == "gauge"
        assert types["recovery_plan_ms"] == "histogram"
        names = {name for name, _labels, _value in samples}
        # Counter samples carry the _total suffix; histograms expose
        # _bucket/_sum/_count under their # TYPE name.
        assert "evaluate_calls_total" in names
        assert {"recovery_plan_ms_sum", "recovery_plan_ms_count"} <= names


class TestExpositionGrammar:
    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        _types, samples = parse_exposition(openmetrics_text(golden_registry()))
        buckets = [
            (labels["le"], float(value))
            for name, labels, value in samples
            if name == "recovery_plan_ms_bucket"
        ]
        assert buckets[-1][0] == "+Inf"
        counts = [count for _le, count in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts[-1] == 5.0
        bounds = [float(le) for le, _count in buckets[:-1]]
        assert bounds == sorted(bounds), "le bounds must ascend"

    def test_name_sanitization(self):
        registry = MetricsRegistry()
        registry.inc("9starts.with-digit")
        types, samples = parse_exposition(openmetrics_text(registry))
        assert types == {"_9starts_with_digit": "counter"}
        assert samples[0][0] == "_9starts_with_digit_total"

    def test_special_float_values(self):
        registry = MetricsRegistry()
        registry.set_gauge("g.nan", float("nan"))
        registry.set_gauge("g.inf", float("inf"))
        registry.set_gauge("g.neg", float("-inf"))
        _types, samples = parse_exposition(openmetrics_text(registry))
        by_name = {name: value for name, _labels, value in samples}
        assert by_name["g_nan"] == "NaN"
        assert by_name["g_inf"] == "+Inf"
        assert by_name["g_neg"] == "-Inf"

    def test_empty_registry_is_just_eof(self):
        assert openmetrics_text(MetricsRegistry()) == "# EOF\n"

    def test_histogram_sum_matches_observations(self):
        registry = golden_registry()
        _types, samples = parse_exposition(openmetrics_text(registry))
        by_name = {name: value for name, _labels, value in samples}
        assert float(by_name["recovery_plan_ms_sum"]) == pytest.approx(282.0)
        assert math.isclose(
            float(by_name["recovery_plan_ms_count"]), 5.0
        )


class TestWriteOpenmetrics:
    def test_to_path_and_file_object(self, tmp_path):
        registry = golden_registry()
        path = str(tmp_path / "metrics.txt")
        count = write_openmetrics(path, registry)
        text = pathlib.Path(path).read_text()
        assert len(text) == count
        buffer = io.StringIO()
        assert write_openmetrics(buffer, registry) == count
        assert buffer.getvalue() == text


class TestCliMetricsOut:
    def test_evaluate_writes_exposition(self, tmp_path):
        from repro.cli import main

        spec = pathlib.Path(__file__).parent.parent / "examples" / "specs"
        spec_file = next(spec.glob("*.json"))
        out = tmp_path / "metrics.prom"
        # Exit 1 means "objectives violated", a legitimate verdict.
        assert main(
            ["evaluate", str(spec_file), "--metrics-out", str(out)]
        ) in (0, 1)
        types, samples = parse_exposition(out.read_text())
        assert types.get("evaluate_calls") == "counter"
        assert any(name == "evaluate_calls_total" for name, _l, _v in samples)
