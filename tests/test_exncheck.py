"""The exception-flow analyzer: seeded bug corpus, rules, CLI, pickling.

The corpus below plants known error-contract violations — unpicklable
exceptions raised in worker-reachable code, broad handlers that absorb
a ReproError, public-API functions leaking non-ReproError framework
exceptions, provably dead handlers, chain-destroying re-raises — and
asserts every one is detected: the acceptance bar is zero false
negatives over the corpus and zero findings on the shipped tree.

The pickle round-trip suite at the bottom is the runtime counterpart
of EXN001: every concrete :class:`~repro.exceptions.ReproError`
subclass must survive ``pickle.dumps``/``loads`` with its attributes
intact, because engine workers ship these across process boundaries.
"""

import json
import pickle

import pytest

from repro.exceptions import ReproError
from repro.lint.diagnostics import Severity
from repro.lint.output import diagnostics_from_sarif, render_sarif
from repro.lint.exncheck import (
    ALLOW_EXN_PRAGMA,
    EXN_RULES,
    analyze_sources,
    lint_paths,
    lint_source,
    main,
)
from repro.obs import MetricsRegistry, use_metrics

#: Every corpus file opens with the framework's error-contract shape:
#: a ReproError root and a small hierarchy beneath it, mirroring
#: ``repro.exceptions`` (the analyzer resolves the hierarchy from the
#: class definitions it sees, so ``except DeviceError`` absorbs
#: ``CapacityExceededError`` exactly as it does in the shipped tree).
PREAMBLE = (
    "import json\n"
    "from concurrent.futures import ProcessPoolExecutor\n"
    "\n"
    "class ReproError(Exception):\n    pass\n"
    "class DeviceError(ReproError):\n    pass\n"
    "class CapacityExceededError(DeviceError):\n    pass\n"
    "\n"
)

#: The standard worker boundary the EXN001 entries hang off.
SUBMIT = (
    "\n"
    "def sweep(pool, items):\n"
    "    return [pool.submit(task, i) for i in items]\n"
)


def codes(findings):
    return [f.code for f in findings]


def check(body, submit=True):
    source = PREAMBLE + body + (SUBMIT if submit else "")
    return lint_source(source, "corpus.py")


#: The seeded-bug corpus: every entry is an error-contract bug the
#: analyzer must report (zero false negatives), with the rule it must
#: fire.  ≥ 12 planted violations spanning every EXN content rule.
CORPUS = [
    # unpicklable exceptions in worker-reachable code (EXN001)
    (
        "two_arg_exception_raised_in_task",
        "class QuotaError(ReproError):\n"
        "    def __init__(self, need, have):\n"
        "        super().__init__(f'{need} > {have}')\n"
        "        self.need = need\n"
        "        self.have = have\n"
        "def task(x):\n"
        "    raise QuotaError(x, 0)\n",
        "EXN001",
    ),
    (
        "unpicklable_via_transitive_callee",
        "class PairError(ReproError):\n"
        "    def __init__(self, left, right):\n"
        "        super().__init__(left)\n"
        "        self.left = left\n"
        "        self.right = right\n"
        "def guard(x):\n"
        "    raise PairError(x, x)\n"
        "def task(x):\n"
        "    return guard(x)\n",
        "EXN001",
    ),
    (
        "required_kwonly_breaks_reduce",
        "class KwError(ReproError):\n"
        "    def __init__(self, code, *, detail):\n"
        "        super().__init__(code)\n"
        "        self.detail = detail\n"
        "def task(x):\n"
        "    raise KwError(x, detail='bad')\n",
        "EXN001",
    ),
    # broad handlers absorbing a model outcome (EXN002)
    (
        "broad_except_absorbs_repro_error",
        "def parse(raw):\n"
        "    raise DeviceError('bad spec')\n"
        "def load(raw):\n"
        "    try:\n"
        "        return parse(raw)\n"
        "    except Exception:\n"
        "        return None\n",
        "EXN002",
    ),
    (
        "bare_except_absorbs_subclass",
        "def audit(device):\n"
        "    raise CapacityExceededError('over')\n"
        "def run(device):\n"
        "    try:\n"
        "        audit(device)\n"
        "    except:\n"
        "        pass\n",
        "EXN002",
    ),
    (
        "base_exception_absorbs_root",
        "def step(item):\n"
        "    if item:\n"
        "        raise ReproError('model outcome')\n"
        "def sweep_all(items):\n"
        "    try:\n"
        "        for item in items:\n"
        "            step(item)\n"
        "    except BaseException:\n"
        "        return []\n",
        "EXN002",
    ),
    (
        "broad_handler_logs_message_not_object",
        # The validate.py shape this rule caught in the shipped tree:
        # the handler renders the message into an f-string but drops
        # the exception object, so the outcome cannot be re-examined.
        "def probe(level):\n"
        "    raise DeviceError('no device')\n"
        "def collect(levels):\n"
        "    errors = []\n"
        "    for level in levels:\n"
        "        try:\n"
        "            probe(level)\n"
        "        except Exception as exc:\n"
        "            errors.append(f'level {level}: {exc}')\n"
        "    return errors\n",
        "EXN002",
    ),
    # public API leaking non-ReproError framework exceptions (EXN003)
    (
        "cli_entry_point_leaks_framework_error",
        "class EngineFault(Exception):\n"
        "    pass\n"
        "def fail():\n"
        "    raise EngineFault('broken')\n"
        "def cmd_run(args):\n"
        "    return fail()\n"
        "def wire(sub):\n"
        "    sub.set_defaults(func=cmd_run)\n",
        "EXN003",
    ),
    (
        "cli_entry_point_leaks_transitively",
        "class StateFault(Exception):\n"
        "    pass\n"
        "def deep():\n"
        "    raise StateFault('inconsistent')\n"
        "def shallow():\n"
        "    return deep()\n"
        "def cmd_audit(args):\n"
        "    return shallow()\n"
        "def wire(sub):\n"
        "    sub.set_defaults(func=cmd_audit)\n",
        "EXN003",
    ),
    # provably dead handlers (EXN004)
    (
        "handler_for_subclass_body_raises_parent",
        # except CapacityExceededError cannot catch its own *parent*
        # DeviceError, and nothing else escapes: the handler is dead.
        "def compute():\n"
        "    raise DeviceError('wrong layer')\n"
        "def fetch():\n"
        "    try:\n"
        "        return compute()\n"
        "    except CapacityExceededError:\n"
        "        return None\n",
        "EXN004",
    ),
    (
        "handler_over_body_that_cannot_raise",
        "def read(payload):\n"
        "    try:\n"
        "        value = payload\n"
        "        return value\n"
        "    except DeviceError:\n"
        "        return None\n",
        "EXN004",
    ),
    # chain-destroying re-raises (EXN005)
    (
        "reraise_without_from_drops_cause",
        "def decode(raw):\n"
        "    try:\n"
        "        return json.loads(raw)\n"
        "    except ValueError:\n"
        "        raise DeviceError('bad payload')\n",
        "EXN005",
    ),
    (
        "translate_builtin_without_from",
        "def parse_level(text):\n"
        "    try:\n"
        "        return int(text)\n"
        "    except ValueError:\n"
        "        raise RuntimeError('bad level')\n",
        "EXN005",
    ),
]


class TestCorpus:
    @pytest.mark.parametrize(
        "body,expected", [(b, c) for _, b, c in CORPUS],
        ids=[name for name, _, _ in CORPUS],
    )
    def test_every_planted_bug_is_detected(self, body, expected):
        findings = check(body)
        assert expected in codes(findings), codes(findings)

    def test_corpus_spans_every_content_rule(self):
        planted = {expected for _, _, expected in CORPUS}
        assert planted == {"EXN001", "EXN002", "EXN003", "EXN004", "EXN005"}
        assert len(CORPUS) >= 12

    def test_rule_table_is_complete(self):
        assert set(EXN_RULES) == {
            "EXN001",
            "EXN002",
            "EXN003",
            "EXN004",
            "EXN005",
            "EXN006",
            "EXN099",
        }
        assert EXN_RULES["EXN002"].severity is Severity.ERROR
        assert EXN_RULES["EXN004"].severity is Severity.WARNING
        assert EXN_RULES["EXN005"].severity is Severity.WARNING


class TestCleanConstructs:
    @pytest.mark.parametrize(
        "body",
        [
            # Catching the hierarchy's parent absorbs the subclass:
            # a narrow, contract-honouring handler is not a finding.
            "def audit(device):\n"
            "    raise CapacityExceededError('over')\n"
            "def run(device):\n"
            "    try:\n"
            "        return audit(device)\n"
            "    except DeviceError:\n"
            "        return None\n",
            # A broad handler that re-raises preserves the outcome.
            "def parse(raw):\n"
            "    raise DeviceError('bad')\n"
            "def load(raw):\n"
            "    try:\n"
            "        return parse(raw)\n"
            "    except Exception:\n"
            "        raise\n",
            # A broad handler that transports the exception object
            # (not just its message) records the outcome.
            "def parse(raw):\n"
            "    raise DeviceError('bad')\n"
            "def load(raw, sink):\n"
            "    try:\n"
            "        return parse(raw)\n"
            "    except Exception as exc:\n"
            "        sink(exc)\n"
            "        return None\n",
            # Translation that chains the cause is the sanctioned shape.
            "def decode(raw):\n"
            "    try:\n"
            "        return json.loads(raw)\n"
            "    except ValueError as exc:\n"
            "        raise DeviceError('bad payload') from exc\n",
            # ... and `from None` is an explicit, deliberate break.
            "def decode(raw):\n"
            "    try:\n"
            "        return json.loads(raw)\n"
            "    except ValueError:\n"
            "        raise DeviceError('bad payload') from None\n",
            # The handler's type genuinely escapes the body: live.
            "def decode(raw):\n"
            "    try:\n"
            "        return json.loads(raw)\n"
            "    except ValueError as exc:\n"
            "        return repr(exc)\n",
            # An unresolvable call keeps the body open, so no handler
            # over it is *provably* dead.
            "def fetch(helper):\n"
            "    try:\n"
            "        return helper.mystery()\n"
            "    except DeviceError:\n"
            "        return None\n",
            # A single-message exception round-trips via self.args.
            "class FineError(ReproError):\n"
            "    def __init__(self, message):\n"
            "        super().__init__(message)\n"
            "def task(x):\n"
            "    raise FineError(x)\n",
            # Multi-arg constructors are fine once __reduce__ replays
            # the real constructor arguments (the shipped
            # CapacityExceededError pattern).
            "class WideError(ReproError):\n"
            "    def __init__(self, name, value):\n"
            "        super().__init__(f'{name}={value}')\n"
            "        self.name = name\n"
            "        self.value = value\n"
            "    def __reduce__(self):\n"
            "        return (type(self), (self.name, self.value))\n"
            "def task(x):\n"
            "    raise WideError('cap', x)\n",
            # Public surface leaking a ReproError subclass is the
            # documented contract, not a leak.
            "def cmd_run(args):\n"
            "    raise DeviceError('bad spec')\n"
            "def wire(sub):\n"
            "    sub.set_defaults(func=cmd_run)\n",
            # Builtin escapes are outside EXN003's remit (codelint and
            # the stub tables police those); only project-defined
            # non-ReproError classes are contract leaks.
            "def cmd_run(args):\n"
            "    raise ValueError('bad flag')\n"
            "def wire(sub):\n"
            "    sub.set_defaults(func=cmd_run)\n",
        ],
    )
    def test_clean_constructs(self, body):
        assert check(body) == [], codes(check(body))

    def test_unpicklable_exception_outside_worker_reach_is_clean(self):
        # EXN001 is about the process boundary: a two-arg exception
        # raised only in parent-side code never needs to pickle.
        body = (
            "class LocalError(ReproError):\n"
            "    def __init__(self, a, b):\n"
            "        super().__init__(a)\n"
            "        self.b = b\n"
            "def parent_only(x):\n"
            "    raise LocalError(x, x)\n"
            "def task(x):\n"
            "    return x\n"
        )
        assert check(body) == [], codes(check(body))


class TestInterprocedural:
    def test_cross_module_escape_sets(self):
        # The fixpoint spans files: b.parse raises, a.load absorbs.
        lib = (
            "class ReproError(Exception):\n    pass\n"
            "class DeviceError(ReproError):\n    pass\n"
            "def parse(raw):\n"
            "    raise DeviceError('bad')\n"
        )
        app = (
            "from b import parse\n"
            "def load(raw):\n"
            "    try:\n"
            "        return parse(raw)\n"
            "    except Exception:\n"
            "        return None\n"
        )
        findings = analyze_sources([("proj/b.py", lib), ("proj/a.py", app)])
        assert codes(findings) == ["EXN002"]
        assert findings[0].file == "proj/a.py"

    def test_package_reexport_is_a_public_root(self):
        pkg = "from .engine import run_sweep\n"
        engine = (
            "class EngineFault(Exception):\n    pass\n"
            "def run_sweep(spec):\n"
            "    raise EngineFault('broken')\n"
        )
        findings = analyze_sources(
            [("proj/__init__.py", pkg), ("proj/engine.py", engine)]
        )
        assert "EXN003" in codes(findings)
        leak = next(f for f in findings if f.code == "EXN003")
        assert "re-exported" in leak.message
        assert "EngineFault" in leak.message

    def test_finding_names_the_absorbed_types(self):
        findings = check(
            "def parse(raw):\n"
            "    raise CapacityExceededError('over')\n"
            "def load(raw):\n"
            "    try:\n"
            "        return parse(raw)\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert any(
            f.code == "EXN002" and "CapacityExceededError" in f.message
            for f in findings
        )


class TestPragmas:
    def test_pragma_suppresses_the_handler(self):
        body = (
            "def parse(raw):\n"
            "    raise DeviceError('bad')\n"
            "def load(raw):\n"
            "    try:\n"
            "        return parse(raw)\n"
            f"    except Exception:  # {ALLOW_EXN_PRAGMA}\n"
            "        return None\n"
        )
        assert check(body) == [], codes(check(body))

    def test_stale_pragma_is_flagged_exn099(self):
        body = f"def load(raw):\n    return raw  # {ALLOW_EXN_PRAGMA}\n"
        findings = check(body)
        assert codes(findings) == ["EXN099"]
        assert findings[0].severity is Severity.WARNING
        assert "stale" in findings[0].message

    def test_pragma_budget_exn006(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text(
            "class ReproError(Exception):\n    pass\n"
            "def parse(raw):\n"
            "    raise ReproError('bad')\n"
            "def load(raw):\n"
            "    try:\n"
            "        return parse(raw)\n"
            f"    except Exception:  # {ALLOW_EXN_PRAGMA}\n"
            "        return None\n"
        )
        assert lint_paths([str(path)], max_pragmas=1) == []
        over = lint_paths([str(path)], max_pragmas=0)
        assert codes(over) == ["EXN006"]
        assert "budget" in over[0].message


class TestTreeAndCli:
    def test_shipped_tree_is_clean(self):
        # The acceptance criterion: src/repro passes strict with zero
        # findings (and, today, zero pragmas in use).
        assert lint_paths(["src/repro"]) == []

    def test_examples_and_benchmarks_are_clean(self):
        assert lint_paths(["examples", "benchmarks"]) == []

    def test_analyzer_is_allowlisted(self):
        assert lint_source("x = 4\n", "src/repro/lint/exncheck.py") == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def load(raw):\n    return raw\n")
        assert main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "class ReproError(Exception):\n    pass\n"
            "def parse(raw):\n"
            "    raise ReproError('bad')\n"
            "def load(raw):\n"
            "    try:\n"
            "        return parse(raw)\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert main([str(dirty)]) == 1
        assert "EXN002" in capsys.readouterr().out

    def test_cli_strict_promotes_warnings(self, tmp_path, capsys):
        stale = tmp_path / "stale.py"
        stale.write_text(f"x = 1  # {ALLOW_EXN_PRAGMA}\n")
        assert main([str(stale)]) == 0
        capsys.readouterr()
        assert main([str(stale), "--strict"]) == 1
        capsys.readouterr()

    def test_module_and_cli_subcommand_agree(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "class ReproError(Exception):\n    pass\n"
            "def parse(raw):\n"
            "    raise ReproError('bad')\n"
            "def load(raw):\n"
            "    try:\n"
            "        return parse(raw)\n"
            "    except Exception:\n"
            "        return None\n"
        )
        module_exit = main([str(dirty)])
        module_out = capsys.readouterr().out
        cli_exit = cli_main(["lint", "exn", str(dirty)])
        cli_out = capsys.readouterr().out
        assert module_exit == cli_exit == 1
        assert "EXN002" in module_out and "EXN002" in cli_out

    def test_sarif_round_trip(self):
        findings = check(
            "def parse(raw):\n"
            "    raise DeviceError('bad')\n"
            "def load(raw):\n"
            "    try:\n"
            "        return parse(raw)\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert findings
        restored = diagnostics_from_sarif(render_sarif(findings))
        assert codes(restored) == codes(findings)
        assert {f.code for f in findings} <= {
            rule["id"]
            for run in json.loads(render_sarif(findings))["runs"]
            for rule in run["tool"]["driver"]["rules"]
        }

    def test_metrics_counters(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "class ReproError(Exception):\n    pass\n"
            "def parse(raw):\n"
            "    raise ReproError('bad')\n"
            "def load(raw):\n"
            "    try:\n"
            "        return parse(raw)\n"
            "    except Exception:\n"
            "        return None\n"
        )
        registry = MetricsRegistry()
        with use_metrics(registry):
            findings = lint_paths([str(dirty)])
        assert findings
        counters = registry.snapshot()["counters"]
        assert counters["lint.exncheck.files"] == 1
        assert counters["lint.diagnostics.error"] >= 1

    def test_lint_all_includes_exn_findings(self, tmp_path, capsys):
        from repro.lint.allcheck import main as all_main

        path = tmp_path / "messy.py"
        path.write_text(
            "class ReproError(Exception):\n    pass\n"
            "def parse(raw):\n"
            "    raise ReproError('bad')\n"
            "def load(raw):\n"
            "    try:\n"
            "        return parse(raw)\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert all_main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "EXN002" in out


def _concrete_repro_errors():
    """Every concrete ReproError subclass the framework ships."""
    # Import the modules that define subclasses outside repro.exceptions
    # so __subclasses__ sees them.
    import repro.bench.registry  # noqa: F401
    import repro.lint.diagnostics  # noqa: F401
    import repro.obs.ledger  # noqa: F401
    import repro.obs.runs  # noqa: F401

    found = []
    queue = [ReproError]
    while queue:
        cls = queue.pop()
        found.append(cls)
        queue.extend(cls.__subclasses__())
    return sorted(set(found), key=lambda cls: cls.__name__)


#: Constructor arguments for the classes whose __init__ is not the
#: plain single-message shape.
SAMPLE_ARGS = {
    "CapacityExceededError": ("wide-array", 1.5),
    "BandwidthExceededError": ("tape-drive", 2.25),
}


class TestPickleRoundTrip:
    """EXN001's runtime contract, checked exhaustively.

    Engine workers raise these across process boundaries; each class
    must come back from pickle with the same type, message and
    attributes (``BaseException.__reduce__`` replays ``self.args``,
    so any richer constructor needs its own ``__reduce__``).
    """

    @pytest.mark.parametrize(
        "cls", _concrete_repro_errors(),
        ids=lambda cls: cls.__name__,
    )
    def test_every_repro_error_survives_pickle(self, cls):
        args = SAMPLE_ARGS.get(cls.__name__, ("synthetic failure",))
        original = cls(*args)
        restored = pickle.loads(pickle.dumps(original))
        assert type(restored) is cls
        assert str(restored) == str(original)
        assert restored.args == original.args
        assert vars(restored) == vars(original)

    def test_sample_args_cover_all_custom_constructors(self):
        # Every class with extra instance state must appear in
        # SAMPLE_ARGS, or the parametrized test above would silently
        # construct it with the generic one-message shape.
        custom = {
            cls.__name__
            for cls in _concrete_repro_errors()
            if "__init__" in vars(cls)
        }
        assert custom == set(SAMPLE_ARGS)
