"""Analytic degraded-mode evaluation: designs with a level removed."""

import pytest

import repro
from repro import casestudy
from repro.exceptions import DesignError
from repro.units import HOUR
from repro.workload.presets import cello


@pytest.fixture
def workload():
    return cello()


@pytest.fixture
def requirements():
    return casestudy.case_study_requirements()


class TestWithoutLevel:
    def test_removes_named_level(self):
        design = casestudy.baseline_design()
        degraded = design.without_level(1)
        assert len(degraded.levels) == 3
        names = [lvl.technique.name for lvl in degraded.levels]
        assert "split mirror" not in names
        assert "without split mirror" in degraded.name

    def test_primary_cannot_be_removed(self):
        with pytest.raises(DesignError):
            casestudy.baseline_design().without_level(0)

    def test_unknown_level_rejected(self):
        with pytest.raises(DesignError):
            casestudy.baseline_design().without_level(9)

    def test_shares_devices_with_original(self):
        design = casestudy.baseline_design()
        degraded = design.without_level(1)
        assert degraded.primary_level.store is design.primary_level.store

    def test_custom_name(self):
        degraded = casestudy.baseline_design().without_level(1, name="degraded")
        assert degraded.name == "degraded"


class TestDegradedDependability:
    def test_losing_the_mirror_slows_object_recovery(self, workload, requirements):
        """Without split mirrors, object rollback must come from tape."""
        scenario = repro.FailureScenario.object_corruption("1 MB", "24 hr")
        healthy = repro.evaluate(
            casestudy.baseline_design(), workload, scenario, requirements
        )
        degraded = repro.evaluate(
            casestudy.baseline_design().without_level(1),
            workload, scenario, requirements,
        )
        assert healthy.data_loss.source_name == "split mirror"
        assert degraded.data_loss.source_name == "backup"
        assert degraded.recovery_time > healthy.recovery_time
        # A day-old target is too recent for the backup's guaranteed
        # range: loss degrades from 12 h to the backup's full lag.
        assert healthy.recent_data_loss == pytest.approx(12 * HOUR)
        assert degraded.recent_data_loss == pytest.approx(217 * HOUR)

    def test_losing_the_vault_makes_site_failure_fatal(self, workload, requirements):
        scenario = casestudy.site_failure_scenario()
        degraded = repro.evaluate(
            casestudy.baseline_design().without_level(3),
            workload, scenario, requirements,
            strict_utilization=False,
        )
        assert degraded.data_loss.total_loss
        assert degraded.total_cost == float("inf")

    def test_losing_backup_leaves_array_failure_on_vault(self, workload, requirements):
        """Without the tape level, array recovery falls through to the
        vault — dramatically worse lag (the vault still reads via a
        library, which survives an array failure)."""
        scenario = casestudy.array_failure_scenario()
        degraded_design = casestudy.baseline_design().without_level(2)
        degraded = repro.evaluate(
            degraded_design, workload, scenario, requirements,
            strict_utilization=False,
        )
        assert degraded.data_loss.source_name == "remote vaulting"
        assert degraded.recent_data_loss > 217 * HOUR

    def test_degraded_outlays_drop(self, workload, requirements):
        scenario = casestudy.array_failure_scenario()
        healthy = repro.evaluate(
            casestudy.baseline_design(), workload, scenario, requirements
        )
        degraded = repro.evaluate(
            casestudy.baseline_design().without_level(1),
            workload, scenario, requirements,
        )
        assert degraded.costs.total_outlays < healthy.costs.total_outlays
