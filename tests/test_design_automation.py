"""What-if runner, design-space enumeration, optimizer, sweeps."""

import pytest

from repro import casestudy
from repro.design import (
    DesignSpace,
    candidate_designs,
    optimize,
    run_whatif,
    sweep_accumulation_window,
    sweep_link_count,
)
from repro.design.space import BackupChoice, PitChoice, VaultChoice
from repro.exceptions import OptimizationError
from repro.scenarios import BusinessRequirements
from repro.units import HOUR, MINUTE
from repro.workload.presets import cello


@pytest.fixture(scope="module")
def workload():
    return cello()


@pytest.fixture(scope="module")
def scenarios():
    return [
        casestudy.array_failure_scenario(),
        casestudy.site_failure_scenario(),
    ]


@pytest.fixture(scope="module")
def requirements():
    return casestudy.case_study_requirements()


class TestWhatIf:
    def test_runs_table7_grid(self, workload, scenarios, requirements):
        designs = {
            "baseline": casestudy.baseline_design,
            "weekly vault": casestudy.weekly_vault_design,
        }
        results = run_whatif(designs, workload, scenarios, requirements)
        assert [r.design_name for r in results] == ["baseline", "weekly vault"]
        base, weekly = results
        assert base.scenario("site").recent_data_loss > weekly.scenario(
            "site"
        ).recent_data_loss

    def test_worst_case_views(self, workload, scenarios, requirements):
        results = run_whatif(
            {"baseline": casestudy.baseline_design},
            workload, scenarios, requirements,
        )
        result = results[0]
        assert result.worst_data_loss == pytest.approx(1429 * HOUR)
        assert result.worst_recovery_time == result.scenario("site").recovery_time
        assert result.worst_total_cost == result.scenario("site").total_cost
        assert result.total_outlays > 0

    def test_unknown_scenario_fragment_raises(
        self, workload, scenarios, requirements
    ):
        result = run_whatif(
            {"baseline": casestudy.baseline_design},
            workload, scenarios, requirements,
        )[0]
        with pytest.raises(KeyError):
            result.scenario("no-such-scenario")


class TestDesignSpace:
    def test_default_space_enumerates(self):
        candidates = candidate_designs(DesignSpace())
        assert len(candidates) == 16
        # Tape track and mirror track both present.
        assert any("split-mirror" in name for name in candidates)
        assert "asyncB-1link" in candidates

    def test_vault_requires_backup(self):
        space = DesignSpace(
            pit_choices=(PitChoice("split-mirror"),),
            backup_choices=(None,),
            vault_choices=(VaultChoice("v", "4 wk", "676 hr", 39),),
            mirror_link_counts=(None,),
        )
        candidates = candidate_designs(space)
        assert all("vault" not in name for name in candidates)

    def test_backup_faster_than_pit_pruned(self):
        space = DesignSpace(
            pit_choices=(PitChoice("split-mirror", "1 wk", 4),),
            backup_choices=(BackupChoice("daily", "24 hr", "12 hr"),),
            vault_choices=(None,),
            mirror_link_counts=(None,),
        )
        assert candidate_designs(space) == {}

    def test_factories_produce_valid_evaluable_designs(
        self, workload, scenarios, requirements
    ):
        candidates = candidate_designs(DesignSpace())
        outcome = optimize(candidates, workload, scenarios, requirements)
        assert not outcome.skipped

    def test_size_upper_bound(self):
        space = DesignSpace()
        assert space.size_upper_bound() >= len(candidate_designs(space))


class TestHybridDesigns:
    def test_hybrid_space_is_larger(self):
        plain = candidate_designs(DesignSpace())
        hybrids = candidate_designs(DesignSpace(), include_hybrids=True)
        assert len(hybrids) > len(plain)
        assert any("asyncB" in name and "full" in name for name in hybrids)

    def test_hybrid_designs_validate_and_evaluate(self, workload, requirements):
        hybrids = candidate_designs(DesignSpace(), include_hybrids=True)
        name = next(n for n in hybrids if "asyncB" in n and "vault" in n)
        from repro import evaluate

        result = evaluate(
            hybrids[name](), workload,
            casestudy.array_failure_scenario(), requirements,
        )
        # The mirror branch bounds array-failure loss at minutes.
        assert result.recent_data_loss == pytest.approx(120.0)

    def test_rollback_plus_tight_rpo_requires_hybrids(self, workload):
        """Mirror-only designs cannot roll back; tape-only designs lose
        hundreds of hours at an array failure.  Only a hybrid satisfies
        both a 12 h RPO and a 24 h-old object restore."""
        from repro.scenarios import FailureScenario
        from repro.units import MB

        scenarios = [
            FailureScenario.object_corruption(1 * MB, "24 hr"),
            casestudy.array_failure_scenario(),
            casestudy.site_failure_scenario(),
        ]
        strict = BusinessRequirements.per_hour(
            50_000, 50_000, rto="12 hr", rpo="12 hr"
        )
        plain_outcome = optimize(
            candidate_designs(DesignSpace()), workload, scenarios, strict
        )
        hybrid_outcome = optimize(
            candidate_designs(DesignSpace(), include_hybrids=True),
            workload, scenarios, strict,
        )
        assert plain_outcome.best is None
        assert hybrid_outcome.best is not None
        assert "asyncB" in hybrid_outcome.best.name
        assert "snapshot" in hybrid_outcome.best.name


class TestOptimizer:
    def test_unconstrained_picks_single_link_mirror(
        self, workload, scenarios, requirements
    ):
        """With no RTO/RPO, the paper's 'ironic' winner: cheapest total
        is the 1-link mirror despite its 20+ hour recovery."""
        outcome = optimize(
            candidate_designs(DesignSpace()), workload, scenarios, requirements
        )
        assert outcome.best is not None
        assert outcome.best.name == "asyncB-1link"

    def test_tight_objectives_force_more_links(self, workload, scenarios):
        strict = BusinessRequirements.per_hour(
            50_000, 50_000, rto="12 hr", rpo="10 hr"
        )
        outcome = optimize(
            candidate_designs(DesignSpace()), workload, scenarios, strict
        )
        assert outcome.best is not None
        assert outcome.best.name == "asyncB-10link"
        assert outcome.feasible_count == 1

    def test_impossible_objectives_yield_no_best(self, workload, scenarios):
        impossible = BusinessRequirements.per_hour(
            50_000, 50_000, rto="1 s", rpo="1 s"
        )
        outcome = optimize(
            candidate_designs(DesignSpace()), workload, scenarios, impossible
        )
        assert outcome.best is None
        assert outcome.feasible_count == 0
        assert "no feasible" in outcome.summary()

    def test_ranking_sorted_by_cost(self, workload, scenarios, requirements):
        outcome = optimize(
            candidate_designs(DesignSpace()), workload, scenarios, requirements
        )
        objectives = [entry.objective for entry in outcome.ranking]
        assert objectives == sorted(objectives)

    def test_empty_candidates_raise(self, workload, scenarios, requirements):
        with pytest.raises(OptimizationError):
            optimize({}, workload, scenarios, requirements)

    def test_equal_cost_candidates_rank_alphabetically(
        self, workload, scenarios, requirements
    ):
        """Regression: equal-objective candidates used to keep dict
        insertion order, so the reported winner depended on how the
        caller happened to build the candidate mapping."""
        factory = casestudy.baseline_design
        forward = optimize(
            {"alpha": factory, "beta": factory},
            workload, scenarios, requirements,
        )
        backward = optimize(
            {"beta": factory, "alpha": factory},
            workload, scenarios, requirements,
        )
        assert [e.name for e in forward.ranking] == ["alpha", "beta"]
        assert [e.name for e in backward.ranking] == ["alpha", "beta"]
        assert forward.best.name == backward.best.name


class TestSweeps:
    def test_window_sweep_trades_loss_for_link_demand(
        self, workload, requirements
    ):
        points = sweep_accumulation_window(
            ["1 min", "10 min", "1 hr"],
            workload,
            casestudy.array_failure_scenario(),
            requirements,
        )
        losses = [p.recent_data_loss for p in points]
        assert losses == sorted(losses)  # longer window -> more loss
        assert points[0].parameter == MINUTE

    def test_link_sweep_monotone_recovery(self, workload, requirements):
        points = sweep_link_count(
            [1, 2, 4, 8],
            workload,
            casestudy.array_failure_scenario(),
            requirements,
        )
        times = [p.recovery_time for p in points]
        assert times == sorted(times, reverse=True)  # more links, faster
        costs = [p.total_cost for p in points]
        # Outlays rise with links; penalties fall: total is not monotone,
        # but the extremes must differ.
        assert costs[0] != costs[-1]
