"""Data protection technique models: demands, timelines, recovery sizes."""

import pytest

from repro.devices import DiskArray, NetworkLink, Shipment, TapeLibrary, Vault
from repro.devices.catalog import (
    air_shipment,
    enterprise_tape_library,
    midrange_disk_array,
    oc3_links,
    offsite_vault,
)
from repro.exceptions import PolicyError
from repro.techniques import (
    AsyncMirror,
    Backup,
    BatchedAsyncMirror,
    IncrementalKind,
    IncrementalPolicy,
    PrimaryCopy,
    RemoteVaulting,
    SplitMirror,
    SyncMirror,
    VirtualSnapshot,
)
from repro.units import DAY, GB, HOUR, KB, MB, WEEK
from repro.workload.presets import cello


@pytest.fixture
def workload():
    return cello()


@pytest.fixture
def array():
    return midrange_disk_array()


class TestPrimaryCopy:
    def test_flags(self):
        primary = PrimaryCopy()
        assert primary.is_primary
        assert primary.worst_lag() == 0.0
        assert primary.retention_span() == 0.0
        assert primary.full_availability_delay() == 0.0

    def test_no_cycle(self):
        with pytest.raises(PolicyError):
            PrimaryCopy().cycle()

    def test_demands_are_the_foreground_workload(self, workload, array):
        PrimaryCopy().register_demands(workload, store=array)
        demand = array.demands[0]
        assert demand.bandwidth == workload.avg_access_rate
        assert demand.capacity == workload.data_capacity


class TestVirtualSnapshot:
    def test_cow_bandwidth_is_double_update_rate(self, workload, array):
        VirtualSnapshot("12 hr", 4).register_demands(workload, store=array)
        assert array.demands[0].bandwidth == pytest.approx(
            2 * workload.avg_update_rate
        )

    def test_capacity_is_retained_deltas(self, workload, array):
        VirtualSnapshot("12 hr", 4).register_demands(workload, store=array)
        expected = 4 * workload.unique_bytes(12 * HOUR)
        assert array.demands[0].capacity == pytest.approx(expected)

    def test_snapshots_far_cheaper_than_split_mirrors(self, workload):
        snap_array = midrange_disk_array()
        mirror_array = midrange_disk_array(name="other")
        VirtualSnapshot("12 hr", 4).register_demands(workload, store=snap_array)
        SplitMirror("12 hr", 4).register_demands(workload, store=mirror_array)
        assert (
            snap_array.capacity_demand_logical()
            < 0.05 * mirror_array.capacity_demand_logical()
        )

    def test_timeline(self):
        snap = VirtualSnapshot("12 hr", 4)
        assert snap.worst_lag() == pytest.approx(12 * HOUR)
        assert snap.retention_span() == pytest.approx(36 * HOUR)
        assert snap.co_located_with_source

    def test_zero_window_rejected(self):
        with pytest.raises(PolicyError):
            VirtualSnapshot(0, 4)


class TestSplitMirror:
    def test_resident_mirrors(self):
        assert SplitMirror("12 hr", 4).resident_mirrors == 5

    def test_resilver_bandwidth_matches_table5(self, workload):
        mirror = SplitMirror("12 hr", 4)
        # 2 * 317 KB/s * 60 h / 12 h = 3170 KB/s ~ 3.1 MB/s (paper: 0.6%).
        assert mirror.resilver_bandwidth(workload) == pytest.approx(
            2 * 317 * KB * 5, rel=0.01
        )

    def test_capacity_is_five_full_copies(self, workload, array):
        SplitMirror("12 hr", 4).register_demands(workload, store=array)
        assert array.demands[0].capacity == pytest.approx(
            5 * workload.data_capacity
        )

    def test_retention_window(self):
        # 4 mirrors split 12 h apart -> 2 days of retrievable history.
        assert SplitMirror("12 hr", 4).retention_window() == pytest.approx(2 * DAY)

    def test_describe(self):
        assert "12" in SplitMirror("12 hr", 4).describe()


class TestMirrors:
    def test_sync_demands_peak_rate(self, workload):
        remote = midrange_disk_array(name="remote")
        link = oc3_links(10)
        SyncMirror().register_demands(workload, store=remote, transport=link)
        assert link.demands[0].bandwidth == pytest.approx(
            workload.peak_update_rate
        )
        assert remote.demands[0].capacity == workload.data_capacity

    def test_sync_has_zero_loss(self):
        sync = SyncMirror()
        assert sync.worst_lag() == 0.0
        assert sync.worst_spacing() == 0.0
        with pytest.raises(PolicyError):
            sync.cycle()

    def test_async_demands_average_rate(self, workload):
        remote = midrange_disk_array(name="remote")
        link = oc3_links(1)
        AsyncMirror("30 s").register_demands(workload, store=remote, transport=link)
        assert link.demands[0].bandwidth == pytest.approx(workload.avg_update_rate)

    def test_async_lag_is_write_behind(self):
        assert AsyncMirror("30 s").worst_lag() == 30.0

    def test_batched_demands_unique_rate(self, workload):
        remote = midrange_disk_array(name="remote")
        link = oc3_links(1)
        BatchedAsyncMirror("1 min").register_demands(
            workload, store=remote, transport=link
        )
        # Table 2: batchUpdR(1 min) = 727 KB/s.
        assert link.demands[0].bandwidth == pytest.approx(727 * KB)

    def test_batched_lag_is_two_windows(self):
        # accW + propW (propW defaults to accW): ~2 minutes, Table 7's 0.03 h.
        assert BatchedAsyncMirror("1 min").worst_lag() == pytest.approx(120.0)

    def test_mirror_ordering_of_link_demands(self, workload):
        """sync >= async >= batched: the paper's section 2 motivation."""
        sync = SyncMirror().interconnect_demand(workload)
        asynchronous = AsyncMirror().interconnect_demand(workload)
        batched = BatchedAsyncMirror("1 min").interconnect_demand(workload)
        assert sync >= asynchronous >= batched

    def test_batched_prop_exceeding_acc_rejected(self):
        with pytest.raises(PolicyError):
            BatchedAsyncMirror("1 min", propagation_window="2 min")


class TestBackup:
    def test_full_only_bandwidth(self, workload):
        backup = Backup("1 wk", "48 hr", "1 hr", retention_count=4)
        assert backup.required_bandwidth(workload) == pytest.approx(
            workload.data_capacity / (48 * HOUR)
        )

    def test_full_only_capacity(self, workload):
        library = enterprise_tape_library()
        backup = Backup("1 wk", "48 hr", "1 hr", retention_count=4)
        backup.register_demands(workload, store=library)
        # 4 retained fulls + 1 in-progress = 5 x 1360 GB = 6.6 TB.
        assert library.demands[0].capacity == pytest.approx(
            5 * workload.data_capacity
        )

    def test_source_array_gets_read_demand_but_no_capacity(self, workload, array):
        library = enterprise_tape_library()
        backup = Backup("1 wk", "48 hr", "1 hr", retention_count=4)
        backup.register_demands(workload, store=library, source_store=array)
        assert array.demands[0].bandwidth > 0
        assert array.demands[0].capacity == 0.0

    def test_cumulative_incremental_sizes_grow(self, workload):
        backup = Backup(
            "48 hr", "48 hr", "1 hr", 4,
            incremental=IncrementalPolicy(
                IncrementalKind.CUMULATIVE, 5, "24 hr", "12 hr", "1 hr"
            ),
        )
        sizes = [backup.incremental_size(workload, k) for k in range(1, 6)]
        assert sizes == sorted(sizes)
        assert backup.largest_incremental_size(workload) == sizes[-1]

    def test_differential_incrementals_uniform(self, workload):
        backup = Backup(
            "48 hr", "48 hr", "1 hr", 4,
            incremental=IncrementalPolicy(
                IncrementalKind.DIFFERENTIAL, 5, "24 hr", "12 hr", "1 hr"
            ),
        )
        sizes = {backup.incremental_size(workload, k) for k in range(1, 6)}
        assert len(sizes) == 1

    def test_cycle_period_with_incrementals(self):
        backup = Backup(
            "48 hr", "48 hr", "1 hr", 4,
            incremental=IncrementalPolicy.daily_cumulative(count=5),
        )
        assert backup.cycle_period == pytest.approx(WEEK)
        assert backup.cycle_count == 5

    def test_fi_worst_lag_is_73_hours(self):
        backup = Backup(
            "48 hr", "48 hr", "1 hr", 4,
            incremental=IncrementalPolicy(
                IncrementalKind.CUMULATIVE, 5, "24 hr", "12 hr", "1 hr"
            ),
        )
        assert backup.worst_lag() == pytest.approx(73 * HOUR)

    def test_recovery_size_cumulative_adds_largest_incremental(self, workload):
        backup = Backup(
            "48 hr", "48 hr", "1 hr", 4,
            incremental=IncrementalPolicy(
                IncrementalKind.CUMULATIVE, 5, "24 hr", "12 hr", "1 hr"
            ),
        )
        size = backup.recovery_size(workload, workload.data_capacity)
        assert size == pytest.approx(
            workload.data_capacity + backup.largest_incremental_size(workload)
        )

    def test_recovery_size_differential_adds_whole_chain(self, workload):
        backup = Backup(
            "48 hr", "48 hr", "1 hr", 4,
            incremental=IncrementalPolicy(
                IncrementalKind.DIFFERENTIAL, 5, "24 hr", "12 hr", "1 hr"
            ),
        )
        size = backup.recovery_size(workload, workload.data_capacity)
        assert size == pytest.approx(
            workload.data_capacity + 5 * backup.incremental_size(workload, 1)
        )

    def test_full_only_recovery_is_just_requested(self, workload):
        backup = Backup("1 wk", "48 hr", "1 hr", 4)
        assert backup.recovery_size(workload, 1 * MB) == 1 * MB

    def test_prop_exceeding_acc_rejected(self):
        with pytest.raises(PolicyError):
            Backup("24 hr", "48 hr", "1 hr", 4)


class TestRemoteVaulting:
    def make(self, hold=4 * WEEK + 12 * HOUR):
        return RemoteVaulting("4 wk", "24 hr", hold, retention_count=39)

    def test_vault_capacity(self, workload):
        vault = offsite_vault()
        self.make().register_demands(workload, store=vault)
        assert vault.demands[0].capacity == pytest.approx(
            39 * workload.data_capacity
        )

    def test_shipments_per_year(self):
        assert self.make().shipments_per_year() == pytest.approx(13.036, rel=0.01)

    def test_no_extra_copy_when_hold_covers_retention(self, workload):
        backup = Backup("1 wk", "48 hr", "1 hr", retention_count=4)  # retW = 4 wk
        assert not self.make().requires_extra_copy(backup)

    def test_extra_copy_when_shipping_early(self, workload):
        backup = Backup("1 wk", "48 hr", "1 hr", retention_count=4)
        early = self.make(hold=12 * HOUR)
        assert early.requires_extra_copy(backup)
        library = enterprise_tape_library()
        vault = offsite_vault()
        early.register_demands(
            workload,
            store=vault,
            source_store=library,
            transport=air_shipment(),
            source_technique=backup,
        )
        # The library gets bandwidth + a full copy of shelf space.
        assert library.demands[0].bandwidth > 0
        assert library.demands[0].capacity == workload.data_capacity

    def test_shipment_demand_registered(self, workload):
        courier = air_shipment()
        vault = offsite_vault()
        self.make().register_demands(workload, store=vault, transport=courier)
        assert courier.demands[0].shipments_per_year == pytest.approx(13.0, abs=0.1)

    def test_reads_via_source_level(self):
        assert self.make().reads_via_source_level

    def test_three_year_reach(self):
        vaulting = self.make()
        # 39 fulls every 4 weeks: within 10% of 3 years.
        assert vaulting.retention_window() == pytest.approx(3 * 365 * DAY, rel=0.1)
