"""The design linter: DEP rules, engine, renderers, CLI, adapter."""

import json

import pytest

from repro import casestudy
from repro.cli import main
from repro.core import StorageDesign, validate_design
from repro.core.validate import _cycle_period, _retention_count
from repro.devices import SpareConfig
from repro.devices.catalog import (
    enterprise_tape_library,
    midrange_disk_array,
    offsite_vault,
    san_link,
)
from repro.exceptions import DesignError, NoCycleError, PolicyError
from repro.lint import (
    Diagnostic,
    Severity,
    diagnostics_from_json,
    diagnostics_from_sarif,
    exit_code,
    render_json,
    render_sarif,
    rule_table,
)
from repro.lint.engine import lint_design, lint_file, lint_spec
from repro.scenarios import BusinessRequirements, FailureScenario
from repro.techniques import Backup, PrimaryCopy, SplitMirror
from repro.workload.batch_curve import BatchUpdateCurve
from repro.workload.presets import cello
from repro.workload.spec import Workload


def codes(diagnostics):
    return [d.code for d in diagnostics]


def only(diagnostics, code):
    return [d for d in diagnostics if d.code == code]


@pytest.fixture
def baseline():
    return casestudy.baseline_design()


@pytest.fixture
def workload():
    return cello()


def plain_array(name="primary-array"):
    """A midrange array with no spare (for sparing-rule fixtures)."""
    return midrange_disk_array(name=name, spare=SpareConfig.none())


def one_site_design():
    """Primary + split mirror + backup, every copy at the primary site."""
    design = StorageDesign("one-site")
    array = midrange_disk_array()
    design.add_level(PrimaryCopy(), store=array)
    design.add_level(SplitMirror("12 hr", 4), store=array)
    design.add_level(
        Backup("1 wk", "48 hr", "1 hr", 4),
        store=enterprise_tape_library(),
        transport=san_link(),
    )
    return design


def backup_only_design():
    """Primary + backup: no disk-resident secondary copy."""
    design = StorageDesign("tape-only")
    design.add_level(PrimaryCopy(), store=midrange_disk_array())
    design.add_level(
        Backup("1 wk", "48 hr", "1 hr", 4),
        store=enterprise_tape_library(),
        transport=san_link(),
    )
    return design


class TestRetentionRules:
    def test_dep001_fires_on_shrinking_retention(self, workload):
        design = StorageDesign("bad")
        array = midrange_disk_array()
        design.add_level(PrimaryCopy(), store=array)
        design.add_level(SplitMirror("12 hr", 4), store=array)
        design.add_level(
            Backup("1 wk", "48 hr", "1 hr", retention_count=2),
            store=enterprise_tape_library(),
            transport=san_link(),
        )
        found = only(lint_design(design, workload), "DEP001")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "retains fewer cycles (2)" in found[0].message
        assert found[0].hint
        assert found[0].pointer == "/levels/2/technique/retention_count"

    def test_dep001_clean_on_baseline(self, baseline, workload):
        assert not only(lint_design(baseline, workload), "DEP001")

    def test_dep002_fires_on_shrinking_cycle_period(self, workload):
        design = StorageDesign("bad")
        array = midrange_disk_array()
        design.add_level(PrimaryCopy(), store=array)
        design.add_level(SplitMirror("1 wk", 4), store=array)
        design.add_level(
            Backup("12 hr", "6 hr", "1 hr", retention_count=4),
            store=enterprise_tape_library(),
            transport=san_link(),
        )
        found = only(lint_design(design, workload), "DEP002")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "accW_i+1 >= cyclePer_i" in found[0].message

    def test_dep002_clean_on_baseline(self, baseline, workload):
        assert not only(lint_design(baseline, workload), "DEP002")

    def test_dep003_warns_on_baseline_vault_hold(self, baseline, workload):
        found = only(lint_design(baseline, workload), "DEP003")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "extra retention capacity" in found[0].message

    def test_dep003_clean_without_vaulting(self, workload):
        assert not only(lint_design(one_site_design(), workload), "DEP003")


class TestPlacementRules:
    def test_dep004_fires_when_all_copies_share_one_site(self, workload):
        found = only(lint_design(one_site_design(), workload), "DEP004")
        assert found, "hypothesized building/site disasters must flag SPOF"
        assert all(d.severity is Severity.ERROR for d in found)
        assert all(d.hint for d in found)
        assert "single point of failure" in found[0].message

    def test_dep004_clean_on_baseline_with_remote_vault(
        self, baseline, workload
    ):
        assert not only(lint_design(baseline, workload), "DEP004")

    def test_dep004_array_scenario_on_single_array_design(self, workload):
        design = StorageDesign("array-only")
        array = midrange_disk_array()
        design.add_level(PrimaryCopy(), store=array)
        design.add_level(SplitMirror("12 hr", 4), store=array)
        scenario = FailureScenario.array_failure("primary-array")
        found = only(lint_design(design, workload, [scenario]), "DEP004")
        assert len(found) == 1
        assert "primary-array" in found[0].message

    def test_dep010_warns_without_spares_or_facility(self, workload):
        design = StorageDesign("unspared")
        design.add_level(PrimaryCopy(), store=plain_array())
        design.add_level(
            Backup("1 wk", "48 hr", "1 hr", 4),
            store=enterprise_tape_library(
                name="library", spare=SpareConfig.none()
            ),
            transport=san_link(),
        )
        found = only(lint_design(design, workload), "DEP010")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_dep010_clean_with_recovery_facility(self, baseline, workload):
        assert not only(lint_design(baseline, workload), "DEP010")


class TestObjectiveRules:
    def test_dep005_fires_when_rpo_unreachable(self, workload):
        requirements = BusinessRequirements.per_hour(
            50_000, 50_000, rpo="24 hr"
        )
        found = only(
            lint_design(
                backup_only_design(), workload, requirements=requirements
            ),
            "DEP005",
        )
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "statically unreachable" in found[0].message

    def test_dep005_clean_with_fresh_mirror(self, workload):
        requirements = BusinessRequirements.per_hour(
            50_000, 50_000, rpo="24 hr"
        )
        found = only(
            lint_design(
                one_site_design(), workload, requirements=requirements
            ),
            "DEP005",
        )
        assert not found

    def test_dep006_fires_when_rto_below_bandwidth_bound(self, workload):
        requirements = BusinessRequirements.per_hour(
            50_000, 50_000, rto="1 min"
        )
        found = only(
            lint_design(
                backup_only_design(), workload, requirements=requirements
            ),
            "DEP006",
        )
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "infeasible" in found[0].message

    def test_dep006_clean_with_generous_rto(self, workload):
        requirements = BusinessRequirements.per_hour(
            50_000, 50_000, rto="24 hr"
        )
        found = only(
            lint_design(
                backup_only_design(), workload, requirements=requirements
            ),
            "DEP006",
        )
        assert not found

    def test_dep011_warns_on_per_hour_rate_passed_per_second(self, baseline):
        requirements = BusinessRequirements(50_000.0, 50_000.0)
        found = only(
            lint_design(baseline, requirements=requirements), "DEP011"
        )
        assert len(found) == 2  # both rates are suspect
        assert all(d.severity is Severity.WARNING for d in found)
        assert "per_hour" in found[0].hint

    def test_dep011_clean_on_paper_rates(self, baseline):
        requirements = BusinessRequirements.per_hour(50_000, 50_000)
        assert not only(
            lint_design(baseline, requirements=requirements), "DEP011"
        )


class TestCapacityRule:
    @staticmethod
    def big_workload():
        return Workload(
            name="oversized",
            data_capacity="40 TB",  # raw 80 TB on RAID-2x vs 18.25 TB array
            avg_access_rate="2 MB/s",
            avg_update_rate="1 MB/s",
            burst_multiplier=2.0,
            batch_curve=BatchUpdateCurve(
                {"1 min": "727 KB/s", "24 hr": "317 KB/s"},
                short_window_rate="1 MB/s",
            ),
        )

    def test_dep007_fires_on_overcommitted_array(self):
        found = only(
            lint_design(one_site_design(), self.big_workload()), "DEP007"
        )
        assert found
        assert found[0].severity is Severity.ERROR
        assert "overcommitted" in found[0].message

    def test_dep007_clean_on_baseline(self, baseline, workload):
        assert not only(lint_design(baseline, workload), "DEP007")

    def test_dep007_restores_demand_ledgers(self, workload):
        design = one_site_design()
        array = design.levels[0].store
        array.register_demand("pre-existing", bandwidth=1.0, capacity=2.0)
        before = array.demands
        lint_design(design, self.big_workload())
        assert array.demands == before


class TestScenarioAndStructureRules:
    def test_dep012_fires_on_unknown_device(self, baseline, workload):
        scenario = FailureScenario.array_failure("no-such-array")
        found = only(lint_design(baseline, workload, [scenario]), "DEP012")
        assert len(found) == 1
        assert "no-such-array" in found[0].message
        assert "primary-array" in found[0].hint

    def test_dep012_clean_on_known_device(self, baseline, workload):
        scenario = FailureScenario.array_failure("primary-array")
        assert not only(
            lint_design(baseline, workload, [scenario]), "DEP012"
        )

    def test_dep013_fires_on_empty_design(self):
        found = only(lint_design(StorageDesign("empty")), "DEP013")
        assert len(found) == 1
        assert found[0].message == "design has no levels"

    def test_dep014_warns_on_primary_only_design(self, workload):
        design = StorageDesign("bare")
        design.add_level(PrimaryCopy(), store=midrange_disk_array())
        found = only(lint_design(design, workload), "DEP014")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_dep014_clean_with_protection(self, baseline, workload):
        assert not only(lint_design(baseline, workload), "DEP014")

    def test_dep009_flags_duplicate_device_names(self, workload):
        design = StorageDesign("dup-names")
        design.add_level(PrimaryCopy(), store=midrange_disk_array())
        design.add_level(
            SplitMirror("12 hr", 4, name="pit"),
            store=design.levels[0].store,
        )
        design.add_level(
            Backup("1 wk", "48 hr", "1 hr", 4),
            store=midrange_disk_array(),  # same catalog name, new device
            transport=san_link(),
        )
        found = only(lint_design(design, workload), "DEP009")
        assert found
        assert "primary-array" in found[0].message


class TestSpecRules:
    @staticmethod
    def spec_with_levels(levels):
        return {
            "workload": "cello",
            "design": {"name": "spec-design", "levels": levels},
        }

    def test_dep008_fires_on_dangling_ref(self):
        spec = self.spec_with_levels(
            [
                {
                    "technique": {"kind": "primary"},
                    "store": {"catalog": "midrange_disk_array", "id": "a"},
                },
                {
                    "technique": {
                        "kind": "snapshot",
                        "accumulation_window": "4 hr",
                        "retention_count": 6,
                    },
                    "store": {"ref": "nope"},
                },
            ]
        )
        diagnostics = lint_spec(spec)
        found = only(diagnostics, "DEP008")
        assert len(found) == 1
        assert "'nope'" in found[0].message
        assert found[0].pointer == "/design/levels/1/store/ref"
        # The unbuildable design also surfaces as DEP000.
        assert only(diagnostics, "DEP000")

    def test_dep009_fires_on_duplicate_id(self):
        spec = self.spec_with_levels(
            [
                {
                    "technique": {"kind": "primary"},
                    "store": {"catalog": "midrange_disk_array", "id": "a"},
                },
                {
                    "technique": {
                        "kind": "snapshot",
                        "accumulation_window": "4 hr",
                        "retention_count": 6,
                    },
                    "store": {"ref": "a"},
                },
                {
                    "technique": {
                        "kind": "backup",
                        "full_accumulation_window": "1 wk",
                        "full_propagation_window": "48 hr",
                        "full_hold_window": "1 hr",
                        "retention_count": 6,
                    },
                    "store": {
                        "catalog": "enterprise_tape_library",
                        "id": "a",
                        "name": "library",
                    },
                    "transport": {"catalog": "san_link"},
                },
            ]
        )
        found = only(lint_spec(spec), "DEP009")
        assert found
        assert "defined twice" in found[0].message

    def test_spec_expectations_suppress_documented_findings(self, tmp_path):
        spec = {"design": "baseline", "lint": {"expect": ["DEP003"]}}
        assert codes(lint_spec(spec)) == []

    def test_stale_expectation_is_reported(self):
        spec = {"design": "baseline", "lint": {"expect": ["DEP003", "DEP007"]}}
        found = lint_spec(spec)
        assert codes(found) == ["DEP099"]
        assert "DEP007" in found[0].message


class TestValidateDesignAdapter:
    def test_baseline_warning_string_is_preserved(self, baseline, workload):
        messages = validate_design(baseline, workload)
        assert len(messages) == 1
        assert messages[0].startswith(
            "level 3 (remote vaulting) holds RPs"
        )
        assert "extra retention capacity is demanded" in messages[0]

    def test_error_strings_are_preserved(self, workload):
        design = StorageDesign("bad")
        array = midrange_disk_array()
        design.add_level(PrimaryCopy(), store=array)
        design.add_level(SplitMirror("12 hr", 4), store=array)
        design.add_level(
            Backup("1 wk", "48 hr", "1 hr", retention_count=2),
            store=enterprise_tape_library(),
            transport=san_link(),
        )
        with pytest.raises(DesignError) as excinfo:
            validate_design(design, workload)
        message = str(excinfo.value)
        assert "design 'bad' is invalid" in message
        assert (
            "level 2 (backup) retains fewer cycles (2) than level 1"
            in message
        )
        assert "(paper section 3.2.1)" in message

    def test_helpers_return_none_for_continuous_techniques(self, baseline):
        assert _cycle_period(baseline.levels[0]) is None
        assert _retention_count(baseline.levels[0]) is None
        assert _cycle_period(baseline.levels[2]) is not None

    def test_no_cycle_error_is_both_policy_and_not_implemented(self):
        with pytest.raises(PolicyError):
            PrimaryCopy().cycle()
        with pytest.raises(NotImplementedError):
            PrimaryCopy().cycle()
        assert issubclass(NoCycleError, PolicyError)
        assert issubclass(NoCycleError, NotImplementedError)

    def test_broken_cycle_surfaces_instead_of_skipping(self, workload):
        design = one_site_design()

        class Broken(Exception):
            pass

        def broken_cycle():
            raise Broken("bug in cycle()")

        design.levels[2].technique.cycle = broken_cycle
        with pytest.raises(Broken):
            validate_design(design, workload)


class TestOutputRoundTrips:
    @staticmethod
    def sample(baseline, workload):
        requirements = BusinessRequirements(50_000.0, 50_000.0)
        return lint_design(baseline, workload, requirements=requirements)

    def test_json_round_trip(self, baseline, workload):
        diagnostics = self.sample(baseline, workload)
        assert diagnostics
        assert diagnostics_from_json(render_json(diagnostics)) == diagnostics

    def test_sarif_round_trip(self, baseline, workload):
        diagnostics = self.sample(baseline, workload)
        assert (
            diagnostics_from_sarif(render_sarif(diagnostics)) == diagnostics
        )

    def test_sarif_levels_and_rule_metadata(self, baseline, workload):
        log = json.loads(render_sarif(self.sample(baseline, workload)))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        levels = {r["level"] for r in run["results"]}
        assert levels <= {"error", "warning", "note"}
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r["ruleId"] for r in run["results"]} <= rule_ids

    def test_rule_table_covers_design_and_code_rules(self):
        table = {row["code"]: row for row in rule_table()}
        for code in ("DEP001", "DEP004", "DEP011", "UNI001", "EXC001"):
            assert code in table
            assert table[code]["summary"]

    def test_exit_code_policy(self):
        error = Diagnostic("X", Severity.ERROR, "m")
        warning = Diagnostic("X", Severity.WARNING, "m")
        info = Diagnostic("X", Severity.INFO, "m")
        assert exit_code([error, warning]) == 1
        assert exit_code([warning, info]) == 0
        assert exit_code([warning], strict=True) == 1
        assert exit_code([info], strict=True) == 0
        assert exit_code([]) == 0


class TestLintCommand:
    @staticmethod
    def write_spec(tmp_path, name, spec):
        path = tmp_path / name
        path.write_text(json.dumps(spec))
        return str(path)

    def test_examples_lint_clean_under_strict(self, capsys):
        assert (
            main(
                [
                    "lint",
                    "examples/specs/baseline_array_failure.json",
                    "examples/specs/custom_mirror_design.json",
                    "--strict",
                ]
            )
            == 0
        )
        assert "clean" in capsys.readouterr().out

    def test_warning_exits_zero_then_one_under_strict(self, tmp_path, capsys):
        path = self.write_spec(tmp_path, "w.json", {"design": "baseline"})
        assert main(["lint", path]) == 0
        assert "DEP003 warning" in capsys.readouterr().out
        assert main(["lint", path, "--strict"]) == 1

    def test_error_exits_one(self, tmp_path, capsys):
        spec = {
            "design": {
                "name": "broken",
                "levels": [
                    {
                        "technique": {"kind": "primary"},
                        "store": {"ref": "missing"},
                    }
                ],
            }
        }
        path = self.write_spec(tmp_path, "e.json", spec)
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "DEP008 error" in out

    def test_json_format(self, tmp_path, capsys):
        path = self.write_spec(tmp_path, "w.json", {"design": "baseline"})
        assert main(["lint", path, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["warning"] == 1
        assert document["diagnostics"][0]["file"] == path

    def test_sarif_format(self, tmp_path, capsys):
        path = self.write_spec(tmp_path, "w.json", {"design": "baseline"})
        assert main(["lint", path, "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"][0]["ruleId"] == "DEP003"

    def test_dim_subcommand_clean_tree(self, capsys):
        assert main(["lint", "dim", "src/repro", "--strict"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dim_subcommand_flags_mismatch(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "from repro.units import GB, HOUR\nx = 4 * GB + 2 * HOUR\n"
        )
        assert main(["lint", "dim", str(dirty)]) == 1
        assert "DIM001" in capsys.readouterr().out

    def test_dim_subcommand_pragma_budget(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "from repro.units import GB, HOUR\n"
            "x = 4 * GB + 2 * HOUR  # lint: allow-dim\n"
        )
        assert main(["lint", "dim", str(dirty), "--max-pragmas", "0"]) == 1
        assert "DIM004" in capsys.readouterr().out

    def test_unparseable_spec_reports_dep000(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["lint", str(path)]) == 1
        assert "DEP000" in capsys.readouterr().out

    def test_lint_file_attributes_diagnostics(self, tmp_path):
        path = self.write_spec(tmp_path, "w.json", {"design": "baseline"})
        diagnostics = lint_file(path)
        assert all(d.file == path for d in diagnostics)

    def test_metrics_hooks_fire(self, tmp_path, capsys):
        path = self.write_spec(tmp_path, "w.json", {"design": "baseline"})
        assert main(["lint", path, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "lint.rules_run" in out
        assert "lint.diagnostics.warning" in out
        assert "lint.files" in out

    def test_metrics_count_reported_not_raw_diagnostics(self, tmp_path, capsys):
        # A suppressed expectation is not a reported diagnostic, so a
        # clean verdict must come with no lint.diagnostics.* counters.
        path = self.write_spec(
            tmp_path,
            "clean.json",
            {"design": "baseline", "lint": {"expect": ["DEP003"]}},
        )
        assert main(["lint", path, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "lint.diagnostics" not in out
        assert "lint.files" in out

    def test_metrics_count_engine_made_diagnostics(self, tmp_path, capsys):
        # DEP000 comes from the engine (unparseable file), not from any
        # rule; it must still show up in the metrics.
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["lint", str(path), "--metrics"]) == 1
        out = capsys.readouterr().out
        assert "lint.diagnostics.error" in out

    def test_json_format_with_metrics_keeps_stdout_parseable(
        self, tmp_path, capsys
    ):
        path = self.write_spec(tmp_path, "w.json", {"design": "baseline"})
        assert main(["lint", path, "--format", "json", "--metrics"]) == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)  # stdout is pure JSON
        assert document["summary"]["warning"] == 1
        assert "lint.rules_run" in captured.err  # metrics went to stderr


class TestRiskEnsembleRules:
    """DEP015: ensembles that would not build or could not fire."""

    @staticmethod
    def spec(ensemble):
        return {"design": "baseline", "ensemble": ensemble}

    def good(self):
        return {
            "name": "ok",
            "members": [
                {"id": "arr", "scenario": "array", "rate": "0.5/yr"}
            ],
            "correlated": [
                {"id": "pair", "rate": "0.4/yr", "fraction": 0.25,
                 "base": "array", "correlated": "building"}
            ],
            "cascades": [
                {"id": "casc", "rate": "0.01/yr", "primary": "array",
                 "escalated": "site", "secondary_rate": "0.5/yr"}
            ],
        }

    def test_consistent_ensemble_is_clean(self):
        assert only(lint_spec(self.spec(self.good())), "DEP015") == []

    def test_spec_without_ensemble_is_ignored(self):
        assert only(lint_spec({"design": "baseline"}), "DEP015") == []

    def test_zero_rate_member(self):
        ensemble = self.good()
        ensemble["members"][0]["rate"] = "0/yr"
        found = only(lint_spec(self.spec(ensemble)), "DEP015")
        assert len(found) == 1
        assert "not positive" in found[0].message
        assert found[0].pointer == "/ensemble/members/0/rate"

    def test_unparseable_rate(self):
        ensemble = self.good()
        ensemble["cascades"][0]["secondary_rate"] = "often"
        found = only(lint_spec(self.spec(ensemble)), "DEP015")
        assert [f.pointer for f in found] == [
            "/ensemble/cascades/0/secondary_rate"
        ]

    def test_negative_kofn_unit_rate(self):
        ensemble = self.good()
        ensemble["members"][0] = {
            "id": "arr", "scenario": "array",
            "kofn": {"n": 8, "k": 6, "unit_rate": "-2/yr",
                     "repair_time": "8 hr"},
        }
        found = only(lint_spec(self.spec(ensemble)), "DEP015")
        assert [f.pointer for f in found] == [
            "/ensemble/members/0/kofn/unit_rate"
        ]

    def test_probability_and_fraction_outside_unit_interval(self):
        ensemble = self.good()
        ensemble["correlated"][0]["fraction"] = 1.5
        ensemble["cascades"][0] = {
            "id": "casc", "rate": "0.01/yr", "primary": "array",
            "escalated": "site", "probability": 0,
        }
        found = only(lint_spec(self.spec(ensemble)), "DEP015")
        assert sorted(f.pointer for f in found) == [
            "/ensemble/cascades/0/probability",
            "/ensemble/correlated/0/fraction",
        ]

    def test_duplicate_ids_across_groups(self):
        ensemble = self.good()
        ensemble["cascades"][0]["id"] = "arr"
        found = only(lint_spec(self.spec(ensemble)), "DEP015")
        assert len(found) == 1
        assert "duplicate ensemble member id 'arr'" in found[0].message
        assert found[0].pointer == "/ensemble/cascades/0/id"

    def test_unknown_device_reference(self):
        ensemble = self.good()
        ensemble["members"][0]["scenario"] = {
            "scope": "array", "failed_device": "ghost-array",
        }
        found = only(lint_spec(self.spec(ensemble)), "DEP015")
        assert len(found) == 1
        assert "'ghost-array'" in found[0].message
        assert found[0].pointer == "/ensemble/members/0/scenario"

    def test_known_device_reference_is_clean(self):
        ensemble = self.good()
        ensemble["members"][0]["scenario"] = {
            "scope": "array", "failed_device": "primary-array",
        }
        assert only(lint_spec(self.spec(ensemble)), "DEP015") == []

    def test_generated_grid_rate(self):
        ensemble = self.good()
        ensemble["generate"] = {
            "object_grid": {"count": 10, "total_rate": "-12/yr"}
        }
        found = only(lint_spec(self.spec(ensemble)), "DEP015")
        assert [f.pointer for f in found] == [
            "/ensemble/generate/object_grid/total_rate"
        ]

    def test_severity_is_error(self):
        ensemble = self.good()
        ensemble["members"][0]["rate"] = "0/yr"
        found = only(lint_spec(self.spec(ensemble)), "DEP015")
        assert found[0].severity is Severity.ERROR
