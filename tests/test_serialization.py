"""Dictionary/JSON specs into framework objects."""

import pytest

from repro.devices import DiskArray, NetworkLink, Shipment, TapeLibrary, Vault
from repro.exceptions import DesignError
from repro.scenarios import FailureScope
from repro.serialization import (
    provenance_from_spec,
    provenance_to_dict,
    design_from_spec,
    device_from_spec,
    requirements_from_spec,
    scenario_from_spec,
    technique_from_spec,
    workload_from_spec,
)
from repro.techniques import (
    Backup,
    BatchedAsyncMirror,
    PrimaryCopy,
    RemoteVaulting,
    SplitMirror,
    SyncMirror,
    VirtualSnapshot,
)
from repro.units import GB, HOUR, KB


class TestWorkloadSpecs:
    def test_preset_names(self):
        assert workload_from_spec("cello").data_capacity == 1360 * GB
        assert workload_from_spec("oltp").name == "OLTP database"

    def test_unknown_preset(self):
        with pytest.raises(DesignError):
            workload_from_spec("nonexistent")

    def test_full_dictionary(self):
        workload = workload_from_spec(
            {
                "name": "custom",
                "data_capacity": "10 GB",
                "avg_access_rate": "1 MB/s",
                "avg_update_rate": "100 KB/s",
                "burst_multiplier": 3,
                "batch_curve": {"1 min": "90 KB/s", "1 hr": "40 KB/s"},
                "short_window_rate": "100 KB/s",
            }
        )
        assert workload.data_capacity == 10 * GB
        assert workload.batch_update_rate("1 hr") == 40 * KB

    def test_unknown_key_rejected(self):
        with pytest.raises(DesignError):
            workload_from_spec({"data_capacity": "1 GB", "typo_key": 1})


class TestDeviceSpecs:
    def test_catalog_reference(self):
        device = device_from_spec({"catalog": "midrange_disk_array"})
        assert isinstance(device, DiskArray)

    def test_catalog_with_links(self):
        device = device_from_spec({"catalog": "oc3_links", "link_count": 4})
        assert isinstance(device, NetworkLink)
        assert device.link_count == 4

    def test_link_count_on_wrong_catalog_rejected(self):
        with pytest.raises(DesignError):
            device_from_spec({"catalog": "offsite_vault", "link_count": 2})

    def test_unknown_catalog_rejected(self):
        with pytest.raises(DesignError):
            device_from_spec({"catalog": "quantum_storage"})

    def test_explicit_disk_array(self):
        device = device_from_spec(
            {
                "kind": "disk_array",
                "name": "arr",
                "max_capacity_slots": 10,
                "slot_capacity": "100 GB",
                "max_bandwidth_slots": 10,
                "slot_bandwidth": "50 MB/s",
                "enclosure_bandwidth": "200 MB/s",
                "raid_capacity_factor": 1.25,
                "spare": {"type": "dedicated", "provisioning_time": "60 s",
                          "discount": 1.0},
                "cost_model": {"fixed": 1000, "per_gb": 1.0},
                "location": {"region": "r", "site": "s"},
            }
        )
        assert isinstance(device, DiskArray)
        assert device.raid_capacity_factor == 1.25
        assert device.spare.exists
        assert device.location.region == "r"

    def test_explicit_library_vault_link_shipment(self):
        library = device_from_spec(
            {
                "kind": "tape_library",
                "name": "lib",
                "max_cartridges": 100,
                "cartridge_capacity": "400 GB",
                "max_drives": 4,
                "drive_bandwidth": "60 MB/s",
                "enclosure_bandwidth": "240 MB/s",
            }
        )
        vault = device_from_spec(
            {"kind": "vault", "name": "v", "max_cartridges": 100,
             "cartridge_capacity": "400 GB"}
        )
        link = device_from_spec(
            {"kind": "network_link", "name": "l", "link_bandwidth": "155 Mbps"}
        )
        courier = device_from_spec({"kind": "shipment", "name": "s"})
        assert isinstance(library, TapeLibrary)
        assert isinstance(vault, Vault)
        assert isinstance(link, NetworkLink)
        assert isinstance(courier, Shipment)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DesignError):
            device_from_spec({"kind": "floppy_tower", "name": "x"})

    def test_missing_required_key_rejected(self):
        with pytest.raises(DesignError):
            device_from_spec({"kind": "vault", "name": "v"})


class TestTechniqueSpecs:
    @pytest.mark.parametrize(
        "spec,cls",
        [
            ({"kind": "primary"}, PrimaryCopy),
            (
                {"kind": "snapshot", "accumulation_window": "12 hr",
                 "retention_count": 4},
                VirtualSnapshot,
            ),
            (
                {"kind": "split_mirror", "accumulation_window": "12 hr",
                 "retention_count": 4},
                SplitMirror,
            ),
            ({"kind": "sync_mirror"}, SyncMirror),
            ({"kind": "batched_async_mirror"}, BatchedAsyncMirror),
            (
                {"kind": "backup", "full_accumulation_window": "1 wk",
                 "full_propagation_window": "48 hr", "retention_count": 4},
                Backup,
            ),
            (
                {"kind": "vaulting", "accumulation_window": "4 wk",
                 "propagation_window": "24 hr", "hold_window": "676 hr",
                 "retention_count": 39},
                RemoteVaulting,
            ),
        ],
    )
    def test_kinds(self, spec, cls):
        assert isinstance(technique_from_spec(spec), cls)

    def test_backup_with_incremental(self):
        backup = technique_from_spec(
            {
                "kind": "backup",
                "full_accumulation_window": "48 hr",
                "full_propagation_window": "48 hr",
                "full_hold_window": "1 hr",
                "retention_count": 4,
                "incremental": {
                    "kind": "cumulative",
                    "count": 5,
                    "accumulation_window": "24 hr",
                    "propagation_window": "12 hr",
                    "hold_window": "1 hr",
                },
            }
        )
        assert backup.cycle_count == 5
        assert backup.worst_lag() == pytest.approx(73 * HOUR)

    def test_unknown_kind(self):
        with pytest.raises(DesignError):
            technique_from_spec({"kind": "carrier-pigeon"})


class TestDesignSpecs:
    def test_named_designs(self):
        design = design_from_spec("baseline")
        assert len(design.levels) == 4
        with pytest.raises(DesignError):
            design_from_spec("no-such-design")

    def test_full_design_with_device_refs(self):
        design = design_from_spec(
            {
                "name": "json-design",
                "recovery_facility": {"type": "shared",
                                      "provisioning_time": "9 hr",
                                      "discount": 0.2},
                "levels": [
                    {
                        "technique": {"kind": "primary"},
                        "store": {"catalog": "midrange_disk_array",
                                  "id": "array"},
                    },
                    {
                        "technique": {"kind": "split_mirror",
                                      "accumulation_window": "12 hr",
                                      "retention_count": 4},
                        "store": {"ref": "array"},
                    },
                    {
                        "technique": {"kind": "backup",
                                      "full_accumulation_window": "1 wk",
                                      "full_propagation_window": "48 hr",
                                      "full_hold_window": "1 hr",
                                      "retention_count": 4},
                        "store": {"catalog": "enterprise_tape_library"},
                        "transport": {"catalog": "san_link"},
                    },
                ],
            }
        )
        assert design.name == "json-design"
        assert design.level(1).store is design.level(0).store
        assert design.recovery_facility.discount == 0.2

    def test_feeds_from_builds_branches(self):
        design = design_from_spec(
            {
                "name": "branched",
                "levels": [
                    {
                        "technique": {"kind": "primary"},
                        "store": {"catalog": "midrange_disk_array", "id": "array"},
                    },
                    {
                        "technique": {"kind": "snapshot",
                                      "accumulation_window": "12 hr",
                                      "retention_count": 4},
                        "store": {"ref": "array"},
                    },
                    {
                        "technique": {"kind": "batched_async_mirror"},
                        "store": {"catalog": "midrange_disk_array",
                                  "name": "dr-array",
                                  "location": {"region": "r2", "site": "dr"}},
                        "transport": {"catalog": "oc3_links", "link_count": 2},
                        "feeds_from": 0,
                    },
                ],
            }
        )
        assert design.level(2).parent_index == 0

    def test_unknown_device_ref_rejected(self):
        with pytest.raises(DesignError):
            design_from_spec(
                {
                    "name": "bad",
                    "levels": [
                        {"technique": {"kind": "primary"},
                         "store": {"ref": "ghost"}},
                    ],
                }
            )

    def test_evaluable_end_to_end(self):
        """A JSON design must run through the whole pipeline."""
        from repro import evaluate
        from repro.scenarios import FailureScenario
        from repro.workload.presets import cello
        from repro.casestudy import case_study_requirements

        design = design_from_spec("weekly vault, daily F")
        result = evaluate(
            design, cello(), FailureScenario.array_failure("primary-array"),
            case_study_requirements(),
        )
        assert result.recent_data_loss == pytest.approx(37 * HOUR)


class TestScenarioAndRequirementSpecs:
    def test_scope_shorthand(self):
        assert scenario_from_spec("array").scope is FailureScope.DISK_ARRAY
        assert scenario_from_spec("object").scope is FailureScope.DATA_OBJECT
        assert scenario_from_spec("site").scope is FailureScope.SITE

    def test_object_defaults(self):
        scenario = scenario_from_spec("object")
        assert scenario.object_size == 1024 * 1024

    def test_full_scenario(self):
        scenario = scenario_from_spec(
            {"scope": "object", "object_size": "5 MB",
             "recovery_target_age": "24 hr"}
        )
        assert scenario.object_size == 5 * 1024 * 1024
        assert scenario.recovery_target_age == 24 * HOUR

    def test_requirements(self):
        reqs = requirements_from_spec(
            {"unavailability_per_hour": 1000, "loss_per_hour": 2000,
             "rto": "4 hr"}
        )
        assert reqs.outage_penalty(HOUR) == pytest.approx(1000)
        assert reqs.rto == 4 * HOUR

    def test_requirements_missing_rate_rejected(self):
        with pytest.raises(DesignError):
            requirements_from_spec({"loss_per_hour": 2000})


class TestProvenanceSpecs:
    def provenance(self):
        from repro import casestudy
        from repro.core.evaluate import evaluate
        from repro.workload.presets import cello

        return evaluate(
            casestudy.baseline_design(),
            cello(),
            casestudy.array_failure_scenario(),
            casestudy.case_study_requirements(),
        ).provenance

    def test_round_trip(self):
        provenance = self.provenance()
        spec = provenance_to_dict(provenance)
        assert provenance_from_spec(spec) == provenance
        # The dictionary survives a JSON round-trip too.
        import json

        assert provenance_from_spec(json.loads(json.dumps(spec))) == provenance

    def test_unknown_keys_ignored_on_load(self):
        # Forward compatibility: a record written by a newer version with
        # extra fields must still load, unlike the strict spec parsers.
        spec = provenance_to_dict(self.provenance())
        spec["added_in_a_future_version"] = {"nested": [1, 2]}
        restored = provenance_from_spec(spec)
        assert restored == self.provenance()

    def test_tuples_restored_from_json_lists(self):
        spec = provenance_to_dict(self.provenance())
        restored = provenance_from_spec(spec)
        assert isinstance(restored.validation_warnings, tuple)
        assert isinstance(restored.decisions, tuple)


class TestCanonicalJson:
    def test_sorted_keys_no_whitespace(self):
        from repro.serialization import canonical_json

        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_key_order_of_input_is_irrelevant(self):
        from repro.serialization import canonical_json

        assert canonical_json({"x": 1, "y": 2}) == canonical_json(
            {"y": 2, "x": 1}
        )


class TestAssessmentRoundTrip:
    def assessment(self):
        from repro import casestudy
        from repro.core.evaluate import evaluate
        from repro.workload.presets import cello

        return evaluate(
            casestudy.baseline_design(),
            cello(),
            casestudy.array_failure_scenario(),
            casestudy.case_study_requirements(),
        )

    def test_round_trip_preserves_outputs(self):
        from repro.serialization import assessment_from_dict, assessment_to_dict

        original = self.assessment()
        restored = assessment_from_dict(assessment_to_dict(original))
        assert restored.summary() == original.summary()
        assert restored.explain() == original.explain()
        assert restored.total_cost == original.total_cost
        assert restored.meets_objectives == original.meets_objectives
        assert restored.recovery.render_timeline() == (
            original.recovery.render_timeline()
        )

    def test_canonical_form_is_stable_through_a_round_trip(self):
        # Serialize, restore, serialize again: the canonical JSON must
        # not change, or cache keys of restored results would drift.
        import json

        from repro.serialization import (
            assessment_from_dict,
            assessment_to_dict,
            canonical_json,
        )

        first = assessment_to_dict(self.assessment())
        second = assessment_to_dict(
            assessment_from_dict(json.loads(json.dumps(first)))
        )
        assert canonical_json(first) == canonical_json(second)
