"""Cross-cutting property-based tests over the whole pipeline.

Hypothesis generates random (but convention-respecting) policies and
checks the invariants the paper's formulas imply:

* data loss equals the closed-form lag for simple hierarchies;
* more frequent RPs never lose more data;
* longer retention never shrinks a level's reach;
* penalties are linear in the penalty rates;
* recovery time is monotone in link provisioning;
* utilization is additive over techniques.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import casestudy
from repro.core.dataloss import level_range
from repro.core.demands import register_design_demands
from repro.devices.catalog import (
    enterprise_tape_library,
    midrange_disk_array,
    san_link,
)
from repro.units import HOUR, WEEK
from repro.workload.presets import cello

WORKLOAD = cello()
REQUIREMENTS = casestudy.case_study_requirements()

# Mirror windows in hours; backup cycles in days; retention counts small.
mirror_windows = st.floats(min_value=1.0, max_value=24.0)
backup_windows_days = st.floats(min_value=1.0, max_value=14.0)
retention_counts = st.integers(min_value=1, max_value=8)


def build_design(mirror_hours, backup_days, backup_ret, mirror_ret):
    """A convention-respecting mirror+backup design."""
    backup_acc = backup_days * 24 * HOUR
    mirror_acc = mirror_hours * HOUR
    design = repro.StorageDesign(
        "generated", recovery_facility=repro.SpareConfig.shared("9 hr", 0.2)
    )
    array = midrange_disk_array(spare=repro.SpareConfig.dedicated("60 s", 1.0))
    design.add_level(repro.PrimaryCopy(), store=array)
    design.add_level(repro.SplitMirror(mirror_acc, mirror_ret), store=array)
    design.add_level(
        repro.Backup(
            full_accumulation_window=backup_acc,
            full_propagation_window=min(backup_acc / 2, 48 * HOUR),
            full_hold_window=HOUR,
            retention_count=backup_ret,
        ),
        store=enterprise_tape_library(spare=repro.SpareConfig.dedicated("60 s", 1.0)),
        transport=san_link(),
    )
    return design


@st.composite
def designs(draw):
    mirror_hours = draw(mirror_windows)
    backup_days = draw(backup_windows_days)
    # Conventions: backup cycle >= mirror cycle, retention non-decreasing.
    if backup_days * 24 < mirror_hours:
        backup_days = mirror_hours / 24 + 1
    mirror_ret = draw(retention_counts)
    backup_ret = draw(st.integers(min_value=mirror_ret, max_value=mirror_ret + 8))
    return build_design(mirror_hours, backup_days, backup_ret, mirror_ret)


class TestDataLossProperties:
    @given(design=designs())
    @settings(max_examples=40, deadline=None)
    def test_array_loss_is_backup_lag(self, design):
        """For any valid mirror+backup design, an array failure loses
        exactly the backup level's closed-form lag."""
        register_design_demands(design, WORKLOAD)
        result = repro.core.compute_data_loss(
            design, repro.FailureScenario.array_failure("primary-array")
        )
        backup = design.level(2).technique
        expected = (
            backup.full_accumulation_window
            + backup.full_hold_window
            + backup.full_propagation_window
        )
        assert result.data_loss == pytest.approx(expected)

    @given(design=designs())
    @settings(max_examples=40, deadline=None)
    def test_object_loss_bounded_by_mirror_window(self, design):
        """A just-old-enough object rollback served by the mirror loses
        at most one mirror window."""
        register_design_demands(design, WORKLOAD)
        mirror = design.level(1).technique
        target_age = mirror.accumulation_window * 1.5  # inside the range
        if mirror.retention_span() < target_age:
            return  # not retained; property vacuous for this sample
        result = repro.core.compute_data_loss(
            design,
            repro.FailureScenario.object_corruption("1 MB", target_age),
        )
        assert result.data_loss <= mirror.accumulation_window + 1e-6

    @given(
        hours_a=st.floats(min_value=1.0, max_value=12.0),
        factor=st.floats(min_value=1.1, max_value=4.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_more_frequent_backups_never_lose_more(self, hours_a, factor):
        fast = build_design(1.0, hours_a, 4, 4)
        slow = build_design(1.0, hours_a * factor, 4, 4)
        register_design_demands(fast, WORKLOAD)
        fast_loss = repro.core.compute_data_loss(
            fast, repro.FailureScenario.array_failure("primary-array")
        ).data_loss
        register_design_demands(slow, WORKLOAD)
        slow_loss = repro.core.compute_data_loss(
            slow, repro.FailureScenario.array_failure("primary-array")
        ).data_loss
        assert fast_loss <= slow_loss + 1e-6


class TestRangeProperties:
    @given(
        retention_small=st.integers(min_value=1, max_value=6),
        extra=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_longer_retention_extends_reach(self, retention_small, extra):
        short = build_design(2.0, 7.0, retention_small, retention_small)
        deep = build_design(2.0, 7.0, retention_small + extra, retention_small)
        short_range = level_range(short, short.level(2))
        deep_range = level_range(deep, deep.level(2))
        assert deep_range.oldest_age > short_range.oldest_age
        assert deep_range.newest_age == pytest.approx(short_range.newest_age)


class TestCostProperties:
    @given(scale=st.floats(min_value=0.1, max_value=20.0))
    @settings(max_examples=20, deadline=None)
    def test_penalties_linear_in_rates(self, scale):
        design = casestudy.baseline_design()
        scenario = repro.FailureScenario.array_failure("primary-array")
        base = repro.evaluate(
            design, WORKLOAD, scenario,
            repro.BusinessRequirements.per_hour(10_000, 10_000),
        )
        scaled = repro.evaluate(
            casestudy.baseline_design(), WORKLOAD, scenario,
            repro.BusinessRequirements.per_hour(10_000 * scale, 10_000 * scale),
        )
        assert scaled.costs.total_penalties == pytest.approx(
            scale * base.costs.total_penalties, rel=1e-9
        )

    @given(links=st.integers(min_value=1, max_value=12))
    @settings(max_examples=12, deadline=None)
    def test_recovery_time_monotone_in_links(self, links):
        fewer = casestudy.async_batch_mirror_design(links)
        more = casestudy.async_batch_mirror_design(links + 1)
        scenario = repro.FailureScenario.array_failure("primary-array")
        fewer_rt = repro.evaluate(
            fewer, WORKLOAD, scenario, REQUIREMENTS
        ).recovery_time
        more_rt = repro.evaluate(
            more, WORKLOAD, scenario, REQUIREMENTS
        ).recovery_time
        assert more_rt <= fewer_rt


class TestUtilizationProperties:
    @given(design=designs())
    @settings(max_examples=30, deadline=None)
    def test_device_utilization_is_sum_of_techniques(self, design):
        register_design_demands(design, WORKLOAD)
        for report in repro.core.compute_utilization(design).devices:
            assert report.bandwidth_utilization == pytest.approx(
                sum(t.bandwidth_utilization for t in report.by_technique)
            )
            assert report.capacity_utilization == pytest.approx(
                sum(t.capacity_utilization for t in report.by_technique)
            )

    @given(design=designs())
    @settings(max_examples=30, deadline=None)
    def test_registration_is_idempotent(self, design):
        register_design_demands(design, WORKLOAD)
        first = repro.core.compute_utilization(design).max_capacity_utilization
        register_design_demands(design, WORKLOAD)
        second = repro.core.compute_utilization(design).max_capacity_utilization
        assert first == pytest.approx(second)
