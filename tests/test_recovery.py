"""Recovery-time planning (section 3.3.4, Figure 4)."""

import pytest

from repro import casestudy
from repro.core import StorageDesign, plan_recovery
from repro.core.demands import register_design_demands
from repro.devices import SpareConfig
from repro.devices.catalog import midrange_disk_array, oc3_links
from repro.exceptions import RecoveryError
from repro.scenarios import FailureScenario
from repro.scenarios.locations import PRIMARY_SITE, REMOTE_SITE
from repro.techniques import BatchedAsyncMirror, PrimaryCopy
from repro.units import GB, HOUR, MB
from repro.workload.presets import cello


@pytest.fixture
def workload():
    return cello()


@pytest.fixture
def baseline(workload):
    design = casestudy.baseline_design()
    register_design_demands(design, workload)
    return design


@pytest.fixture
def mirror_design(workload):
    design = casestudy.async_batch_mirror_design(1)
    register_design_demands(design, workload)
    return design


class TestObjectRecovery:
    def test_intra_array_copy_is_milliseconds(self, baseline, workload):
        scenario = FailureScenario.object_corruption(1 * MB, "24 hr")
        plan = plan_recovery(baseline, scenario, workload)
        # Paper Table 6: 0.004 s (1 MB read + written on the same array
        # at ~500 MB/s available).
        assert plan.recovery_time == pytest.approx(0.004, rel=0.15)
        assert plan.source_name == "split mirror"
        assert plan.recovery_size == 1 * MB

    def test_no_provisioning_steps_when_nothing_failed(self, baseline, workload):
        scenario = FailureScenario.object_corruption(1 * MB, "24 hr")
        plan = plan_recovery(baseline, scenario, workload)
        assert all(step.kind != "provision" for step in plan.steps)


class TestArrayRecovery:
    def test_transfer_dominates(self, baseline, workload):
        plan = plan_recovery(
            baseline, FailureScenario.array_failure("primary-array"), workload
        )
        assert plan.source_name == "backup"
        # ~1360 GB at 0.7 x min(240 - 8.1, 512 - 12.2) MB/s plus the
        # 60 s hot spare and 36 s tape load: the paper's 2.4 h.
        assert plan.recovery_time == pytest.approx(2.4 * HOUR, rel=0.05)
        transfer = [s for s in plan.steps if s.kind == "transfer"][0]
        assert transfer.duration > 0.9 * plan.recovery_time

    def test_hot_spare_provisioning_present(self, baseline, workload):
        plan = plan_recovery(
            baseline, FailureScenario.array_failure("primary-array"), workload
        )
        provisions = [s for s in plan.steps if s.kind == "provision"]
        assert len(provisions) == 1
        assert provisions[0].duration == pytest.approx(60.0)

    def test_recovers_full_dataset(self, baseline, workload):
        plan = plan_recovery(
            baseline, FailureScenario.array_failure("primary-array"), workload
        )
        assert plan.recovery_size == workload.data_capacity


class TestSiteRecovery:
    def test_shipment_dominates(self, baseline, workload):
        plan = plan_recovery(
            baseline, FailureScenario.site_disaster(PRIMARY_SITE), workload
        )
        assert plan.source_name == "remote vaulting"
        # 24 h shipment + ~2.4 h restore, with 9 h facility provisioning
        # fully overlapped: the paper's 26.4 h.
        assert plan.recovery_time == pytest.approx(26.4 * HOUR, rel=0.05)

    def test_provisioning_overlaps_shipment(self, baseline, workload):
        plan = plan_recovery(
            baseline, FailureScenario.site_disaster(PRIMARY_SITE), workload
        )
        ship = [s for s in plan.steps if s.kind == "shipment"][0]
        provisions = [s for s in plan.steps if s.kind == "provision"]
        assert len(provisions) == 2  # library + array stand-ins
        for step in provisions:
            assert step.start == 0.0
            assert step.end <= ship.end  # hidden under the 24 h transit

    def test_media_load_after_arrival(self, baseline, workload):
        plan = plan_recovery(
            baseline, FailureScenario.site_disaster(PRIMARY_SITE), workload
        )
        ship = [s for s in plan.steps if s.kind == "shipment"][0]
        load = [s for s in plan.steps if s.kind == "media-load"][0]
        assert load.start >= ship.end

    def test_timeline_renders(self, baseline, workload):
        plan = plan_recovery(
            baseline, FailureScenario.site_disaster(PRIMARY_SITE), workload
        )
        art = plan.render_timeline()
        assert "ship media" in art and "restore data" in art


class TestMirrorRecovery:
    def test_single_link_transfer_bound(self, mirror_design, workload):
        plan = plan_recovery(
            mirror_design, FailureScenario.array_failure("primary-array"), workload
        )
        # 1360 GB over one OC-3 (19.375 MB/s decimal, minus the 727 KB/s
        # batch traffic): paper reports 21.7 h.
        assert plan.recovery_time == pytest.approx(21.7 * HOUR, rel=0.05)

    def test_ten_links_cut_transfer_tenfold(self, workload):
        ten = casestudy.async_batch_mirror_design(10)
        register_design_demands(ten, workload)
        plan = plan_recovery(
            ten, FailureScenario.array_failure("primary-array"), workload
        )
        assert plan.recovery_time == pytest.approx(2.1 * HOUR, rel=0.1)

    def test_site_recovery_adds_facility_provisioning(self, workload):
        ten = casestudy.async_batch_mirror_design(10)
        register_design_demands(ten, workload)
        array_plan = plan_recovery(
            ten, FailureScenario.array_failure("primary-array"), workload
        )
        site_plan = plan_recovery(
            ten, FailureScenario.site_disaster(PRIMARY_SITE), workload
        )
        # The paper's point: site recovery exceeds array recovery because
        # of the 9 h shared-facility provisioning.
        assert site_plan.recovery_time > array_plan.recovery_time
        assert site_plan.recovery_time == pytest.approx(
            9 * HOUR + array_plan.recovery_time - 60.0, rel=0.05
        )


class TestRecoveryErrors:
    def test_unrecoverable_scenario_raises(self, workload):
        design = StorageDesign("bare")  # no facility
        design.add_level(PrimaryCopy(), store=midrange_disk_array())
        design.add_level(
            BatchedAsyncMirror("1 min"),
            store=midrange_disk_array(name="remote", location=REMOTE_SITE,
                                      spare=SpareConfig.none()),
            transport=oc3_links(1),
        )
        register_design_demands(design, workload)
        # Site failure with no recovery facility: the mirror survives but
        # there is nowhere to restore the primary to.
        with pytest.raises(RecoveryError):
            plan_recovery(
                design, FailureScenario.site_disaster(PRIMARY_SITE), workload
            )

    def test_total_loss_raises(self, baseline, workload):
        scenario = FailureScenario.object_corruption(1 * MB, "20 yr")
        with pytest.raises(RecoveryError):
            plan_recovery(baseline, scenario, workload)
