"""Edge cases across modules: over-commitment, formatting, rendering."""

import pytest

import repro
from repro import casestudy
from repro.exceptions import CapacityExceededError, BandwidthExceededError
from repro.reporting import whatif_report
from repro.reporting.charts import stacked_bar_chart
from repro.scenarios import FailureScope
from repro.serialization import scenario_from_spec
from repro.simulation import SimulatedLoss, summarize_losses
from repro.units import (
    GB,
    PB,
    TB,
    YEAR,
    format_duration,
    format_money,
    format_size,
    parse_rate,
)
from repro.workload.presets import cello


class TestOvercommitment:
    """The paper's section 3.3.1 errors, end to end."""

    def test_capacity_overcommit_raises(self):
        oversized = cello().with_capacity(4000 * GB)  # 8 TB raw on 18.25 TB...
        design = casestudy.baseline_design()          # ...x6 copies: way over
        with pytest.raises(CapacityExceededError) as excinfo:
            repro.evaluate(
                design, oversized,
                repro.FailureScenario.array_failure("primary-array"),
                casestudy.case_study_requirements(),
            )
        assert excinfo.value.device_name == "primary-array"
        assert excinfo.value.utilization > 1.0

    def test_bandwidth_overcommit_raises(self):
        hot = cello().scaled(600.0)
        design = casestudy.baseline_design()
        with pytest.raises(BandwidthExceededError):
            repro.evaluate(
                design, hot,
                repro.FailureScenario.array_failure("primary-array"),
                casestudy.case_study_requirements(),
            )

    def test_non_strict_reports_instead_of_raising(self):
        oversized = cello().with_capacity(4000 * GB)
        result = repro.evaluate(
            casestudy.baseline_design(), oversized,
            repro.FailureScenario.array_failure("primary-array"),
            casestudy.case_study_requirements(),
            strict_utilization=False,
        )
        assert not result.utilization.feasible


class TestFormattingEdges:
    def test_petabyte_size(self):
        assert format_size(2 * PB) == "2.0 PB"

    def test_year_scale_duration(self):
        assert "yr" in format_duration(3 * YEAR)

    def test_infinite_money(self):
        assert format_money(float("inf")) == "unbounded"

    def test_gigabit_rate_parse(self):
        assert parse_rate("1 Gbps") == pytest.approx(1e9 / 8)


class TestRenderingEdges:
    def test_whatif_report_total_loss_cell(self):
        """A design that cannot survive a scenario renders 'total'."""
        workload = cello()
        design = casestudy.baseline_design().without_level(3)
        results = repro.evaluate_scenarios(
            design, workload,
            [casestudy.site_failure_scenario()],
            casestudy.case_study_requirements(),
        )
        grid = {design.name: results}
        text = whatif_report(grid, list(results.keys()))
        assert "total" in text

    def test_stacked_chart_skips_infinite_segment(self):
        chart = stacked_bar_chart(
            {"row": {"fine": 10.0, "boom": float("inf")}},
            segment_order=["fine", "boom"],
            width=10,
        )
        assert "=" not in chart.splitlines()[0]  # 'boom' glyph absent

    def test_empty_recovery_timeline(self):
        from repro.core.recovery import RecoveryPlan

        plan = RecoveryPlan(
            source_level_index=1,
            source_name="x",
            recovery_size=0.0,
            steps=(),
            recovery_time=0.0,
        )
        assert "recovery from x" in plan.render_timeline()


class TestScenarioSpecEdges:
    def test_building_and_region_scopes(self):
        assert scenario_from_spec("building").scope is FailureScope.BUILDING
        assert scenario_from_spec("region").scope is FailureScope.REGION

    def test_failed_location_spec(self):
        scenario = scenario_from_spec(
            {"scope": "site",
             "failed_location": {"region": "r", "site": "s"}}
        )
        assert scenario.failed_location.site == "s"


class TestMetricsEdges:
    def test_all_total_loss_summary(self):
        samples = [
            SimulatedLoss(
                failure_time=1.0, target_age=0.0, data_loss=float("inf"),
                source_level_index=None, total_loss=True,
            )
        ]
        stats = summarize_losses(samples)
        assert stats.total_loss_count == 1
        assert stats.max_loss == float("inf")
        assert not stats.within_bound(1e12)

    def test_tightness_zero_bound(self):
        samples = [
            SimulatedLoss(
                failure_time=1.0, target_age=0.0, data_loss=0.0,
                source_level_index=1, total_loss=False,
            )
        ]
        stats = summarize_losses(samples)
        assert stats.tightness(0.0) == 1.0


class TestWorkloadEdges:
    def test_short_window_blend_is_capped_by_first_sample(self):
        """Below the smallest sample, the no-coalescing extrapolation
        cannot exceed the measured unique bytes of that sample."""
        workload = cello()
        tiny = workload.batch_curve.unique_bytes(30.0)
        at_sample = workload.batch_curve.unique_bytes(60.0)
        assert tiny <= at_sample

    def test_unique_bytes_interpolation_endpoints(self):
        curve = cello().batch_curve
        # Exactly at the samples, interpolation must be exact.
        for window, rate in curve.points:
            assert curve.unique_bytes(window) == pytest.approx(window * rate)
