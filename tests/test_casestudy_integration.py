"""Integration: the full DSN'04 case study, checked against the paper.

These tests pin the framework's end-to-end numbers to the paper's
Tables 5, 6 and 7 (within the tolerances recorded in EXPERIMENTS.md).
"""

import pytest

from repro import casestudy, evaluate, evaluate_scenarios
from repro.scenarios import FailureScenario
from repro.scenarios.locations import PRIMARY_SITE
from repro.units import GB, HOUR, MB, TB
from repro.workload.presets import cello


@pytest.fixture(scope="module")
def workload():
    return cello()


@pytest.fixture(scope="module")
def requirements():
    return casestudy.case_study_requirements()


@pytest.fixture(scope="module")
def baseline_results(workload, requirements):
    return evaluate_scenarios(
        casestudy.baseline_design(),
        workload,
        casestudy.case_study_scenarios(),
        requirements,
    )


def result(results, word):
    for key, value in results.items():
        if word in key:
            return value
    raise KeyError(word)


class TestTable5Utilization:
    """Normal-mode bandwidth and capacity utilization of the baseline."""

    def test_array_utilization(self, baseline_results):
        util = next(iter(baseline_results.values())).utilization
        array = util.device("primary-array")
        assert array.bandwidth_utilization == pytest.approx(0.024, abs=0.002)
        assert array.capacity_utilization == pytest.approx(0.874, abs=0.005)
        # The parenthesized numbers of Table 5: 12.4 MB/s and 8.0 TB.
        assert array.bandwidth_demand == pytest.approx(12.4 * MB, rel=0.03)
        assert array.capacity_demand_logical == pytest.approx(
            6 * 1360 * GB, rel=0.001
        )

    def test_array_per_technique_shares(self, baseline_results):
        util = next(iter(baseline_results.values())).utilization
        shares = {
            t.technique: t for t in util.device("primary-array").by_technique
        }
        assert shares["foreground workload"].bandwidth_utilization == pytest.approx(
            0.002, abs=0.0005
        )
        assert shares["foreground workload"].capacity_utilization == pytest.approx(
            0.146, abs=0.002
        )
        assert shares["split mirror"].bandwidth_utilization == pytest.approx(
            0.006, abs=0.001
        )
        assert shares["split mirror"].capacity_utilization == pytest.approx(
            0.728, abs=0.003
        )
        assert shares["backup"].bandwidth_utilization == pytest.approx(
            0.016, abs=0.002
        )
        assert shares["backup"].capacity_utilization == 0.0

    def test_tape_library_utilization(self, baseline_results):
        util = next(iter(baseline_results.values())).utilization
        library = util.device("tape-library")
        assert library.bandwidth_utilization == pytest.approx(0.034, abs=0.002)
        assert library.capacity_utilization == pytest.approx(0.034, abs=0.002)
        assert library.bandwidth_demand == pytest.approx(8.1 * MB, rel=0.02)
        assert library.capacity_demand_logical == pytest.approx(6.6 * TB, rel=0.02)

    def test_vault_utilization(self, baseline_results):
        util = next(iter(baseline_results.values())).utilization
        vault = util.device("vault")
        assert vault.capacity_utilization == pytest.approx(0.026, abs=0.002)
        assert vault.capacity_demand_logical == pytest.approx(51.8 * TB, rel=0.02)
        assert vault.bandwidth_utilization == 0.0

    def test_global_maxima(self, baseline_results):
        util = next(iter(baseline_results.values())).utilization
        assert util.max_capacity_device == "primary-array"
        assert util.max_bandwidth_device == "tape-library"
        assert util.feasible


class TestTable6Dependability:
    """Worst-case recovery time and recent data loss per scenario."""

    def test_object_failure(self, baseline_results):
        a = result(baseline_results, "object")
        assert a.data_loss.source_name == "split mirror"
        assert a.recovery_time == pytest.approx(0.004, rel=0.15)
        assert a.recent_data_loss == pytest.approx(12 * HOUR)

    def test_array_failure(self, baseline_results):
        a = result(baseline_results, "array")
        assert a.data_loss.source_name == "backup"
        # Paper: 2.4 h (their tech-report constants); ours: 1.7 h.  Both
        # transfer-dominated; EXPERIMENTS.md records the gap.
        assert 1 * HOUR < a.recovery_time < 3 * HOUR
        assert a.recent_data_loss == pytest.approx(217 * HOUR)

    def test_site_failure(self, baseline_results):
        a = result(baseline_results, "site")
        assert a.data_loss.source_name == "remote vaulting"
        # Paper: 26.4 h; ours 25.7 h (same structure: 24 h shipment +
        # restore, 9 h provisioning overlapped).
        assert a.recovery_time == pytest.approx(26 * HOUR, rel=0.05)
        assert a.recent_data_loss == pytest.approx(1429 * HOUR)

    def test_recovery_ordering(self, baseline_results):
        times = [a.recovery_time for a in baseline_results.values()]
        assert times[0] < times[1] < times[2]


class TestFigure5Costs:
    def test_penalties_dominate_hardware_failures(self, baseline_results):
        for word in ("array", "site"):
            a = result(baseline_results, word)
            assert a.costs.total_penalties > 5 * a.costs.total_outlays

    def test_loss_penalty_dominates_outage_penalty(self, baseline_results):
        for word in ("array", "site"):
            a = result(baseline_results, word)
            assert a.costs.loss_penalty > 10 * a.costs.outage_penalty

    def test_totals_near_paper(self, baseline_results):
        # Paper: $11.94M (array), $71.94M (site).
        assert result(baseline_results, "array").total_cost == pytest.approx(
            11.94e6, rel=0.1
        )
        assert result(baseline_results, "site").total_cost == pytest.approx(
            71.94e6, rel=0.1
        )


class TestTable7WhatIfs:
    @pytest.fixture(scope="class")
    def table7(self, workload, requirements):
        scenarios = [
            casestudy.array_failure_scenario(),
            casestudy.site_failure_scenario(),
        ]
        rows = {}
        for name, design in casestudy.all_table7_designs().items():
            rows[name] = list(
                evaluate_scenarios(design, workload, scenarios, requirements).values()
            )
        return rows

    def test_weekly_vault_cuts_site_loss(self, table7):
        base_site = table7["baseline"][1]
        weekly_site = table7["weekly vault"][1]
        assert base_site.recent_data_loss == pytest.approx(1429 * HOUR)
        assert weekly_site.recent_data_loss == pytest.approx(253 * HOUR)

    def test_incrementals_cut_array_loss(self, table7):
        fi_array = table7["weekly vault, F+I"][0]
        assert fi_array.recent_data_loss == pytest.approx(73 * HOUR)
        # ... at slightly higher recovery time than the baseline (the
        # incremental must be restored on top of the full).
        assert fi_array.recovery_time > table7["baseline"][0].recovery_time

    def test_daily_fulls_cut_loss_further(self, table7):
        daily_array = table7["weekly vault, daily F"][0]
        assert daily_array.recent_data_loss == pytest.approx(37 * HOUR)
        daily_site = table7["weekly vault, daily F"][1]
        assert daily_site.recent_data_loss == pytest.approx(217 * HOUR)

    def test_snapshots_cheapest_tape_design(self, table7):
        snap = table7["weekly vault, daily F, snapshot"][0]
        daily = table7["weekly vault, daily F"][0]
        assert snap.costs.total_outlays < daily.costs.total_outlays
        # Same dependability, lower cost.
        assert snap.recent_data_loss == daily.recent_data_loss

    def test_mirroring_slashes_data_loss(self, table7):
        one_link = table7["asyncB mirror, 1 link"][0]
        assert one_link.recent_data_loss == pytest.approx(120.0)  # ~0.03 h

    def test_single_link_mirror_is_cheapest_total(self, table7):
        """The paper's 'ironic' headline: 1-link mirroring wins on total
        cost despite its long recovery."""
        one_link_totals = [a.total_cost for a in table7["asyncB mirror, 1 link"]]
        for name, assessments in table7.items():
            if name == "asyncB mirror, 1 link":
                continue
            for scenario_index, assessment in enumerate(assessments):
                assert one_link_totals[scenario_index] < assessment.total_cost

    def test_ten_links_cut_recovery_time(self, table7):
        one = table7["asyncB mirror, 1 link"][0]
        ten = table7["asyncB mirror, 10 links"][0]
        assert ten.recovery_time < one.recovery_time / 5
        assert ten.costs.total_outlays > 4 * one.costs.total_outlays

    def test_all_designs_feasible(self, table7):
        for assessments in table7.values():
            for a in assessments:
                assert a.utilization.feasible


class TestEvaluateSingle:
    def test_evaluate_matches_evaluate_scenarios(self, workload, requirements):
        single = evaluate(
            casestudy.baseline_design(),
            workload,
            FailureScenario.array_failure("primary-array"),
            requirements,
        )
        assert single.recent_data_loss == pytest.approx(217 * HOUR)
        assert single.summary()

    def test_objectives_reported(self, workload):
        from repro.scenarios import BusinessRequirements

        strict = BusinessRequirements.per_hour(
            50_000, 50_000, rto="1 hr", rpo="1 hr"
        )
        a = evaluate(
            casestudy.baseline_design(),
            workload,
            FailureScenario.array_failure("primary-array"),
            strict,
        )
        assert not a.meets_objectives
