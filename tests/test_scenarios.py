"""Locations, failure scopes/scenarios and business requirements."""

import pytest

from repro.exceptions import DesignError
from repro.scenarios import (
    BusinessRequirements,
    FailureScenario,
    FailureScope,
    Location,
)
from repro.scenarios.locations import PRIMARY_SITE, REMOTE_SITE
from repro.units import HOUR, MB


class TestLocation:
    def test_containment(self):
        a = Location("r1", "s1", "b1")
        b = Location("r1", "s1", "b2")
        c = Location("r1", "s2", "b1")
        d = Location("r2", "s1", "b1")
        assert a.same_site(b) and not a.same_building(b)
        assert a.same_region(c) and not a.same_site(c)
        assert not a.same_region(d)
        assert a.same_building(a)

    def test_default_building(self):
        loc = Location("r", "s")
        assert loc.building == "main"

    def test_empty_field_rejected(self):
        with pytest.raises(DesignError):
            Location("", "s")

    def test_label(self):
        assert Location("r", "s", "b").label() == "r/s/b"

    def test_module_constants_differ(self):
        assert not PRIMARY_SITE.same_region(REMOTE_SITE)


class TestFailureScope:
    def test_hardware_flag(self):
        assert not FailureScope.DATA_OBJECT.is_hardware
        for scope in (
            FailureScope.DISK_ARRAY,
            FailureScope.BUILDING,
            FailureScope.SITE,
            FailureScope.REGION,
        ):
            assert scope.is_hardware

    def test_fails_location_granularity(self):
        here = Location("r1", "s1", "b1")
        same_site = Location("r1", "s1", "b2")
        same_region = Location("r1", "s2")
        elsewhere = Location("r2", "s9")
        assert FailureScope.BUILDING.fails_location(here, here)
        assert not FailureScope.BUILDING.fails_location(here, same_site)
        assert FailureScope.SITE.fails_location(here, same_site)
        assert not FailureScope.SITE.fails_location(here, same_region)
        assert FailureScope.REGION.fails_location(here, same_region)
        assert not FailureScope.REGION.fails_location(here, elsewhere)

    def test_object_scope_fails_no_hardware(self):
        here = Location("r", "s")
        assert not FailureScope.DATA_OBJECT.fails_location(here, here)


class TestFailureScenario:
    def test_object_corruption(self):
        scenario = FailureScenario.object_corruption(1 * MB, "24 hr")
        assert scenario.scope is FailureScope.DATA_OBJECT
        assert scenario.object_size == 1 * MB
        assert scenario.recovery_target_age == 24 * HOUR

    def test_array_failure(self):
        scenario = FailureScenario.array_failure("primary-array")
        assert scenario.failed_device == "primary-array"
        assert scenario.recovery_target_age == 0.0

    def test_site_disaster(self):
        scenario = FailureScenario.site_disaster(PRIMARY_SITE)
        assert scenario.scope is FailureScope.SITE
        assert scenario.failed_location is PRIMARY_SITE

    def test_region_and_building_constructors(self):
        assert FailureScenario.building_disaster().scope is FailureScope.BUILDING
        assert FailureScenario.region_disaster().scope is FailureScope.REGION

    def test_array_without_device_rejected(self):
        with pytest.raises(DesignError):
            FailureScenario(scope=FailureScope.DISK_ARRAY)

    def test_object_without_size_rejected(self):
        with pytest.raises(DesignError):
            FailureScenario(scope=FailureScope.DATA_OBJECT)

    def test_negative_target_age_rejected(self):
        with pytest.raises(DesignError):
            FailureScenario.object_corruption(1 * MB, -3)

    def test_describe_is_informative(self):
        text = FailureScenario.object_corruption(1 * MB, "24 hr").describe()
        assert "object" in text and "24" in text


class TestBusinessRequirements:
    def test_per_hour_conversion(self):
        reqs = BusinessRequirements.per_hour(50_000, 50_000)
        assert reqs.outage_penalty(1 * HOUR) == pytest.approx(50_000)
        assert reqs.loss_penalty(2 * HOUR) == pytest.approx(100_000)

    def test_total_penalty(self):
        reqs = BusinessRequirements.per_hour(10_000, 20_000)
        assert reqs.total_penalty(1 * HOUR, 1 * HOUR) == pytest.approx(30_000)

    def test_negative_rates_rejected(self):
        with pytest.raises(DesignError):
            BusinessRequirements(-1, 0)

    def test_objectives_unset_always_met(self):
        reqs = BusinessRequirements.per_hour(1, 1)
        assert reqs.meets_objectives(1e9, 1e9)

    def test_rto_rpo_checks(self):
        reqs = BusinessRequirements.per_hour(1, 1, rto="2 hr", rpo="1 hr")
        assert reqs.meets_rto(HOUR) and not reqs.meets_rto(3 * HOUR)
        assert reqs.meets_rpo(HOUR) and not reqs.meets_rpo(2 * HOUR)
        assert not reqs.meets_objectives(3 * HOUR, 0)

    def test_negative_penalty_inputs_clamped(self):
        reqs = BusinessRequirements.per_hour(10, 10)
        assert reqs.outage_penalty(-5) == 0.0
        assert reqs.loss_penalty(-5) == 0.0
