#!/usr/bin/env python3
"""CI smoke test: the telemetry fabric, end to end, against a live run.

Drives ``repro optimize --workers 4 --progress --run-dir <out>
--serve-metrics 0`` in a thread, then — while the sweep is running —
discovers the bound port via :func:`repro.obs.http.active_server` and
scrapes ``/metrics``, ``/healthz`` and ``/progress``.  After the run
it checks the ledger round-trip: worker-PID spans in ``spans.jsonl``
(proof that trace context crossed the process pool), a finished
manifest, an OpenMetrics exposition, and progress heartbeats.

Usage: python .github/scripts/telemetry_smoke.py [out-dir]
"""

import json
import os
import sys
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main  # noqa: E402
from repro.obs.http import active_server  # noqa: E402

WORKERS = 4


def fail(message: str) -> "sys.NoReturn":
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_smoke(out_dir: str) -> None:
    result = {}

    def run():
        result["code"] = main(
            [
                "optimize",
                "--workers",
                str(WORKERS),
                "--progress",
                "--run-dir",
                out_dir,
                "--serve-metrics",
                "0",
            ]
        )

    thread = threading.Thread(target=run, name="repro-optimize")
    thread.start()

    # The server starts before the sweep (and well before the worker
    # pool finishes spawning), so polling for it here lands mid-run.
    deadline = time.monotonic() + 30.0
    server = None
    while server is None and time.monotonic() < deadline:
        server = active_server()
        if server is None and not thread.is_alive():
            fail("run finished before the telemetry server was observed")
        if server is None:
            time.sleep(0.001)
    if server is None:
        fail("telemetry server never came up")

    def get(path: str):
        with urllib.request.urlopen(f"{server.url}{path}", timeout=5) as resp:
            return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()

    status, content_type, metrics_body = get("/metrics")
    if status != 200 or "openmetrics-text" not in content_type:
        fail(f"/metrics: status {status}, content-type {content_type!r}")
    if not metrics_body.rstrip().endswith("# EOF"):
        fail("/metrics exposition does not end with '# EOF'")
    status, _, health_body = get("/healthz")
    health = json.loads(health_body)
    if status != 200 or health.get("status") != "ok":
        fail(f"/healthz: status {status}, body {health_body!r}")
    status, _, progress_body = get("/progress")
    if status != 200:
        fail(f"/progress: status {status}")
    json.loads(progress_body)
    print(f"live scrape ok on {server.url}: /metrics /healthz /progress")

    thread.join(timeout=300.0)
    if thread.is_alive():
        fail("optimize run did not finish within 300 s")
    if result.get("code") != 0:
        fail(f"optimize exited with code {result.get('code')!r}")

    out = Path(out_dir)
    manifest = json.loads((out / "manifest.json").read_text())
    for key in ("run_id", "status", "spans", "heartbeats", "wall_time_s"):
        if key not in manifest:
            fail(f"manifest.json is missing {key!r}")
    if manifest["status"] != "ok":
        fail(f"manifest status is {manifest['status']!r}, expected 'ok'")
    if manifest["run_id"] != health["run_id"]:
        fail("manifest run_id does not match the /healthz run_id")

    records = [
        json.loads(line)
        for line in (out / "spans.jsonl").read_text().splitlines()
        if line.strip()
    ]
    spans = [r for r in records if r.get("kind") == "span"]
    worker_pids = {
        r["attributes"]["pid"] for r in spans if "pid" in r.get("attributes", {})
    }
    if not worker_pids:
        fail("no worker-PID spans in spans.jsonl — capsules did not merge")
    if os.getpid() in worker_pids:
        fail("parent PID tagged as a worker PID in spans.jsonl")
    task_spans = [r for r in spans if r["name"] == "engine.task"]
    if len(task_spans) < 2:
        fail(f"expected several engine.task spans, found {len(task_spans)}")

    prom = (out / "metrics.prom").read_text()
    if not prom.rstrip().endswith("# EOF"):
        fail("metrics.prom does not end with '# EOF'")
    if "engine_tasks_total" not in prom:
        fail("metrics.prom has no engine_tasks_total counter")

    heartbeats = [
        json.loads(line)
        for line in (out / "progress.jsonl").read_text().splitlines()
        if line.strip()
    ]
    if not heartbeats:
        fail("progress.jsonl recorded no heartbeats")
    final = heartbeats[-1]
    if final.get("done") != final.get("total") or not final.get("total"):
        fail(f"final heartbeat is not a completed sweep: {final!r}")

    print(
        f"ledger ok: {manifest['spans']} spans, worker pids {sorted(worker_pids)}, "
        f"{len(heartbeats)} heartbeats, run {manifest['run_id']}"
    )
    print("telemetry smoke passed")


if __name__ == "__main__":
    run_smoke(sys.argv[1] if len(sys.argv) > 1 else "out")
