"""Virtual snapshot point-in-time copies (copy-on-write).

The paper models an *update-in-place* variant of virtual snapshots: old
values are copied to a new location before an update is applied, so
every foreground write incurs **one additional read and one additional
write** on the hosting array.  Capacity-wise, a snapshot shares all
unmodified data with the primary copy and only stores the unique
updates accumulated during its window (section 3.2.3).

Snapshots live on the same array as the primary copy; restores are
intra-array copies.
"""

from __future__ import annotations

from typing import Optional, Union

from ..devices.base import Device
from ..exceptions import PolicyError
from ..units import HOUR
from ..workload.spec import Workload
from .base import CopyRepresentation, ProtectionTechnique, check_windows
from .timeline import CycleModel


class VirtualSnapshot(ProtectionTechnique):
    """Copy-on-write snapshots on the primary array.

    Parameters
    ----------
    accumulation_window:
        Time between snapshots (``accW``); each snapshot captures the
        state at the end of its window.
    retention_count:
        Number of snapshots retained (``retCnt``).
    """

    co_located_with_source = True
    copy_representation = CopyRepresentation.PARTIAL
    propagation_representation = CopyRepresentation.PARTIAL

    def __init__(
        self,
        accumulation_window: Union[str, float],
        retention_count: int,
        name: str = "virtual snapshot",
    ):
        super().__init__(name)
        acc, _prop, _hold, ret = check_windows(
            name, accumulation_window, 0.0, 0.0, retention_count
        )
        self.accumulation_window = acc
        self.retention_count = ret

    def cycle(self) -> CycleModel:
        """Snapshots are instantaneous: no hold or propagation delay."""
        return CycleModel.single(
            accumulation_window=self.accumulation_window,
            hold_window=0.0,
            propagation_window=0.0,
            retention_count=self.retention_count,
            label="snapshot",
        )

    def validate(self, workload: Workload) -> None:
        if self.accumulation_window <= 0:
            raise PolicyError(f"{self.name}: accumulation window must be positive")

    def register_demands(
        self,
        workload: Workload,
        store: Device,
        source_store: Optional[Device] = None,
        transport: Optional[Device] = None,
        source_technique: Optional[ProtectionTechnique] = None,
    ) -> None:
        """Copy-on-write doubles every foreground write; deltas need space.

        Bandwidth: an extra read of the old value plus an extra write of
        it elsewhere for every foreground write — ``2 * avgUpdateR``.
        Capacity: each retained snapshot holds the unique updates of one
        accumulation window.
        """
        cow_bandwidth = 2.0 * workload.avg_update_rate
        delta_capacity = self.retention_count * workload.unique_bytes(
            self.accumulation_window
        )
        store.register_demand(
            self.name,
            bandwidth=cow_bandwidth,
            capacity=delta_capacity,
            note="copy-on-write overhead + snapshot deltas",
        )

    def describe(self) -> str:
        hours = self.accumulation_window / HOUR
        return (
            f"{self.name}: CoW snapshot every {hours:g} h, "
            f"{self.retention_count} retained"
        )
