"""Backup: copying RPs to separate hardware (tape library, disk, optical).

A backup policy cycles through propagation representations: a *full*
backup optionally followed by ``cycleCnt`` *incrementals*, which may be
**cumulative** (all changes since the last full — each one larger than
the previous, but restores need only the full plus the newest
incremental) or **differential** (changes since the last backup of any
kind — small and uniform, but restores must replay the whole chain).

Demands (paper section 3.2.3):

* **bandwidth** (on both the source array and the backup device): the
  larger of what the full requires (the entire dataset within the full
  propagation window) and what the largest incremental requires;
* **capacity** (backup device only): ``retCnt`` cycles of retained data
  — each cycle a full plus its incrementals — plus one additional full
  dataset copy, so a failure mid-full-backup never leaves the system
  without a complete restorable cycle.  The backup model places *no*
  capacity demand on the source array: a PiT technique (split mirror or
  snapshot) is assumed to provide the consistent image being backed up.

Worst-case restores transfer the full plus (for cumulative cycles) the
largest incremental, or (for differential cycles) the entire chain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Union

from ..devices.base import Device
from ..exceptions import PolicyError
from ..units import DAY, parse_duration
from ..workload.spec import Workload
from .base import CopyRepresentation, ProtectionTechnique, check_windows
from .timeline import CycleModel, RPEvent


class IncrementalKind(enum.Enum):
    """How an incremental backup accumulates changes."""

    CUMULATIVE = "cumulative"
    DIFFERENTIAL = "differential"


@dataclass(frozen=True)
class IncrementalPolicy:
    """The incremental half of a backup cycle.

    Parameters
    ----------
    kind:
        Cumulative or differential accumulation.
    count:
        Number of incrementals per cycle (``cycleCnt``).
    accumulation_window:
        Spacing between incrementals (24 h for daily incrementals).
    propagation_window / hold_window:
        Transmission duration and pre-transmission delay per incremental.
    """

    kind: IncrementalKind
    count: int
    accumulation_window: float
    propagation_window: float
    hold_window: float = 0.0

    def __init__(
        self,
        kind: IncrementalKind,
        count: int,
        accumulation_window: Union[str, float],
        propagation_window: Union[str, float],
        hold_window: Union[str, float] = 0.0,
    ):
        if not isinstance(kind, IncrementalKind):
            raise PolicyError(f"kind must be an IncrementalKind, got {kind!r}")
        if count < 1:
            raise PolicyError(f"incremental count must be >= 1, got {count}")
        acc, prop, hold, _ = check_windows(
            "incremental", accumulation_window, propagation_window, hold_window, 1
        )
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "count", int(count))
        object.__setattr__(self, "accumulation_window", acc)
        object.__setattr__(self, "propagation_window", prop)
        object.__setattr__(self, "hold_window", hold)

    @classmethod
    def daily_cumulative(
        cls,
        count: int = 5,
        propagation_window: Union[str, float] = "12 hr",
        hold_window: Union[str, float] = "1 hr",
    ) -> "IncrementalPolicy":
        """Daily cumulative incrementals (Table 7's "F+I" policy shape)."""
        return cls(
            kind=IncrementalKind.CUMULATIVE,
            count=count,
            accumulation_window="24 hr",
            propagation_window=propagation_window,
            hold_window=hold_window,
        )


class Backup(ProtectionTechnique):
    """A cyclic backup policy: fulls, optionally interleaved incrementals.

    Parameters
    ----------
    full_accumulation_window:
        Gap between the last RP of a cycle and the full's snapshot
        (``accW`` for fulls).  For a full-only policy this is simply the
        spacing between fulls and equals the cycle period.
    full_propagation_window / full_hold_window:
        The full backup's transmission window (the classic "backup
        window") and pre-transmission offset.
    retention_count:
        Number of retained *cycles* (``retCnt``).
    incremental:
        Optional :class:`IncrementalPolicy`; when present the cycle
        period becomes ``count * incr.accW + full.accW``.
    """

    copy_representation = CopyRepresentation.FULL
    propagation_representation = CopyRepresentation.FULL

    def __init__(
        self,
        full_accumulation_window: Union[str, float],
        full_propagation_window: Union[str, float],
        full_hold_window: Union[str, float] = 0.0,
        retention_count: int = 1,
        incremental: Optional[IncrementalPolicy] = None,
        name: str = "backup",
    ):
        super().__init__(name)
        acc, prop, hold, ret = check_windows(
            name,
            full_accumulation_window,
            full_propagation_window,
            full_hold_window,
            retention_count,
        )
        self.full_accumulation_window = acc
        self.full_propagation_window = prop
        self.full_hold_window = hold
        self.retention_count = ret
        self.incremental = incremental

    # -- cycle structure --------------------------------------------------------------

    @property
    def cycle_period(self) -> float:
        """``cyclePer``: incrementals' spacings plus the full's window."""
        if self.incremental is None:
            return self.full_accumulation_window
        return (
            self.incremental.count * self.incremental.accumulation_window
            + self.full_accumulation_window
        )

    @property
    def cycle_count(self) -> int:
        """``cycleCnt``: number of secondary (incremental) windows."""
        return 0 if self.incremental is None else self.incremental.count

    def cycle(self) -> CycleModel:
        """Full at cycle offset 0; incrementals follow after the full's window.

        The full's accumulation window is the RP-free stretch right after
        its snapshot (the weekend, for the classic weekend-full policy);
        the incrementals then arrive at their own spacing, and the next
        full snapshots one incremental-window after the last incremental.
        This is the layout under which the paper's Table 7 "F+I" row
        loses at most ``accW_incr + holdW + propW_full`` (73 h).
        """
        events: "List[RPEvent]" = [
            RPEvent(
                offset=0.0,
                hold=self.full_hold_window,
                prop=self.full_propagation_window,
                is_full=True,
                label="full",
            )
        ]
        if self.incremental is not None:
            for index in range(self.incremental.count):
                events.append(
                    RPEvent(
                        offset=self.full_accumulation_window
                        + index * self.incremental.accumulation_window,
                        hold=self.incremental.hold_window,
                        prop=self.incremental.propagation_window,
                        is_full=False,
                        label=f"incr-{index + 1}",
                    )
                )
        return CycleModel(
            period=self.cycle_period,
            events=events,
            retention_count=self.retention_count,
        )

    # -- sizes --------------------------------------------------------------------------

    def incremental_size(self, workload: Workload, index: int) -> float:
        """Bytes in the ``index``-th (1-based) incremental of a cycle."""
        if self.incremental is None or index < 1:
            return 0.0
        if self.incremental.kind is IncrementalKind.CUMULATIVE:
            window = index * self.incremental.accumulation_window
        else:
            window = self.incremental.accumulation_window
        return workload.unique_bytes(window)

    def largest_incremental_size(self, workload: Workload) -> float:
        """The biggest incremental of the cycle (the last cumulative one)."""
        if self.incremental is None:
            return 0.0
        return max(
            self.incremental_size(workload, index)
            for index in range(1, self.incremental.count + 1)
        )

    def cycle_bytes(self, workload: Workload) -> float:
        """Retained bytes per cycle: one full plus all its incrementals."""
        total = workload.data_capacity
        for index in range(1, self.cycle_count + 1):
            total += self.incremental_size(workload, index)
        return total

    def required_bandwidth(self, workload: Workload) -> float:
        """The paper's backup bandwidth demand (section 3.2.3).

        The maximum of the full's rate (whole dataset within the full
        propagation window) and the largest incremental's rate.
        """
        full_rate = workload.data_capacity / self.full_propagation_window
        if self.incremental is None:
            return full_rate
        incremental_rate = (
            self.largest_incremental_size(workload)
            / self.incremental.propagation_window
        )
        return max(full_rate, incremental_rate)

    def propagated_bytes_per_cycle(self, workload: Workload) -> float:
        """One full plus every incremental: exactly the retained cycle."""
        return self.cycle_bytes(workload)

    # -- framework interface --------------------------------------------------------------

    def validate(self, workload: Workload) -> None:
        if self.incremental is not None:
            span = self.incremental.count * self.incremental.accumulation_window
            if span >= self.cycle_period:
                raise PolicyError(
                    f"{self.name}: incrementals span the whole cycle, "
                    "leaving no room for the full's accumulation window"
                )

    def register_demands(
        self,
        workload: Workload,
        store: Device,
        source_store: Optional[Device] = None,
        transport: Optional[Device] = None,
        source_technique: Optional[ProtectionTechnique] = None,
    ) -> None:
        """Read the source array, write the backup device, via transport.

        Capacity on the backup device is ``retCnt`` cycles plus one extra
        full; no capacity lands on the source (a PiT copy supplies the
        consistent image).
        """
        bandwidth = self.required_bandwidth(workload)
        capacity = (
            self.retention_count * self.cycle_bytes(workload)
            + workload.data_capacity
        )
        store.register_demand(
            self.name,
            bandwidth=bandwidth,
            capacity=capacity,
            note=f"{self.retention_count} cycles + in-progress full",
        )
        if source_store is not None:
            source_store.register_demand(
                self.name,
                bandwidth=bandwidth,
                capacity=0.0,
                note="backup reads from consistent PiT image",
            )
        if transport is not None:
            transport.register_demand(self.name, bandwidth=bandwidth)

    def recovery_size(self, workload: Workload, requested_bytes: float) -> float:
        """Worst case: the full plus the incrementals needed on top of it.

        Cumulative cycles replay one incremental (the largest);
        differential cycles replay the whole chain.  Object-level
        restores (``requested_bytes`` smaller than a full) read the
        object from the full plus its incremental deltas; the dominant
        term is still bounded by the same expression, so the model uses
        the minimum of the two.
        """
        if self.incremental is None:
            overhead = 0.0
        elif self.incremental.kind is IncrementalKind.CUMULATIVE:
            overhead = self.largest_incremental_size(workload)
        else:
            overhead = sum(
                self.incremental_size(workload, index)
                for index in range(1, self.incremental.count + 1)
            )
        if requested_bytes >= workload.data_capacity:
            return requested_bytes + overhead
        return min(requested_bytes + overhead, workload.data_capacity + overhead)

    def describe(self) -> str:
        days = self.cycle_period / DAY
        if self.incremental is None:
            return f"{self.name}: fulls every {days:g} d, {self.retention_count} cycles"
        return (
            f"{self.name}: full + {self.incremental.count} "
            f"{self.incremental.kind.value} incrementals per {days:g} d cycle, "
            f"{self.retention_count} cycles retained"
        )
