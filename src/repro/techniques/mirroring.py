"""Inter-array mirroring: synchronous, asynchronous and batched async.

All three variants keep an isolated copy of the current data on another
disk array (co-located or remote) and place bandwidth demands on the
interconnect and the destination array, plus a full-dataset capacity
demand on the destination (paper section 3.2.3).  They differ in *when*
updates propagate, which changes both the interconnect demand and the
worst-case data loss:

* **synchronous** — every update is applied at the secondary before the
  write completes.  The interconnect must sustain the *peak* update rate
  (``avgUpdateR * burstM``); data loss on failover is zero.
* **asynchronous** — updates propagate in the background, smoothing
  bursts through a small buffer: the interconnect sustains the *average*
  (non-unique) update rate; a short write-behind lag of buffered updates
  can be lost.
* **batched asynchronous** — overwrites within an accumulation window
  coalesce and each batch is applied atomically: the interconnect
  sustains only the *unique* update rate of the window
  (``batchUpdR(accW)``), at the price of losing up to a window plus its
  propagation time (the case study's 1-minute batches lose at most
  ~2 minutes).

Per the paper, inter-array mirroring uses the array's dedicated
replication interfaces, so no extra bandwidth demand lands on the
*source* array's client interface; and the asynchronous variants' small
staging buffers are not modeled ("typically a small fraction of the
array cache").
"""

from __future__ import annotations

from typing import Optional, Union

from ..devices.base import Device
from ..exceptions import NoCycleError, PolicyError
from ..units import parse_duration
from ..workload.spec import Workload
from .base import CopyRepresentation, ProtectionTechnique, check_windows
from .timeline import CycleModel


class _InterArrayMirror(ProtectionTechnique):
    """Shared demand plumbing for the three mirroring protocols."""

    copy_representation = CopyRepresentation.FULL

    def interconnect_demand(self, workload: Workload) -> float:
        """Bandwidth the mirror needs from the interconnect, bytes/s."""
        raise NotImplementedError

    def average_propagation_rate(self, workload: Workload) -> float:
        """Every (possibly coalesced) update eventually crosses the link.

        Synchronous and plain asynchronous mirrors move the raw update
        stream (average ``avgUpdateR``); the batched variant moves only
        the unique bytes of each window.
        """
        return workload.avg_update_rate

    def register_demands(
        self,
        workload: Workload,
        store: Device,
        source_store: Optional[Device] = None,
        transport: Optional[Device] = None,
        source_technique: Optional[ProtectionTechnique] = None,
    ) -> None:
        """Interconnect + destination-array bandwidth, full-copy capacity."""
        bandwidth = self.interconnect_demand(workload)
        store.register_demand(
            self.name,
            bandwidth=bandwidth,
            capacity=workload.data_capacity,
            note="mirror copy + applied updates",
        )
        if transport is not None:
            transport.register_demand(
                self.name,
                bandwidth=bandwidth,
                note="update propagation",
            )


class SyncMirror(_InterArrayMirror):
    """Synchronous inter-array mirroring: zero data loss, peak-rate links.

    Parameters
    ----------
    name:
        Technique label.

    Notes
    -----
    The mirror holds exactly the current state: it has no historical
    retention, so it can only serve recoveries targeting "now".
    """

    def __init__(self, name: str = "sync mirror"):
        super().__init__(name)

    def cycle(self) -> CycleModel:
        raise NoCycleError(
            "synchronous mirrors propagate continuously and have no RP cycle"
        )

    def worst_lag(self) -> float:
        """Every write is applied remotely before completing: no lag."""
        return 0.0

    def worst_spacing(self) -> float:
        return 0.0

    def retention_span(self) -> float:
        """The mirror holds only the current state."""
        return 0.0

    def full_availability_delay(self) -> float:
        return 0.0

    def retention_window(self) -> float:
        return 0.0

    def interconnect_demand(self, workload: Workload) -> float:
        """Synchronous writes cannot be smoothed: provision for the peak."""
        return workload.peak_update_rate

    def describe(self) -> str:
        return f"{self.name}: synchronous inter-array mirror"


class AsyncMirror(_InterArrayMirror):
    """Asynchronous write-behind mirroring.

    Parameters
    ----------
    write_behind_lag:
        Worst-case age of buffered-but-unsent updates (the write-behind
        queue drain time); these updates are lost on a primary failure.
    """

    def __init__(
        self,
        write_behind_lag: Union[str, float] = "30 s",
        name: str = "async mirror",
    ):
        super().__init__(name)
        lag = parse_duration(write_behind_lag)
        if lag < 0:
            raise PolicyError(f"{name}: write-behind lag must be >= 0")
        self.write_behind_lag = lag

    def cycle(self) -> CycleModel:
        raise NoCycleError(
            "asynchronous mirrors propagate continuously and have no RP cycle"
        )

    def worst_lag(self) -> float:
        """Up to one write-behind queue of updates can be in flight."""
        return self.write_behind_lag

    def worst_spacing(self) -> float:
        return 0.0

    def retention_span(self) -> float:
        """The mirror holds only the (slightly stale) current state."""
        return 0.0

    def full_availability_delay(self) -> float:
        return self.write_behind_lag

    def retention_window(self) -> float:
        return 0.0

    def interconnect_demand(self, workload: Workload) -> float:
        """Buffering smooths bursts: provision for the average rate."""
        return workload.avg_update_rate

    def describe(self) -> str:
        return (
            f"{self.name}: asynchronous mirror, "
            f"<= {self.write_behind_lag:g} s behind"
        )


class BatchedAsyncMirror(_InterArrayMirror):
    """Batched asynchronous mirroring (Seneca / SnapMirror style).

    Parameters
    ----------
    accumulation_window:
        Batch collection window (``accW``; 1 minute in Table 7).
    propagation_window:
        Time to transmit a batch (``propW``); defaults to the
        accumulation window (back-to-back batches).
    hold_window:
        Delay between closing a batch and sending it (``holdW``).
    retention_count:
        Batches retained at the secondary; the current image plus any
        not-yet-applied batch, so 1 by default.
    """

    propagation_representation = CopyRepresentation.PARTIAL

    def __init__(
        self,
        accumulation_window: Union[str, float] = "1 min",
        propagation_window: Union[str, float, None] = None,
        hold_window: Union[str, float] = 0.0,
        retention_count: int = 1,
        name: str = "asyncB mirror",
    ):
        super().__init__(name)
        prop = accumulation_window if propagation_window is None else propagation_window
        acc, prop_s, hold, ret = check_windows(
            name, accumulation_window, prop, hold_window, retention_count
        )
        self.accumulation_window = acc
        self.propagation_window = prop_s
        self.hold_window = hold
        self.retention_count = ret

    def cycle(self) -> CycleModel:
        return CycleModel.single(
            accumulation_window=self.accumulation_window,
            hold_window=self.hold_window,
            propagation_window=self.propagation_window,
            retention_count=self.retention_count,
            label="batch",
        )

    def interconnect_demand(self, workload: Workload) -> float:
        """A batch of unique updates must cross within one propagation window."""
        return (
            workload.unique_bytes(self.accumulation_window)
            / self.propagation_window
        )

    def average_propagation_rate(self, workload: Workload) -> float:
        """Coalescing: only each window's unique bytes cross the link."""
        return (
            workload.unique_bytes(self.accumulation_window)
            / self.accumulation_window
        )

    def describe(self) -> str:
        return (
            f"{self.name}: batched async mirror, "
            f"{self.accumulation_window:g}s batches"
        )
