"""Retrieval-point timeline math (paper section 3.3.2, Figures 2 and 3).

A data protection level receives retrieval points on a repeating
schedule.  For simple policies the schedule is one RP per accumulation
window; richer policies cycle through several *propagation
representations* (the classic example: a full backup every weekend, a
cumulative incremental every weekday).  :class:`CycleModel` captures one
cycle of that schedule as a list of :class:`RPEvent` and answers the
three questions the compositional models ask:

* **worst-case time lag** — how out-of-date can this level be, at the
  worst possible failure instant?  For a single-event cycle this is the
  paper's ``accW + holdW + propW``; for mixed cycles the model accounts
  for incrementals being unusable until their base full has arrived.
* **worst usable-RP spacing** — when the recovery target falls *within*
  the level's retained range, the worst-case loss is the largest gap
  between consecutive usable RP snapshots (the paper's ``accW``).
* **retention span** — ``(retCnt - 1) * cyclePer``: how far back the
  level is guaranteed to reach.

The guaranteed range of Figure 3 combines these with the summed
``holdW + propW`` of the levels an RP traverses to get here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..exceptions import PolicyError


@dataclass(frozen=True)
class RPEvent:
    """One retrieval point in a policy cycle.

    Parameters
    ----------
    offset:
        Snapshot time of this RP within the cycle, in ``[0, period)``
        seconds.  The RP reflects the protected data *as of* this
        instant.
    hold:
        Hold window before transmission begins (``holdW``).
    prop:
        Propagation window: transmission duration (``propW``).
    is_full:
        True for a self-contained RP (a full copy or complete delta
        chain base); False for an incremental that can only be restored
        together with the most recent full at or before its snapshot.
    label:
        Display label ("full", "incr-3", ...).
    """

    offset: float
    hold: float = 0.0
    prop: float = 0.0
    is_full: bool = True
    label: str = "rp"

    def __post_init__(self) -> None:
        if self.offset < 0 or self.hold < 0 or self.prop < 0:
            raise PolicyError(
                f"RP event {self.label!r} windows must be >= 0 "
                f"(offset={self.offset}, hold={self.hold}, prop={self.prop})"
            )

    @property
    def availability_delay(self) -> float:
        """Delay from snapshot to availability at the level: hold + prop."""
        return self.hold + self.prop


class CycleModel:
    """One repeating cycle of RP arrivals at a level.

    Parameters
    ----------
    period:
        The cycle period (``cyclePer``), seconds.
    events:
        The cycle's RP events; at least one must be a full.
    retention_count:
        Number of cycles of RPs simultaneously retained (``retCnt``).
    """

    def __init__(
        self,
        period: float,
        events: Sequence[RPEvent],
        retention_count: int,
    ):
        if period <= 0:
            raise PolicyError(f"cycle period must be positive, got {period}")
        if not events:
            raise PolicyError("a cycle needs at least one RP event")
        if retention_count < 1:
            raise PolicyError(f"retention count must be >= 1, got {retention_count}")
        ordered = sorted(events, key=lambda e: e.offset)
        if not any(e.is_full for e in ordered):
            raise PolicyError("a cycle must contain at least one full RP")
        for event in ordered:
            if event.offset >= period:
                raise PolicyError(
                    f"RP event {event.label!r} offset {event.offset} falls "
                    f"outside the cycle period {period}"
                )
        self.period = float(period)
        self.events: Tuple[RPEvent, ...] = tuple(ordered)
        self.retention_count = int(retention_count)

    # -- unrolling helpers -------------------------------------------------------

    def _unrolled(self, cycles: int) -> "List[Tuple[float, float, RPEvent]]":
        """(snapshot_time, usable_time, event) for ``cycles`` repetitions.

        ``usable_time`` is when the RP can actually serve a restore: its
        own availability, or — for an incremental — the later of its own
        availability and the availability of its base full (the most
        recent full snapshot at or before it).
        """
        raw: "List[Tuple[float, float, RPEvent]]" = []
        for k in range(cycles):
            base = k * self.period
            for event in self.events:
                snapshot = base + event.offset
                available = snapshot + event.availability_delay
                raw.append((snapshot, available, event))
        raw.sort(key=lambda item: item[0])

        usable: "List[Tuple[float, float, RPEvent]]" = []
        last_full_available = None
        for snapshot, available, event in raw:
            if event.is_full:
                last_full_available = available
                usable.append((snapshot, available, event))
            else:
                if last_full_available is None:
                    # Incremental before any full in the unroll window:
                    # skip — it has no restorable base yet.
                    continue
                usable.append((snapshot, max(available, last_full_available), event))
        return usable

    # -- the three timeline quantities ----------------------------------------------

    def worst_lag(self) -> float:
        """Worst-case out-of-dateness of the level (its own windows only).

        Scans the usability transitions of an unrolled steady-state
        schedule: just before an RP becomes usable, the newest usable
        snapshot is as stale as it ever gets.  For a single full-only
        event this reduces to the paper's ``accW + holdW + propW``.
        """
        entries = self._unrolled(cycles=4)
        if not entries:
            raise PolicyError("cycle produced no usable RPs")
        by_usable = sorted(entries, key=lambda item: item[1])
        worst = 0.0
        # Only examine transitions in the steady-state portion (skip the
        # first cycle's warm-up where no prior RP exists yet).
        for index, (snapshot, usable_at, _event) in enumerate(by_usable):
            if usable_at <= self.period:
                continue
            newest_before = max(
                (s for s, u, _e in entries if u < usable_at and s < usable_at),
                default=None,
            )
            if newest_before is None:
                continue
            worst = max(worst, usable_at - newest_before)
        if worst == 0.0:
            # Degenerate single-RP-per-unroll case: fall back to the
            # simple formula on the first event.
            event = self.events[0]
            worst = self.period + event.availability_delay
        return worst

    def worst_spacing(self) -> float:
        """Largest gap between consecutive usable RP *snapshots*.

        This is the worst-case data loss when the recovery target lies
        within the level's retained range (paper §3.3.3 case 2:
        "merely accW").
        """
        entries = self._unrolled(cycles=3)
        snapshots = sorted(s for s, _u, _e in entries)
        if len(snapshots) < 2:
            return self.period
        gaps = [b - a for a, b in zip(snapshots, snapshots[1:])]
        return max(gaps)

    def retention_span(self) -> float:
        """Guaranteed look-back range: ``(retCnt - 1) * cyclePer``."""
        return (self.retention_count - 1) * self.period

    # -- availability delays consumed by composition ------------------------------------

    def full_availability_delay(self) -> float:
        """``holdW + propW`` of the full representation.

        This is the per-level term in the paper's multi-level lag sums
        (downstream levels receive and forward the full RPs).
        """
        fulls = [event for event in self.events if event.is_full]
        return max(full.availability_delay for full in fulls)

    def arrivals_per_period(self) -> int:
        """Number of RPs arriving per cycle (``cycleCnt + 1``)."""
        return len(self.events)

    @classmethod
    def single(
        cls,
        accumulation_window: float,
        hold_window: float,
        propagation_window: float,
        retention_count: int,
        label: str = "rp",
    ) -> "CycleModel":
        """The common one-RP-per-window policy.

        ``cyclePer = accW``; the single event snapshots at the end of
        each accumulation window.
        """
        if accumulation_window <= 0:
            raise PolicyError(
                f"accumulation window must be positive, got {accumulation_window}"
            )
        return cls(
            period=accumulation_window,
            events=[
                RPEvent(
                    offset=0.0,
                    hold=hold_window,
                    prop=propagation_window,
                    is_full=True,
                    label=label,
                )
            ],
            retention_count=retention_count,
        )
