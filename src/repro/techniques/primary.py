"""The primary copy — level 0 of every hierarchy.

The primary copy is not a data *protection* technique, but the paper's
hierarchy convention makes it level 0: it is the copy applications read
and write, the source from which all RPs ultimately derive, and the
destination of every recovery.  Its "policy" is trivial — it always
reflects "now" — and its demands are simply the foreground workload.
"""

from __future__ import annotations

from typing import Optional

from ..devices.base import Device
from ..exceptions import NoCycleError
from ..workload.spec import Workload
from .base import ProtectionTechnique
from .timeline import CycleModel


class PrimaryCopy(ProtectionTechnique):
    """Level 0: the live data and its foreground workload."""

    is_primary = True

    def __init__(self, name: str = "foreground workload"):
        super().__init__(name)

    def cycle(self) -> CycleModel:
        raise NoCycleError(
            "the primary copy has no RP cycle; it always reflects 'now'"
        )

    # The primary copy is perfectly current and retains nothing historical.

    def worst_lag(self) -> float:
        """The live copy is never out of date."""
        return 0.0

    def worst_spacing(self) -> float:
        """The live copy is continuous — no RP spacing."""
        return 0.0

    def retention_span(self) -> float:
        """The live copy retains only 'now'."""
        return 0.0

    def full_availability_delay(self) -> float:
        """Level 0 adds no hold or propagation delay."""
        return 0.0

    def retention_window(self) -> float:
        return 0.0

    def propagated_bytes_per_cycle(self, workload: Workload) -> float:
        """Level 0 receives nothing: it *is* the source."""
        return 0.0

    def average_propagation_rate(self, workload: Workload) -> float:
        return 0.0

    def register_demands(
        self,
        workload: Workload,
        store: Device,
        source_store: Optional[Device] = None,
        transport: Optional[Device] = None,
        source_technique: Optional[ProtectionTechnique] = None,
    ) -> None:
        """The foreground workload: its access rate and the dataset itself."""
        store.register_demand(
            self.name,
            bandwidth=workload.avg_access_rate,
            capacity=workload.data_capacity,
            note="foreground accesses + primary copy",
        )

    def describe(self) -> str:
        return f"{self.name}: primary copy (level 0)"
