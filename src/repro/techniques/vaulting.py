"""Remote vaulting: shipping backup media to off-site archival storage.

Tapes (only *full* backups, per the paper's assumption) are periodically
shipped to a vault and retained there for a long window — three years in
the case study.  Vaulting places:

* **capacity** demands on the vault: ``retCnt`` retained fulls;
* **shipment** demands on the courier interconnect (one run per
  accumulation window, i.e. per vault cycle);
* **no additional demands on the backup device** when the vault's hold
  window matches the backup retention window (``holdW_vault =
  retW_backup``): the oldest full simply leaves when its on-site
  retention expires.  When tapes must ship *earlier* than that
  (``holdW_vault < retW_backup``) the library has to cut an extra copy
  of each shipped full, adding both bandwidth and a full's capacity.

Restores from the vault route through a tape library (vaulted cartridges
cannot be read on a shelf), which the recovery model handles via
:attr:`~repro.techniques.base.ProtectionTechnique.reads_via_source_level`.
"""

from __future__ import annotations

from typing import Optional, Union

from ..devices.base import Device
from ..exceptions import PolicyError
from ..units import WEEK, YEAR
from ..workload.spec import Workload
from .base import CopyRepresentation, ProtectionTechnique, check_windows
from .timeline import CycleModel


class RemoteVaulting(ProtectionTechnique):
    """Periodic off-site shipment of full-backup media.

    Parameters
    ----------
    accumulation_window:
        Spacing between vault shipments (``accW``; 4 weeks baseline).
    propagation_window:
        Shipment transit window (``propW``; 24 h air freight).
    hold_window:
        Delay between a full backup's creation and its shipment
        (``holdW``; the baseline holds tapes until their on-site
        retention expires: 4 weeks + 12 h).
    retention_count:
        Fulls retained at the vault (``retCnt``; 39 covers ~3 years of
        4-week cycles).
    """

    copy_representation = CopyRepresentation.FULL
    propagation_representation = CopyRepresentation.FULL
    reads_via_source_level = True

    def __init__(
        self,
        accumulation_window: Union[str, float],
        propagation_window: Union[str, float],
        hold_window: Union[str, float],
        retention_count: int,
        name: str = "remote vaulting",
    ):
        super().__init__(name)
        acc, prop, hold, ret = check_windows(
            name, accumulation_window, propagation_window, hold_window,
            retention_count,
        )
        self.accumulation_window = acc
        self.propagation_window = prop
        self.hold_window = hold
        self.retention_count = ret

    def cycle(self) -> CycleModel:
        return CycleModel.single(
            accumulation_window=self.accumulation_window,
            hold_window=self.hold_window,
            propagation_window=self.propagation_window,
            retention_count=self.retention_count,
            label="vaulted full",
        )

    def shipments_per_year(self) -> float:
        """Courier runs per year: one per accumulation window."""
        return YEAR / self.accumulation_window

    def requires_extra_copy(
        self, source_technique: Optional[ProtectionTechnique]
    ) -> bool:
        """True when tapes ship before their on-site retention expires."""
        if source_technique is None:
            return False
        return self.hold_window < source_technique.retention_window()

    def validate(self, workload: Workload) -> None:
        if self.retention_count < 1:
            raise PolicyError(f"{self.name}: must retain at least one full")

    def register_demands(
        self,
        workload: Workload,
        store: Device,
        source_store: Optional[Device] = None,
        transport: Optional[Device] = None,
        source_technique: Optional[ProtectionTechnique] = None,
    ) -> None:
        """Vault capacity, courier shipments, and (maybe) extra tape copies."""
        store.register_demand(
            self.name,
            capacity=self.retention_count * workload.data_capacity,
            note=f"{self.retention_count} vaulted fulls",
        )
        if transport is not None:
            transport.register_demand(
                self.name,
                shipments_per_year=self.shipments_per_year(),
                note="periodic media shipment",
            )
        if self.requires_extra_copy(source_technique) and source_store is not None:
            # The library duplicates each shipped full before it leaves:
            # read + write a full dataset once per vault cycle, plus shelf
            # space for the copy awaiting shipment.
            copy_bandwidth = 2.0 * workload.data_capacity / self.accumulation_window
            source_store.register_demand(
                self.name,
                bandwidth=copy_bandwidth,
                capacity=workload.data_capacity,
                note="extra media copy for early shipment",
            )

    def describe(self) -> str:
        weeks = self.accumulation_window / WEEK
        years = self.retention_window() / YEAR
        return (
            f"{self.name}: ship every {weeks:g} wk, retain {years:.1f} yr "
            f"({self.retention_count} fulls)"
        )
