"""Data protection technique models (paper section 3.2).

The paper's key insight is that all data protection techniques share one
set of basic operations — the **creation, retention and propagation of
retrieval points (RPs)** — and can therefore be described by a single
parameter set (accumulation/propagation/hold windows, cycle structure,
retention, and copy/propagation representations).  Each technique model
here:

* validates its policy parameters (section 3.2.1's conventions),
* converts the policy into bandwidth and capacity demands on the devices
  it uses (section 3.2.3), and
* exposes the RP timeline quantities (worst-case lag, RP spacing,
  retention span) the compositional models consume (section 3.3).

Modules:

* :mod:`repro.techniques.base` — policy parameters, representations and
  the :class:`ProtectionTechnique` interface;
* :mod:`repro.techniques.timeline` — the RP cycle model: worst-case time
  lag, usable-RP spacing and the guaranteed range of Figure 3;
* :mod:`repro.techniques.primary` — the primary copy (level 0);
* :mod:`repro.techniques.snapshot` — virtual (copy-on-write) snapshots;
* :mod:`repro.techniques.split_mirror` — split-mirror PiT copies;
* :mod:`repro.techniques.mirroring` — synchronous, asynchronous and
  batched asynchronous inter-array mirroring;
* :mod:`repro.techniques.backup` — full / cumulative-incremental /
  differential-incremental backup cycles;
* :mod:`repro.techniques.vaulting` — off-site vaulting of backup media.
"""

from .base import CopyRepresentation, ProtectionTechnique
from .timeline import CycleModel, RPEvent
from .primary import PrimaryCopy
from .snapshot import VirtualSnapshot
from .split_mirror import SplitMirror
from .mirroring import AsyncMirror, BatchedAsyncMirror, SyncMirror
from .backup import Backup, IncrementalKind, IncrementalPolicy
from .vaulting import RemoteVaulting
from .erasure import ErasureCodedArchive

__all__ = [
    "CopyRepresentation",
    "ProtectionTechnique",
    "CycleModel",
    "RPEvent",
    "PrimaryCopy",
    "VirtualSnapshot",
    "SplitMirror",
    "SyncMirror",
    "AsyncMirror",
    "BatchedAsyncMirror",
    "Backup",
    "IncrementalKind",
    "IncrementalPolicy",
    "RemoteVaulting",
    "ErasureCodedArchive",
]
