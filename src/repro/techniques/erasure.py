"""Wide-area erasure-coded archival (an extensibility demonstration).

The paper's section 2 lists "wide area erasure-coding schemes"
(OceanStore-style) among the protection techniques its abstractions are
meant to cover, and its stated design goal is that new techniques slot
into the same parameter set "as they are invented".  This module is
that demonstration: an archival technique that erasure-codes each RP
into ``n`` fragments of which any ``k`` reconstruct the data, spread
across independent sites.

Mapping onto the common abstractions:

* RPs are created every accumulation window, propagated (encoded and
  spread) during the propagation window — the standard cycle model
  drives data loss exactly as for any other technique;
* **capacity** demand on the fragment store is the stretch factor
  ``n / k`` times the retained bytes (the redundancy overhead of the
  code);
* **interconnect** demand is the unique update bytes times ``n / k``
  (every fragment must travel) within each propagation window;
* recovery reads ``k`` fragments' worth of data — i.e. the object size
  — from the surviving fragment sites, but pays the code's decode
  overhead as extra transferred bytes when fragments are larger than
  the systematic part (modeled by the stretch on partial reads).

The fragment store is modeled as a single aggregate :class:`Device`
(per-site placement of individual fragments is below the framework's
abstraction level, exactly as the paper's vault aggregates shelves).
"""

from __future__ import annotations

from typing import Optional, Union

from ..devices.base import Device
from ..exceptions import PolicyError
from ..workload.spec import Workload
from .base import CopyRepresentation, ProtectionTechnique, check_windows
from .timeline import CycleModel


class ErasureCodedArchive(ProtectionTechnique):
    """k-of-n erasure-coded wide-area archival of RPs.

    Parameters
    ----------
    data_fragments:
        ``k``: fragments sufficient for reconstruction.
    total_fragments:
        ``n``: fragments produced per RP (``n > k`` for redundancy).
    accumulation_window / propagation_window / hold_window:
        The standard RP windows; encoding and spreading happen within
        the propagation window.
    retention_count:
        Archived RPs retained.
    """

    copy_representation = CopyRepresentation.PARTIAL
    propagation_representation = CopyRepresentation.PARTIAL

    def __init__(
        self,
        data_fragments: int,
        total_fragments: int,
        accumulation_window: Union[str, float],
        propagation_window: Union[str, float],
        hold_window: Union[str, float] = 0.0,
        retention_count: int = 1,
        name: str = "erasure archive",
    ):
        super().__init__(name)
        if data_fragments < 1:
            raise PolicyError(f"{name}: need at least one data fragment")
        if total_fragments <= data_fragments:
            raise PolicyError(
                f"{name}: total fragments ({total_fragments}) must exceed "
                f"data fragments ({data_fragments}) or the code adds no "
                "redundancy"
            )
        acc, prop, hold, ret = check_windows(
            name, accumulation_window, propagation_window, hold_window,
            retention_count,
        )
        self.data_fragments = int(data_fragments)
        self.total_fragments = int(total_fragments)
        self.accumulation_window = acc
        self.propagation_window = prop
        self.hold_window = hold
        self.retention_count = ret

    @property
    def stretch_factor(self) -> float:
        """Stored bytes per logical byte: ``n / k``."""
        return self.total_fragments / self.data_fragments

    @property
    def tolerated_fragment_losses(self) -> int:
        """Fragments that may vanish with the data still reconstructible."""
        return self.total_fragments - self.data_fragments

    def cycle(self) -> CycleModel:
        return CycleModel.single(
            accumulation_window=self.accumulation_window,
            hold_window=self.hold_window,
            propagation_window=self.propagation_window,
            retention_count=self.retention_count,
            label="coded archive",
        )

    def validate(self, workload: Workload) -> None:
        if self.stretch_factor > 10:
            raise PolicyError(
                f"{self.name}: stretch factor {self.stretch_factor:.1f} is "
                "implausibly large; check k and n"
            )

    def register_demands(
        self,
        workload: Workload,
        store: Device,
        source_store: Optional[Device] = None,
        transport: Optional[Device] = None,
        source_technique: Optional[ProtectionTechnique] = None,
    ) -> None:
        """Stretch-inflated capacity; coded update traffic on the WAN.

        Each archived RP stores the unique updates of its window times
        the stretch factor, plus one full stretched dataset for the
        base image the deltas apply to.
        """
        delta_bytes = workload.unique_bytes(self.accumulation_window)
        capacity = self.stretch_factor * (
            workload.data_capacity + self.retention_count * delta_bytes
        )
        spread_bandwidth = (
            self.stretch_factor * delta_bytes / self.propagation_window
        )
        store.register_demand(
            self.name,
            bandwidth=spread_bandwidth,
            capacity=capacity,
            note=f"{self.total_fragments}-of-{self.data_fragments} coded RPs",
        )
        if source_store is not None:
            source_store.register_demand(
                self.name,
                bandwidth=delta_bytes / self.propagation_window,
                note="archive reads unique updates",
            )
        if transport is not None:
            transport.register_demand(
                self.name,
                bandwidth=spread_bandwidth,
                note="fragment spreading",
            )

    def recovery_size(self, workload: Workload, requested_bytes: float) -> float:
        """Reconstruction reads ``k`` fragments: the logical bytes.

        A systematic code transfers exactly the object (the fragments
        *are* the data plus parity); decode overhead is computational,
        not transfer, so recovery size equals the requested bytes.
        """
        return requested_bytes

    def describe(self) -> str:
        return (
            f"{self.name}: {self.data_fragments}-of-{self.total_fragments} "
            f"coded archive, stretch {self.stretch_factor:.2f}x, "
            f"{self.retention_count} RPs"
        )
