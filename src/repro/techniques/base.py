"""The common data protection technique abstraction (paper section 3.2.1).

Every technique is described by the same parameter set — accumulation /
propagation / hold windows, cycle structure, retention and copy
representations — and exposes the same three behaviours to the
compositional framework:

1. **validation** of its policy against the paper's conventions
   (``propW <= accW`` etc.);
2. **demand registration**: converting the policy into bandwidth and
   capacity demands on the devices of its level (section 3.2.3);
3. **timeline queries** (worst lag, RP spacing, retention span) via its
   :class:`~repro.techniques.timeline.CycleModel`.

Differences between techniques live entirely in how they implement
these, which is what makes the models composable.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from ..exceptions import PolicyError
from ..devices.base import Device
from ..units import parse_duration
from ..workload.spec import Workload
from .timeline import CycleModel


class CopyRepresentation(enum.Enum):
    """How an RP is stored or propagated: a full copy or a partial delta."""

    FULL = "full"
    PARTIAL = "partial"


class ProtectionTechnique:
    """Base class for all data protection techniques.

    Parameters
    ----------
    name:
        The technique's label within a design (also the key under which
        its demands and outlays are attributed, e.g. ``"split mirror"``).
    """

    #: True only for the primary copy (level 0).
    is_primary: bool = False

    #: True when the technique's copies live on the *source* device
    #: (virtual snapshots, split mirrors) so restores are intra-device.
    co_located_with_source: bool = False

    #: True when restoring from this level requires routing the data
    #: through the previous level's device type (vaulted tapes must be
    #: read by a tape library).
    reads_via_source_level: bool = False

    #: What representation this level retains / propagates.
    copy_representation: CopyRepresentation = CopyRepresentation.FULL
    propagation_representation: CopyRepresentation = CopyRepresentation.FULL

    def __init__(self, name: str):
        if not name:
            raise PolicyError("technique requires a name")
        self.name = name

    # -- timeline ------------------------------------------------------------------

    def cycle(self) -> CycleModel:
        """The level's RP arrival cycle.  Techniques must override."""
        raise NotImplementedError

    def worst_lag(self) -> float:
        """Worst-case out-of-dateness contributed by this level alone."""
        return self.cycle().worst_lag()

    def worst_spacing(self) -> float:
        """Worst gap between usable RP snapshots retained at this level."""
        return self.cycle().worst_spacing()

    def retention_span(self) -> float:
        """How far back this level's RPs are guaranteed to reach."""
        return self.cycle().retention_span()

    def full_availability_delay(self) -> float:
        """``holdW + propW`` term this level adds to downstream lag sums."""
        return self.cycle().full_availability_delay()

    def retention_window(self) -> float:
        """``retW``: how long an individual RP is retained."""
        cycle = self.cycle()
        return cycle.retention_count * cycle.period

    # -- demands ---------------------------------------------------------------------

    def validate(self, workload: Workload) -> None:
        """Check policy parameters against the section 3.2.1 conventions.

        The base implementation checks nothing; techniques with windows
        override and call :func:`check_windows`.
        """

    def register_demands(
        self,
        workload: Workload,
        store: Device,
        source_store: Optional[Device] = None,
        transport: Optional[Device] = None,
        source_technique: Optional["ProtectionTechnique"] = None,
    ) -> None:
        """Register this level's workload demands on its devices.

        Parameters
        ----------
        workload:
            The protected data object's workload.
        store:
            The device holding this level's RPs.
        source_store:
            The device holding the previous level's copy (reads for
            propagation are demanded from it).
        transport:
            The interconnect carrying RPs from the previous level, if
            distinct hardware is involved.
        source_technique:
            The previous level's technique (vaulting needs the backup
            retention window to decide whether extra tape copies are
            required).
        """
        raise NotImplementedError

    # -- long-run propagation volume -----------------------------------------------------

    def propagated_bytes_per_cycle(self, workload: Workload) -> float:
        """Bytes moved into this level over one policy cycle.

        The default covers the common cases: a full-representation
        propagation moves the whole dataset once per cycle; a partial
        one moves the unique updates of one cycle.  Techniques with
        richer cycles (incremental backups) override.
        """
        cycle = self.cycle()
        if self.propagation_representation is CopyRepresentation.FULL:
            return workload.data_capacity * sum(
                1 for event in cycle.events if event.is_full
            )
        return workload.unique_bytes(cycle.period)

    def average_propagation_rate(self, workload: Workload) -> float:
        """Long-run mean transfer rate into this level, bytes/s.

        This is always at most the *provisioned* bandwidth demand the
        technique registers (section 3.2.3 sizes for the peak within a
        propagation window); the gap is the burst headroom.  Used as a
        §3.2.3 consistency crosscheck and for energy/egress estimates.
        """
        return self.propagated_bytes_per_cycle(workload) / self.cycle().period

    # -- recovery ---------------------------------------------------------------------

    def recovery_size(self, workload: Workload, requested_bytes: float) -> float:
        """Bytes that must be transferred to restore from this level.

        ``requested_bytes`` is the size of what the scenario needs back
        (a single object, or the whole dataset).  Techniques whose worst
        case restores more than one RP (full + largest incremental)
        override this.
        """
        return requested_bytes

    # -- misc -------------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable one-line policy summary."""
        return f"{self.name} ({type(self).__name__})"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def check_windows(
    name: str,
    accumulation_window: Union[str, float],
    propagation_window: Union[str, float] = 0.0,
    hold_window: Union[str, float] = 0.0,
    retention_count: int = 1,
) -> "tuple[float, float, float, int]":
    """Parse and validate the common window parameters.

    Enforces the paper's local conventions: positive accumulation
    window, non-negative hold and propagation windows, and
    ``propW <= accW`` ("to maintain the flow of data between the
    levels").  Returns the parsed ``(accW, propW, holdW, retCnt)``.
    """
    acc = parse_duration(accumulation_window)
    prop = parse_duration(propagation_window)
    hold = parse_duration(hold_window)
    if acc <= 0:
        raise PolicyError(f"{name}: accumulation window must be positive, got {acc}")
    if prop < 0 or hold < 0:
        raise PolicyError(f"{name}: hold and propagation windows must be >= 0")
    if prop > acc:
        raise PolicyError(
            f"{name}: propagation window ({prop:.0f}s) must not exceed the "
            f"accumulation window ({acc:.0f}s), or RP transfers overlap "
            "(paper section 3.2.1)"
        )
    if retention_count < 1:
        raise PolicyError(f"{name}: retention count must be >= 1, got {retention_count}")
    return acc, prop, hold, retention_count
