"""Split-mirror point-in-time copies.

The paper's split-mirror model (section 3.2.3) maintains a circular
buffer of mirrors: ``retCnt`` accessible split mirrors plus one mirror
permanently undergoing *resilvering* (being brought up to date before
its next split) — ``retCnt + 1`` resident full copies in total.

When a mirror becomes eligible for resilvering it must catch up on all
unique updates since it was last split, ``retCnt + 1`` accumulation
windows ago.  Resilvering reads the new values from the primary copy and
writes them to the mirror — both on the same array — and must complete
within one accumulation window, giving the bandwidth demand:

    2 * batchUpdR((retCnt + 1) * accW) * (retCnt + 1)

For the baseline (12 h windows, retCnt 4, cello's 317 KB/s at 60 h) this
is 3.17 MB/s — the 0.6% array utilization of the paper's Table 5.
"""

from __future__ import annotations

from typing import Optional, Union

from ..devices.base import Device
from ..exceptions import PolicyError
from ..units import HOUR
from ..workload.spec import Workload
from .base import CopyRepresentation, ProtectionTechnique, check_windows
from .timeline import CycleModel


class SplitMirror(ProtectionTechnique):
    """A circular buffer of intra-array split mirrors.

    Parameters
    ----------
    accumulation_window:
        Time between splits (``accW``; 12 h in the baseline).
    retention_count:
        Number of *accessible* split mirrors (``retCnt``; one extra
        mirror is maintained for resilvering).
    """

    co_located_with_source = True
    copy_representation = CopyRepresentation.FULL
    propagation_representation = CopyRepresentation.FULL

    def __init__(
        self,
        accumulation_window: Union[str, float],
        retention_count: int,
        name: str = "split mirror",
    ):
        super().__init__(name)
        acc, _prop, _hold, ret = check_windows(
            name, accumulation_window, 0.0, 0.0, retention_count
        )
        self.accumulation_window = acc
        self.retention_count = ret

    @property
    def resident_mirrors(self) -> int:
        """Accessible mirrors plus the one being resilvered."""
        return self.retention_count + 1

    def cycle(self) -> CycleModel:
        """A split is an instantaneous local operation: no hold/prop delay."""
        return CycleModel.single(
            accumulation_window=self.accumulation_window,
            hold_window=0.0,
            propagation_window=0.0,
            retention_count=self.retention_count,
            label="split",
        )

    def validate(self, workload: Workload) -> None:
        resilver_window = self.resident_mirrors * self.accumulation_window
        if workload.unique_bytes(resilver_window) <= 0 and workload.avg_update_rate > 0:
            raise PolicyError(
                f"{self.name}: workload batch curve yields no unique bytes over "
                "the resilvering window"
            )

    def resilver_bandwidth(self, workload: Workload) -> float:
        """Read + write rate needed to resilver one mirror per window."""
        resilver_window = self.resident_mirrors * self.accumulation_window
        bytes_behind = workload.unique_bytes(resilver_window)
        return 2.0 * bytes_behind / self.accumulation_window

    def propagated_bytes_per_cycle(self, workload: Workload) -> float:
        """Each window resilvers one mirror's backlog of unique updates."""
        return workload.unique_bytes(self.resident_mirrors * self.accumulation_window)

    def register_demands(
        self,
        workload: Workload,
        store: Device,
        source_store: Optional[Device] = None,
        transport: Optional[Device] = None,
        source_technique: Optional[ProtectionTechnique] = None,
    ) -> None:
        """Full-copy capacity for every resident mirror + resilver traffic."""
        store.register_demand(
            self.name,
            bandwidth=self.resilver_bandwidth(workload),
            capacity=self.resident_mirrors * workload.data_capacity,
            note=f"{self.resident_mirrors} resident mirrors + resilvering",
        )

    def describe(self) -> str:
        hours = self.accumulation_window / HOUR
        return (
            f"{self.name}: split every {hours:g} h, {self.retention_count} "
            f"accessible (+1 resilvering)"
        )
