"""Failure scenarios, locations and business requirements.

These are the paper's Table 1 "Business requirements" and "Failure
scenarios and recovery goals" input blocks:

* :mod:`repro.scenarios.locations` — a containment hierarchy
  (region > site > building) used to map a named failure scope to the
  set of failed devices;
* :mod:`repro.scenarios.failures` — :class:`FailureScope` and
  :class:`FailureScenario` (scope + recovery time target);
* :mod:`repro.scenarios.requirements` — penalty rates and optional
  RTO/RPO objectives.
"""

from .locations import Location
from .failures import FailureScope, FailureScenario
from .requirements import BusinessRequirements

__all__ = [
    "Location",
    "FailureScope",
    "FailureScenario",
    "BusinessRequirements",
]
