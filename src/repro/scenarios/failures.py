"""Failure scopes and scenarios (paper section 3.1.3).

The framework evaluates dependability *under a specified failure
scenario* rather than integrating over failure frequencies: "most
disaster-tolerant systems are designed to meet a hypothesized disaster,
regardless of its frequency."

A :class:`FailureScenario` names a :class:`FailureScope` plus, for
scoped hardware failures, the thing that failed (a device or a place),
the recovery time target (how far back restoration is requested) and,
for object failures, the size of the damaged object.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from ..exceptions import DesignError
from ..units import HOUR, parse_duration, parse_size
from .locations import Location


class FailureScope(enum.Enum):
    """The paper's named failure scopes.

    ``DATA_OBJECT`` is loss or corruption of the object itself (user or
    software error) with no hardware failure; the others fail all
    hardware at the named granularity.
    """

    DATA_OBJECT = "object"
    DISK_ARRAY = "array"
    BUILDING = "building"
    SITE = "site"
    REGION = "region"

    @property
    def is_hardware(self) -> bool:
        """True for scopes that destroy hardware (everything but object)."""
        return self is not FailureScope.DATA_OBJECT

    def fails_location(self, failed_at: Location, device_at: Location) -> bool:
        """Whether a device at ``device_at`` is lost when this scope hits
        ``failed_at``.

        ``DISK_ARRAY`` failures are device-specific and handled by the
        caller (they do not fail by place); ``DATA_OBJECT`` fails no
        hardware at all.
        """
        if self is FailureScope.BUILDING:
            return device_at.same_building(failed_at)
        if self is FailureScope.SITE:
            return device_at.same_site(failed_at)
        if self is FailureScope.REGION:
            return device_at.same_region(failed_at)
        return False


@dataclass(frozen=True)
class FailureScenario:
    """A concrete failure to evaluate against.

    Parameters
    ----------
    scope:
        The failure scope (see :class:`FailureScope`).
    failed_device:
        For ``DISK_ARRAY`` scope: the name of the failed device.  The
        conventional value ``"primary-array"`` matches the catalog
        designs.
    failed_location:
        For ``BUILDING``/``SITE``/``REGION`` scopes: the place that was
        destroyed.  Defaults to the location of the primary copy when
        omitted (filled in by the evaluator).
    recovery_target_age:
        How far before the failure the requested restoration point lies
        (``now - recTargetTime``).  Zero — the overwhelmingly common
        case — means "restore to just before the failure".  A user error
        discovered late uses a positive age (the case study rolls an
        object back 24 hours).
    object_size:
        For ``DATA_OBJECT`` scope: the size of the corrupted object
        (bytes or a string like ``"1 MB"``).  Ignored for hardware
        scopes, which recover the entire dataset.
    """

    scope: FailureScope
    failed_device: Optional[str] = None
    failed_location: Optional[Location] = None
    recovery_target_age: float = 0.0
    object_size: Optional[float] = None

    def __init__(
        self,
        scope: FailureScope,
        failed_device: Optional[str] = None,
        failed_location: Optional[Location] = None,
        recovery_target_age: Union[str, float] = 0.0,
        object_size: Union[str, float, None] = None,
    ) -> None:
        if not isinstance(scope, FailureScope):
            raise DesignError(f"scope must be a FailureScope, got {scope!r}")
        age = parse_duration(recovery_target_age)
        if age < 0:
            raise DesignError(f"recovery target age must be >= 0, got {age}")
        size = None if object_size is None else parse_size(object_size)
        if size is not None and size <= 0:
            raise DesignError(f"object size must be positive, got {object_size!r}")
        if scope is FailureScope.DISK_ARRAY and failed_device is None:
            raise DesignError("DISK_ARRAY scope requires failed_device")
        if scope is FailureScope.DATA_OBJECT and size is None:
            raise DesignError("DATA_OBJECT scope requires object_size")
        object.__setattr__(self, "scope", scope)
        object.__setattr__(self, "failed_device", failed_device)
        object.__setattr__(self, "failed_location", failed_location)
        object.__setattr__(self, "recovery_target_age", age)
        object.__setattr__(self, "object_size", size)

    # -- constructors for the common cases -------------------------------------

    @classmethod
    def object_corruption(
        cls,
        object_size: Union[str, float],
        recovery_target_age: Union[str, float] = 0.0,
    ) -> "FailureScenario":
        """User/software error corrupting an object (no hardware failure)."""
        return cls(
            scope=FailureScope.DATA_OBJECT,
            object_size=object_size,
            recovery_target_age=recovery_target_age,
        )

    @classmethod
    def array_failure(cls, device_name: str = "primary-array") -> "FailureScenario":
        """Failure of a named disk array; recover everything to 'now'."""
        return cls(scope=FailureScope.DISK_ARRAY, failed_device=device_name)

    @classmethod
    def building_disaster(cls, location: Optional[Location] = None) -> "FailureScenario":
        """Loss of every device in a building."""
        return cls(scope=FailureScope.BUILDING, failed_location=location)

    @classmethod
    def site_disaster(cls, location: Optional[Location] = None) -> "FailureScenario":
        """Loss of every device on a site."""
        return cls(scope=FailureScope.SITE, failed_location=location)

    @classmethod
    def region_disaster(cls, location: Optional[Location] = None) -> "FailureScenario":
        """Loss of every device in a geographic region."""
        return cls(scope=FailureScope.REGION, failed_location=location)

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        parts = [self.scope.value]
        if self.failed_device:
            parts.append(f"of {self.failed_device}")
        if self.failed_location:
            parts.append(f"at {self.failed_location.label()}")
        if self.recovery_target_age:
            parts.append(
                f"target {self.recovery_target_age / HOUR:.0f}h before failure"
            )
        return " ".join(parts)
