"""Physical placement of devices: region > site > building.

The paper's failure scopes ("building", "site", "geographic region")
fail *every device at the named place*.  A :class:`Location` records
where a device lives so the framework can compute which devices a scope
takes out.  Two locations are co-failed at a given granularity when
their identifiers match at that granularity and all coarser ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import DesignError


@dataclass(frozen=True)
class Location:
    """A place in the region/site/building containment hierarchy.

    Parameters
    ----------
    region:
        Geographic region (e.g. ``"us-west"``); the coarsest granularity.
    site:
        Campus or datacenter within the region.
    building:
        Building within the site.  Defaults to ``"main"`` for single-
        building sites.
    """

    region: str
    site: str
    building: str = "main"

    def __post_init__(self) -> None:
        for label, value in (
            ("region", self.region),
            ("site", self.site),
            ("building", self.building),
        ):
            if not value or not isinstance(value, str):
                raise DesignError(f"location {label} must be a non-empty string")

    # -- containment queries --------------------------------------------------

    def same_building(self, other: "Location") -> bool:
        """True when both locations are in the same building."""
        return (
            self.region == other.region
            and self.site == other.site
            and self.building == other.building
        )

    def same_site(self, other: "Location") -> bool:
        """True when both locations are on the same site."""
        return self.region == other.region and self.site == other.site

    def same_region(self, other: "Location") -> bool:
        """True when both locations are in the same geographic region."""
        return self.region == other.region

    def label(self) -> str:
        """Compact ``region/site/building`` rendering for reports."""
        return f"{self.region}/{self.site}/{self.building}"


#: Conventional default placement for single-site designs.
PRIMARY_SITE = Location(region="region-a", site="primary", building="main")

#: A remote vault / recovery facility in a different region.
REMOTE_SITE = Location(region="region-b", site="remote", building="main")
