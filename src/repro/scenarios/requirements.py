"""Business requirements (paper section 3.1.2).

Two penalty rates translate the dependability outputs into dollars:
the *data unavailability penalty rate* multiplies the recovery time, and
the *recent data loss penalty rate* multiplies the recent data loss.
The case study sets both to $50,000 per hour.

In addition, optional RTO/RPO objectives can be declared; the design
optimizer (:mod:`repro.design`) uses them as hard feasibility
constraints, while the evaluator simply reports whether they are met.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..exceptions import DesignError
from ..units import HOUR, parse_duration


@dataclass(frozen=True)
class BusinessRequirements:
    """Penalty rates and (optional) recovery objectives.

    Parameters
    ----------
    unavailability_penalty_rate:
        Dollars per *second* of outage (``unavailPenRate``).  Use
        :meth:`per_hour` to specify in the paper's $/hour terms.
    loss_penalty_rate:
        Dollars per *second* of lost recent updates (``lossPenRate``).
    rto:
        Recovery time objective, seconds (optional).
    rpo:
        Recovery point objective (bound on recent data loss), seconds
        (optional).
    """

    unavailability_penalty_rate: float
    loss_penalty_rate: float
    rto: Optional[float] = None
    rpo: Optional[float] = None

    def __init__(
        self,
        unavailability_penalty_rate: float,
        loss_penalty_rate: float,
        rto: Union[str, float, None] = None,
        rpo: Union[str, float, None] = None,
    ) -> None:
        if unavailability_penalty_rate < 0 or loss_penalty_rate < 0:
            raise DesignError("penalty rates must be >= 0")
        rto_s = None if rto is None else parse_duration(rto)
        rpo_s = None if rpo is None else parse_duration(rpo)
        if rto_s is not None and rto_s < 0:
            raise DesignError(f"RTO must be >= 0, got {rto!r}")
        if rpo_s is not None and rpo_s < 0:
            raise DesignError(f"RPO must be >= 0, got {rpo!r}")
        object.__setattr__(self, "unavailability_penalty_rate", unavailability_penalty_rate)
        object.__setattr__(self, "loss_penalty_rate", loss_penalty_rate)
        object.__setattr__(self, "rto", rto_s)
        object.__setattr__(self, "rpo", rpo_s)

    @classmethod
    def per_hour(
        cls,
        unavailability_dollars_per_hour: float,
        loss_dollars_per_hour: float,
        rto: Union[str, float, None] = None,
        rpo: Union[str, float, None] = None,
    ) -> "BusinessRequirements":
        """Construct from $/hour rates (the units the paper quotes)."""
        return cls(
            unavailability_penalty_rate=unavailability_dollars_per_hour / HOUR,
            loss_penalty_rate=loss_dollars_per_hour / HOUR,
            rto=rto,
            rpo=rpo,
        )

    # -- penalty computation ----------------------------------------------------

    def outage_penalty(self, recovery_time: float) -> float:
        """Dollar penalty for an outage of the given duration (seconds)."""
        return self.unavailability_penalty_rate * max(0.0, recovery_time)

    def loss_penalty(self, data_loss: float) -> float:
        """Dollar penalty for losing the given span of recent updates."""
        return self.loss_penalty_rate * max(0.0, data_loss)

    def total_penalty(self, recovery_time: float, data_loss: float) -> float:
        """Combined outage + loss penalty."""
        return self.outage_penalty(recovery_time) + self.loss_penalty(data_loss)

    # -- objective checks ---------------------------------------------------------

    def meets_rto(self, recovery_time: float) -> bool:
        """True when the recovery time satisfies the RTO (or none is set)."""
        return self.rto is None or recovery_time <= self.rto

    def meets_rpo(self, data_loss: float) -> bool:
        """True when the data loss satisfies the RPO (or none is set)."""
        return self.rpo is None or data_loss <= self.rpo

    def meets_objectives(self, recovery_time: float, data_loss: float) -> bool:
        """True when both objectives are satisfied."""
        return self.meets_rto(recovery_time) and self.meets_rpo(data_loss)


#: The case study's requirements: $50k/hour for both outage and loss.
CASE_STUDY_REQUIREMENTS = BusinessRequirements.per_hour(50_000.0, 50_000.0)
