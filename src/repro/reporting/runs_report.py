"""Human rendering of the run observatory: list, show and diff reports.

The ``repro runs`` subcommands' ``--format human`` output.  Pure
string-building over loaded :class:`~repro.obs.runs.RunRecord` and
:class:`~repro.obs.diff.RunDiff` objects — the JSON format bypasses
this module entirely.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..obs.diff import RunDiff
from ..obs.runs import RunRecord
from .tables import Table


def _fmt_ms(value: float) -> str:
    return f"{value:.1f}"


def _fmt_delta_ms(value: float) -> str:
    return f"{value:+.1f}"


def runs_list_report(
    records: "List[RunRecord]",
    skipped: "Optional[List[Tuple[str, str]]]" = None,
) -> str:
    """The ``repro runs list`` table: one row per indexed run."""
    table = Table(
        headers=["run", "command", "status", "started", "wall s", "schema"],
        align=["l", "l", "l", "l", "r", "r"],
        title=f"Runs ({len(records)})",
    )
    for record in records:
        wall = record.wall_time_s
        table.add_row(
            record.run_id,
            record.command or "-",
            record.status,
            record.started or "-",
            "-" if wall is None else f"{wall:.2f}",
            record.manifest_schema,
        )
    lines = [table.render()]
    for directory, reason in skipped or []:
        lines.append(f"skipped {directory}: {reason}")
    return "\n".join(lines)


def run_show_report(record: RunRecord, top: int = 10) -> str:
    """The ``repro runs show`` view: header lines + hottest spans."""
    lines = [
        f"run:      {record.run_id}",
        f"dir:      {record.directory}",
        f"command:  {record.command or '-'}",
        f"status:   {record.status}",
        f"started:  {record.started or '-'}",
        f"wall:     "
        + ("-" if record.wall_time_s is None else f"{record.wall_time_s:.2f}s"),
        f"schema:   manifest v{record.manifest_schema}, model "
        + (record.model_schema_version or "-"),
        f"tasks:    {len(record.tasks())} recorded",
    ]
    stats = record.span_stats()
    if stats:
        table = Table(
            headers=["span", "calls", "cum ms", "self ms", "errors"],
            title=f"Hottest spans (top {min(top, len(stats))} of {len(stats)})",
        )
        hottest = sorted(
            stats.items(),
            key=lambda item: -float(item[1].get("cum_ms", 0.0)),
        )[:top]
        for name, entry in hottest:
            table.add_row(
                name,
                entry.get("calls", 0),
                _fmt_ms(float(entry.get("cum_ms", 0.0))),
                _fmt_ms(float(entry.get("self_ms", 0.0))),
                entry.get("errors", 0),
            )
        lines.append("")
        lines.append(table.render())
    counters = record.metrics().get("counters", {})
    if counters:
        table = Table(headers=["counter", "value"], title="Counters")
        for name in sorted(counters):
            table.add_row(name, counters[name])
        lines.append("")
        lines.append(table.render())
    return "\n".join(lines)


def run_diff_report(diff: RunDiff, top: int = 10) -> str:
    """The ``repro runs diff`` view: verdict first, then the evidence."""
    lines = [
        f"base: {diff.base_run_id} ({diff.base_command or '-'}, "
        f"{_fmt_ms(diff.base_total_ms)}ms traced)",
        f"cand: {diff.cand_run_id} ({diff.cand_command or '-'}, "
        f"{_fmt_ms(diff.cand_total_ms)}ms traced)",
        f"total: {_fmt_delta_ms(diff.total_delta_ms)}ms",
    ]
    if diff.schema_mismatch:
        lines.append(
            "WARNING: model schema versions differ "
            f"({diff.base_model_version} vs {diff.cand_model_version}) — "
            "task keys are incomparable; span/metric deltas remain valid"
        )

    if diff.regressions:
        lines.append("")
        lines.append(f"REGRESSIONS ({len(diff.regressions)}):")
        for attribution in diff.regressions:
            lines.append(f"  {attribution.describe()}")
    else:
        lines.append("no span regressions")

    if diff.correctness_drift:
        lines.append("")
        lines.append(f"CORRECTNESS DRIFT ({len(diff.correctness_drift)}):")
        for drift in diff.correctness_drift:
            label = f" [{drift.label}]" if drift.label else ""
            lines.append(
                f"  {drift.task}{label} key={drift.key[:12]}… "
                f"{drift.base_digest[:12]}… → {drift.cand_digest[:12]}…"
            )
    else:
        lines.append("no correctness drift")

    lines.append(
        f"tasks: {diff.matched_tasks} matched, {len(diff.tasks_added)} added, "
        f"{len(diff.tasks_removed)} removed, {len(diff.newly_cached)} newly "
        f"cached, {len(diff.newly_uncached)} newly uncached"
    )

    moved = [d for d in diff.span_deltas if d.delta_cum_ms != 0.0][:top]
    if moved:
        table = Table(
            headers=["span", "Δ cum ms", "Δ self ms", "base ms", "cand ms", ""],
            title=f"Largest span moves (top {len(moved)})",
            align=["l", "r", "r", "r", "r", "l"],
        )
        for delta in moved:
            table.add_row(
                delta.name,
                _fmt_delta_ms(delta.delta_cum_ms),
                _fmt_delta_ms(delta.delta_self_ms),
                _fmt_ms(delta.base_cum_ms),
                _fmt_ms(delta.cand_cum_ms),
                "" if delta.status == "common" else delta.status,
            )
        lines.append("")
        lines.append(table.render())

    changed_counters = [d for d in diff.counter_deltas if d.delta != 0.0]
    if changed_counters:
        table = Table(
            headers=["counter", "base", "cand", "Δ"],
            title="Changed counters",
        )
        for metric in changed_counters:
            table.add_row(
                metric.name,
                "-" if metric.base is None else metric.base,
                "-" if metric.cand is None else metric.cand,
                f"{metric.delta:+g}",
            )
        lines.append("")
        lines.append(table.render())
    return "\n".join(lines)
