"""A minimal ASCII table renderer.

Kept deliberately tiny: headers, left/right alignment by column, and a
title.  The benchmark harness uses it to print tables shaped like the
paper's, so results can be eyeballed against the original.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


class Table:
    """An ASCII table built row by row.

    Parameters
    ----------
    headers:
        Column headers.
    align:
        Per-column alignment: ``"l"`` or ``"r"``.  Defaults to left for
        the first column and right for the rest (label + numbers).
    title:
        Optional title printed above the table.
    """

    def __init__(
        self,
        headers: Sequence[str],
        align: Optional[Sequence[str]] = None,
        title: Optional[str] = None,
    ):
        if not headers:
            raise ValueError("a table needs at least one column")
        self.headers = [str(h) for h in headers]
        if align is None:
            align = ["l"] + ["r"] * (len(headers) - 1)
        if len(align) != len(headers):
            raise ValueError("align must match the number of columns")
        if any(a not in ("l", "r") for a in align):
            raise ValueError("alignment must be 'l' or 'r'")
        self.align = list(align)
        self.title = title
        self._rows: "List[List[str]]" = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are stringified."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self._rows.append([str(cell) for cell in cells])

    def add_rows(self, rows: Iterable[Sequence[object]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add_row(*row)

    @property
    def rows(self) -> "List[List[str]]":
        """A copy of the accumulated rows (stringified)."""
        return [list(row) for row in self._rows]

    def render(self) -> str:
        """The table as a string, column widths fitted to content."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            parts = []
            for cell, width, align in zip(cells, widths, self.align):
                parts.append(cell.ljust(width) if align == "l" else cell.rjust(width))
            return "| " + " | ".join(parts) + " |"

        separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(separator)
        lines.append(fmt_row(self.headers))
        lines.append(separator)
        for row in self._rows:
            lines.append(fmt_row(row))
        lines.append(separator)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
