"""Composed reports mirroring the paper's tables and figures.

Each function takes framework results and returns a rendered string:

* :func:`utilization_report` — Table 5: per-device, per-technique
  bandwidth and capacity utilization;
* :func:`dependability_report` — Table 6: recovery source, worst-case
  recovery time and recent data loss per failure scenario;
* :func:`cost_breakdown_report` — Figure 5: outlays by technique plus
  penalties per failure scenario;
* :func:`whatif_report` — Table 7: outlays, RT, DL, penalties and total
  cost for several designs across scenarios.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..core.results import Assessment
from ..core.utilization import SystemUtilization
from ..units import (
    HOUR,
    format_duration,
    format_money,
    format_percent,
    format_rate,
    format_size,
)
from .tables import Table


def utilization_report(utilization: SystemUtilization, title: str = "Normal mode utilization") -> str:
    """Per-device, per-technique utilization (the paper's Table 5)."""
    table = Table(
        headers=["device / technique", "bandwidth", "bw util", "capacity", "cap util"],
        title=title,
    )
    for device in utilization.devices:
        table.add_row(
            device.device_name,
            format_rate(device.bandwidth_demand),
            format_percent(device.bandwidth_utilization),
            format_size(device.capacity_demand_logical),
            format_percent(device.capacity_utilization),
        )
        for tech in device.by_technique:
            table.add_row(
                f"  {tech.technique}",
                format_rate(tech.bandwidth),
                format_percent(tech.bandwidth_utilization),
                format_size(tech.capacity),
                format_percent(tech.capacity_utilization),
            )
    footer = (
        f"system: bw {format_percent(utilization.max_bandwidth_utilization)} "
        f"({utilization.max_bandwidth_device}), cap "
        f"{format_percent(utilization.max_capacity_utilization)} "
        f"({utilization.max_capacity_device})"
    )
    return table.render() + "\n" + footer


def dependability_report(
    assessments: "Mapping[str, Assessment]",
    title: str = "Worst-case recovery time and recent data loss",
) -> str:
    """Recovery source / RT / DL per scenario (the paper's Table 6)."""
    table = Table(
        headers=["failure scope", "recovery source", "recovery time", "data loss"],
        title=title,
    )
    for label, assessment in assessments.items():
        loss = assessment.recent_data_loss
        table.add_row(
            label,
            assessment.data_loss.source_name,
            format_duration(assessment.recovery_time),
            "total loss" if assessment.data_loss.total_loss else format_duration(loss),
        )
    return table.render()


def cost_breakdown_report(
    assessments: "Mapping[str, Assessment]",
    title: str = "Overall system cost",
) -> str:
    """Outlays by technique + penalties per scenario (Figure 5)."""
    techniques: "Dict[str, None]" = {}
    for assessment in assessments.values():
        for name in assessment.costs.outlays_by_technique:
            techniques.setdefault(name)
    headers = ["cost component"] + list(assessments.keys())
    table = Table(headers=headers, title=title)
    for technique in techniques:
        row = [f"outlay: {technique}"]
        for assessment in assessments.values():
            row.append(
                format_money(assessment.costs.outlays_by_technique.get(technique, 0.0))
            )
        table.add_row(*row)
    for label, getter in (
        ("penalty: data outage", lambda a: a.costs.outage_penalty),
        ("penalty: recent data loss", lambda a: a.costs.loss_penalty),
        ("total", lambda a: a.costs.total_cost),
    ):
        row = [label]
        for assessment in assessments.values():
            row.append(format_money(getter(assessment)))
        table.add_row(*row)
    return table.render()


def whatif_report(
    results: "Mapping[str, Mapping[str, Assessment]]",
    scenario_labels: Sequence[str],
    title: str = "What-if scenarios",
) -> str:
    """The Table 7 grid: designs x scenarios.

    ``results`` maps design name to ``{scenario label: assessment}``;
    ``scenario_labels`` selects and orders the scenario columns.
    """
    headers = ["storage system design", "outlays"]
    for label in scenario_labels:
        headers += [f"{label} RT (hr)", f"{label} DL (hr)", f"{label} pen.", f"{label} total"]
    table = Table(headers=headers, title=title)
    for design_name, per_scenario in results.items():
        first = next(iter(per_scenario.values()))
        row = [design_name, format_money(first.costs.total_outlays)]
        for label in scenario_labels:
            assessment = per_scenario[label]
            row += [
                f"{assessment.recovery_time / HOUR:.1f}",
                f"{assessment.recent_data_loss / HOUR:.2f}"
                if not assessment.data_loss.total_loss
                else "total",
                format_money(assessment.costs.total_penalties),
                format_money(assessment.total_cost),
            ]
        table.add_row(*row)
    return table.render()
