"""Human-readable renderings of traces, metrics, profiles, provenance.

* :func:`span_tree_report` — the per-phase timing breakdown of a
  :class:`~repro.obs.tracer.Tracer` as an indented tree (errored spans
  are flagged with their exception type and message);
* :func:`metrics_report` — every instrument of a
  :class:`~repro.obs.metrics.MetricsRegistry` as one table (histograms
  include the log-bucket p50/p90/p99 estimates);
* :func:`profile_report` — the aggregated span profile of a
  :class:`~repro.obs.profile.Profile`: a ranked per-name table plus a
  flamegraph-style merged call tree;
* :func:`provenance_report` — the four-metric explanation of each
  assessment (see :func:`~repro.obs.provenance.explain_assessment`).
"""

from __future__ import annotations

from typing import List, Mapping, Union

from ..obs.metrics import MetricsRegistry
from ..obs.profile import Profile, build_profile
from ..obs.provenance import explain_assessment
from ..obs.tracer import NullTracer, Tracer
from .tables import Table


def span_tree_report(tracer: Tracer, title: str = "Trace (per-phase timings)") -> str:
    """Render the tracer's span trees with durations and attributes."""
    entries = list(tracer.walk())
    if not entries:
        return f"{title}\n  (no spans recorded)"
    labels = ["  " * depth + span.name for span, depth in entries]
    width = max(len(label) for label in labels)
    lines = [title]
    for (span, _depth), label in zip(entries, labels):
        duration = f"{span.duration_ms:10.2f} ms" if span.finished else "   (open)  "
        attrs = ""
        if span.attributes:
            rendered = ", ".join(
                f"{key}={value}"
                for key, value in span.attributes.items()
                if key != "error"
            )
            if rendered:
                attrs = f"  [{rendered}]"
        error = ""
        if span.failed:
            error = f"  ERROR {span.error_type}: {span.error_message}"
        lines.append(f"  {label:<{width}}  {duration}{attrs}{error}")
    return "\n".join(lines)


def metrics_report(registry: MetricsRegistry, title: str = "Metrics") -> str:
    """Render every counter, gauge and histogram as one table."""
    table = Table(headers=["metric", "type", "value"], title=title)
    snapshot = registry.snapshot()
    for name, value in snapshot["counters"].items():
        table.add_row(name, "counter", f"{value:g}")
    for name, value in snapshot["gauges"].items():
        table.add_row(name, "gauge", f"{value:g}")
    for name, stats in snapshot["histograms"].items():
        table.add_row(
            name,
            "histogram",
            f"n={stats['count']} mean={stats['mean']:.3f} "
            f"p50={stats['p50']:.3f} p90={stats['p90']:.3f} "
            f"p99={stats['p99']:.3f} "
            f"min={stats['min']:.3f} max={stats['max']:.3f}",
        )
    if not table.rows:
        table.add_row("(none recorded)", "", "")
    return table.render()


def profile_report(
    source: "Union[Profile, Tracer, NullTracer]",
    title: str = "Span profile (aggregated over the whole run)",
    hot_limit: int = 20,
    bar_width: int = 24,
) -> str:
    """Render a span profile: ranked hot spans plus the merged call tree.

    ``source`` is a :class:`~repro.obs.profile.Profile` or a tracer to
    aggregate on the fly.  The first section ranks span names by self
    time (time not attributed to child spans); the second renders the
    flamegraph-style merged call tree, each node's bar proportional to
    its cumulative share of the run.
    """
    profile = source if isinstance(source, Profile) else build_profile(source)
    if not profile.span_count:
        return f"{title}\n  (no spans recorded)"

    table = Table(
        headers=["span", "calls", "cum ms", "self ms", "self %", "avg ms", "errors"],
        title=(
            f"{title}\n{profile.span_count} spans, "
            f"{profile.total_ms:.2f} ms total"
        ),
    )
    self_total = sum(entry.self_ms for entry in profile.entries) or 1.0
    for entry in profile.hot(hot_limit):
        table.add_row(
            entry.name,
            entry.calls,
            f"{entry.cum_ms:.2f}",
            f"{entry.self_ms:.2f}",
            f"{100.0 * entry.self_ms / self_total:.1f}",
            f"{entry.mean_ms:.3f}",
            entry.errors if entry.errors else "",
        )
    lines: "List[str]" = [table.render(), "", "Hot call paths"]

    scale = profile.total_ms or 1.0
    nodes = [
        (node, depth) for root in profile.tree for node, depth in root.walk()
    ]
    labels = ["  " * depth + node.name for node, depth in nodes]
    width = max(len(label) for label in labels)
    for (node, _depth), label in zip(nodes, labels):
        share = node.cum_ms / scale
        bar = "#" * max(int(round(share * bar_width)), 1)
        error = f"  ({node.errors} error(s))" if node.errors else ""
        lines.append(
            f"  {label:<{width}}  {bar:<{bar_width}} {share * 100:5.1f}%  "
            f"{node.cum_ms:9.2f} ms  x{node.calls}{error}"
        )
    return "\n".join(lines)


def provenance_report(
    assessments: "Mapping[str, object]",
    title: str = "Provenance: why each metric came out this way",
) -> str:
    """Explain the four output metrics of every assessment, per scenario."""
    blocks = [title]
    for label, assessment in assessments.items():
        explanation = explain_assessment(assessment)
        indented = "\n".join(f"  {line}" for line in explanation.splitlines())
        blocks.append(f"[{label}]\n{indented}")
    return "\n\n".join(blocks)
