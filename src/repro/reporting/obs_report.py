"""Human-readable renderings of traces, metrics and provenance.

* :func:`span_tree_report` — the per-phase timing breakdown of a
  :class:`~repro.obs.tracer.Tracer` as an indented tree;
* :func:`metrics_report` — every instrument of a
  :class:`~repro.obs.metrics.MetricsRegistry` as one table;
* :func:`provenance_report` — the four-metric explanation of each
  assessment (see :func:`~repro.obs.provenance.explain_assessment`).
"""

from __future__ import annotations

from typing import Mapping

from ..obs.metrics import MetricsRegistry
from ..obs.provenance import explain_assessment
from ..obs.tracer import Tracer
from .tables import Table


def span_tree_report(tracer: Tracer, title: str = "Trace (per-phase timings)") -> str:
    """Render the tracer's span trees with durations and attributes."""
    entries = list(tracer.walk())
    if not entries:
        return f"{title}\n  (no spans recorded)"
    labels = ["  " * depth + span.name for span, depth in entries]
    width = max(len(label) for label in labels)
    lines = [title]
    for (span, _depth), label in zip(entries, labels):
        duration = f"{span.duration_ms:10.2f} ms" if span.finished else "   (open)  "
        attrs = ""
        if span.attributes:
            rendered = ", ".join(
                f"{key}={value}" for key, value in span.attributes.items()
            )
            attrs = f"  [{rendered}]"
        lines.append(f"  {label:<{width}}  {duration}{attrs}")
    return "\n".join(lines)


def metrics_report(registry: MetricsRegistry, title: str = "Metrics") -> str:
    """Render every counter, gauge and histogram as one table."""
    table = Table(headers=["metric", "type", "value"], title=title)
    snapshot = registry.snapshot()
    for name, value in snapshot["counters"].items():
        table.add_row(name, "counter", f"{value:g}")
    for name, value in snapshot["gauges"].items():
        table.add_row(name, "gauge", f"{value:g}")
    for name, stats in snapshot["histograms"].items():
        table.add_row(
            name,
            "histogram",
            f"n={stats['count']} mean={stats['mean']:.3f} "
            f"min={stats['min']:.3f} max={stats['max']:.3f}",
        )
    if not table.rows:
        table.add_row("(none recorded)", "", "")
    return table.render()


def provenance_report(
    assessments: "Mapping[str, object]",
    title: str = "Provenance: why each metric came out this way",
) -> str:
    """Explain the four output metrics of every assessment, per scenario."""
    blocks = [title]
    for label, assessment in assessments.items():
        explanation = explain_assessment(assessment)
        indented = "\n".join(f"  {line}" for line in explanation.splitlines())
        blocks.append(f"[{label}]\n{indented}")
    return "\n\n".join(blocks)
