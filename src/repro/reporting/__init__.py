"""Report rendering: ASCII tables and full assessment reports.

* :mod:`repro.reporting.tables` — a small, dependency-free table
  renderer used by the benchmarks to print the paper's tables;
* :mod:`repro.reporting.report` — composed reports: the Table 5
  utilization table, the Table 6 dependability table, the Figure 5 cost
  breakdown and the Table 7 what-if comparison, each built from
  framework results;
* :mod:`repro.reporting.obs_report` — observability renderings: span
  tree timings, the metrics table and per-assessment provenance
  explanations (the CLI's ``--trace`` / ``--metrics`` output).
"""

from .tables import Table
from .charts import bar_chart, stacked_bar_chart
from .report import (
    cost_breakdown_report,
    dependability_report,
    utilization_report,
    whatif_report,
)
from .obs_report import metrics_report, provenance_report, span_tree_report
from .risk_report import bound_check_report, risk_report, top_members_report

__all__ = [
    "Table",
    "bar_chart",
    "stacked_bar_chart",
    "utilization_report",
    "dependability_report",
    "cost_breakdown_report",
    "whatif_report",
    "span_tree_report",
    "metrics_report",
    "provenance_report",
    "risk_report",
    "top_members_report",
    "bound_check_report",
]
