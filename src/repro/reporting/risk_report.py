"""Human-readable reports for probabilistic risk assessments.

Two views of a :class:`~repro.risk.aggregate.RiskAssessment`:

* :func:`risk_report` — the annualized distributions (mean and
  percentiles per metric), the Monte Carlo cross-check when one ran,
  and the top members by expected annual penalty;
* JSON goes through ``RiskAssessment.to_dict()`` +
  :func:`repro.serialization.canonical_json` in the CLI — this module
  only renders for humans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from ..units import format_duration, format_money
from .tables import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..risk.aggregate import RiskAssessment
    from ..risk.distributions import RiskDistribution
    from ..risk.montecarlo import BoundCheck


def _duration_cell(seconds: float) -> str:
    if seconds == float("inf"):
        return "unbounded"
    return format_duration(seconds)


def _money_cell(dollars: float) -> str:
    if dollars == float("inf"):
        return "unbounded"
    return format_money(dollars)


def _distribution_rows(
    label: str, distribution: "RiskDistribution", money: bool
) -> "Tuple[str, ...]":
    cell = _money_cell if money else _duration_cell
    return (
        label,
        cell(distribution.mean),
        cell(distribution.p50),
        cell(distribution.p90),
        cell(distribution.p95),
        cell(distribution.p99),
    )


def risk_report(assessment: "RiskAssessment") -> str:
    """The full human-readable risk report."""
    blocks: "List[str]" = []
    header = (
        f"ensemble {assessment.ensemble_name!r} on design "
        f"{assessment.design_name!r}: {len(assessment.members)} members, "
        f"{assessment.unique_scenarios} distinct scenarios, "
        f"{assessment.total_rate_per_year:g} events/yr over "
        f"{assessment.years:g} yr"
    )
    blocks.append(header)

    table = Table(
        headers=["metric", "mean", "p50", "p90", "p95", "p99"],
        title=f"Annualized risk ({assessment.years:g} yr horizon)",
    )
    table.add_row(*_distribution_rows("downtime", assessment.downtime, False))
    table.add_row(*_distribution_rows("data loss", assessment.loss, False))
    table.add_row(*_distribution_rows("penalties", assessment.penalty, True))
    blocks.append(table.render())

    if assessment.monte_carlo is not None:
        mc = assessment.monte_carlo
        table = Table(
            headers=["metric", "mean", "p50", "p90", "p95", "p99"],
            title=(
                f"Monte Carlo cross-check ({mc.samples} samples, "
                f"seed {mc.seed})"
            ),
        )
        table.add_row(*_distribution_rows("downtime", mc.downtime, False))
        table.add_row(*_distribution_rows("data loss", mc.loss, False))
        table.add_row(*_distribution_rows("penalties", mc.penalty, True))
        blocks.append(table.render())

    blocks.append(top_members_report(assessment))
    return "\n\n".join(blocks)


def top_members_report(
    assessment: "RiskAssessment", limit: int = 10
) -> str:
    """The members contributing the most expected annual penalty."""
    ranked = sorted(
        assessment.members,
        key=lambda m: (-m.expected_penalty_per_year, m.member_id),
    )
    shown = ranked[:limit]
    table = Table(
        headers=[
            "member", "scenario", "rate/yr", "RT", "DL", "E[penalty]/yr",
        ],
        title=(
            f"Top {len(shown)} of {len(ranked)} members by expected "
            "annual penalty"
        ),
    )
    for member in shown:
        table.add_row(
            member.member_id + (" (cascade)" if member.from_cascade else ""),
            member.scenario,
            f"{member.rate_per_year:g}",
            _duration_cell(member.recovery_time),
            _duration_cell(member.data_loss),
            _money_cell(member.expected_penalty_per_year),
        )
    return table.render()


def bound_check_report(checks: "List[BoundCheck]") -> str:
    """Simulated losses against the analytic bound, one row per member."""
    table = Table(
        headers=["member", "scenario", "bound", "max simulated", "ok"],
        title="Simulation cross-check: measured loss vs analytic bound",
    )
    for check in checks:
        table.add_row(
            check.member_id,
            check.scenario,
            _duration_cell(check.analytic_bound),
            _duration_cell(check.max_simulated),
            "yes" if check.within_bound else "NO",
        )
    return table.render()
