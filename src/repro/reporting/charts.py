"""ASCII horizontal bar charts.

Figure 5 of the paper is a stacked-bar cost chart; these helpers render
comparable charts in plain text so benchmarks and the CLI can show the
same shape the paper draws, without plotting dependencies.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence, Tuple

DEFAULT_WIDTH = 48


def bar_chart(
    values: "Mapping[str, float]",
    title: Optional[str] = None,
    width: int = DEFAULT_WIDTH,
    formatter: Callable[[float], str] = lambda v: f"{v:,.0f}",
) -> str:
    """One bar per entry, scaled to the largest value.

    Infinite values render as a full-width bar tagged ``unbounded``.
    """
    if not values:
        raise ValueError("bar chart needs at least one value")
    if width < 1:
        raise ValueError("width must be positive")
    finite = [v for v in values.values() if v != float("inf")]
    scale = max(finite) if finite else 1.0
    if scale <= 0:
        scale = 1.0
    label_width = max(len(label) for label in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        if value == float("inf"):
            bar = "#" * width
            rendered = "unbounded"
        else:
            length = int(round(value / scale * width))
            if value > 0:
                length = max(length, 1)
            bar = "#" * length
            rendered = formatter(value)
        lines.append(f"  {label:<{label_width}} |{bar:<{width}}| {rendered}")
    return "\n".join(lines)


def stacked_bar_chart(
    rows: "Mapping[str, Mapping[str, float]]",
    segment_order: Sequence[str],
    title: Optional[str] = None,
    width: int = DEFAULT_WIDTH,
    formatter: Callable[[float], str] = lambda v: f"{v:,.0f}",
) -> str:
    """One stacked bar per row (Figure 5's shape).

    ``rows`` maps row label to ``{segment: value}``; every bar is scaled
    against the largest row total and each segment is drawn with its own
    glyph (cycling ``# = + o x``), with a legend mapping glyphs to
    segment names.
    """
    if not rows:
        raise ValueError("stacked bar chart needs at least one row")
    glyphs = "#=+ox*%@"
    glyph_of = {
        segment: glyphs[i % len(glyphs)] for i, segment in enumerate(segment_order)
    }
    totals = {
        label: sum(v for v in segments.values() if v != float("inf"))
        for label, segments in rows.items()
    }
    scale = max(totals.values()) or 1.0
    label_width = max(len(label) for label in rows)
    lines = []
    if title:
        lines.append(title)
    for label, segments in rows.items():
        bar = ""
        for segment in segment_order:
            value = segments.get(segment, 0.0)
            if value == float("inf") or value <= 0:
                continue
            length = max(1, int(round(value / scale * width)))
            bar += glyph_of[segment] * length
        bar = bar[:width]
        lines.append(
            f"  {label:<{label_width}} |{bar:<{width}}| {formatter(totals[label])}"
        )
    legend = "  legend: " + "  ".join(
        f"{glyph_of[s]}={s}" for s in segment_order
    )
    lines.append(legend)
    return "\n".join(lines)
