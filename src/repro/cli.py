"""Command-line interface: evaluate storage designs from JSON specs.

Usage::

    python -m repro case-study                 # reproduce Tables 5-7
    python -m repro evaluate spec.json         # evaluate a JSON spec
    python -m repro list-designs               # named designs available
    python -m repro bench --check              # hot-path benchmarks

``case-study``, ``evaluate``, ``optimize`` and ``lint`` additionally
accept observability flags: ``--trace`` prints a per-phase span tree
plus a provenance explanation of each output metric, ``--profile``
prints an aggregated span profile (call counts, cumulative and self
time per span name), ``--metrics`` prints the run's metrics table,
``--trace-out PATH`` writes spans and metrics as JSON lines for
offline analysis, and ``--metrics-out PATH`` writes the metrics in the
OpenMetrics/Prometheus text format.  When ``lint`` emits a machine
format (``--format json``/``sarif``), the observability reports go to
stderr so stdout stays parseable.

Three more flags form the telemetry fabric: ``--run-dir PATH`` leaves
a complete run ledger behind (``manifest.json``, ``spans.jsonl``,
``metrics.prom``, ``progress.jsonl``), ``--progress`` reports live
sweep progress on stderr, and ``--serve-metrics PORT`` serves
``/metrics``, ``/healthz`` and ``/progress`` on localhost for the
duration of the run.  All telemetry output goes to stderr or files —
stdout carries only the reports themselves.

The run observatory reads those ledgers back: ``repro runs
list|show|latest|diff|gc`` indexes every ledger under one
``--runs-root``, and ``runs diff`` aligns two runs structurally — span
regressions attributed to the deepest explaining call path, metric
deltas, and task-level correctness drift (same content-addressed task
key, different result digest).  ``--fail-on-regression`` turns the
diff into a CI gate, and ``--baseline RUN`` on the evaluating
subcommands auto-diffs a fresh ``--run-dir`` ledger at exit.

A spec file looks like::

    {
      "workload": "cello",
      "design": "baseline",
      "scenarios": ["object", "array", "site"],
      "requirements": {"unavailability_per_hour": 50000,
                       "loss_per_hour": 50000}
    }

with ``workload`` and ``design`` accepting either preset names or full
dictionaries (see :mod:`repro.serialization`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from .casestudy import (
    all_table7_designs,
    case_study_requirements,
    case_study_scenarios,
)
from .engine import EngineConfig
from .engine.sweep import evaluate_design_map, evaluate_scenarios_cached
from .exceptions import ReproError
from .lint.diagnostics import exit_code as lint_exit_code
from .lint.output import FORMATS as LINT_FORMATS
from .lint.output import render as render_diagnostics
from .obs import (
    MetricsRegistry,
    ProgressReporter,
    RunLedger,
    TaskLog,
    TelemetryServer,
    Tracer,
    set_metrics,
    set_progress,
    set_run_id,
    set_task_log,
    set_tracer,
    write_openmetrics,
    write_trace_jsonl,
)
from .obs import reset as reset_obs
from .obs.diff import (
    DEFAULT_ABS_THRESHOLD_MS,
    DEFAULT_EXPLAIN_FRACTION,
    DEFAULT_REL_THRESHOLD,
    diff_runs,
)
from .obs.runs import RunRecord, RunStore, resolve_run
from .reporting.obs_report import (
    metrics_report,
    profile_report,
    provenance_report,
    span_tree_report,
)
from .reporting.report import (
    cost_breakdown_report,
    dependability_report,
    utilization_report,
    whatif_report,
)
from .serialization import (
    design_from_spec,
    requirements_from_spec,
    scenario_from_spec,
    workload_from_spec,
)
from .workload.presets import cello


def _engine_config(args: argparse.Namespace) -> "Optional[EngineConfig]":
    """Build an engine config from ``--workers``/``--cache-dir``.

    None (= the engine's serial, uncached default) when neither flag
    was given, so default CLI runs stay on the historical code path.
    """
    workers = getattr(args, "workers", None) or 1
    cache_dir = getattr(args, "cache_dir", None)
    if workers <= 1 and cache_dir is None:
        return None
    return EngineConfig(
        workers=workers,
        cache_dir=cache_dir,
        memory_cache_entries=256 if cache_dir is not None else 0,
    )


def _cmd_case_study(args: argparse.Namespace) -> int:
    """Print the paper's Tables 5, 6 and the Figure 5 breakdown."""
    workload = cello()
    requirements = case_study_requirements()
    scenarios = case_study_scenarios()
    designs = all_table7_designs()
    config = _engine_config(args)

    baseline = designs["baseline"]
    results = evaluate_scenarios_cached(
        baseline, workload, scenarios, requirements, config=config
    )
    first = next(iter(results.values()))
    print(baseline.render_hierarchy())
    print()
    print(utilization_report(first.utilization, title="Table 5: normal mode utilization"))
    print()
    print(dependability_report(results, title="Table 6: worst-case RT and DL"))
    print()
    print(cost_breakdown_report(results, title="Figure 5: overall system cost"))
    print()

    hardware = [s for s in scenarios if s.scope.is_hardware]
    outcomes = evaluate_design_map(
        designs, workload, hardware, requirements, config=config
    )
    grid = {}
    labels: "List[str]" = []
    for name, outcome in outcomes.items():
        if outcome.error is not None:
            raise outcome.error
        grid[name] = outcome.value
        labels = list(outcome.value.keys())
    print(whatif_report(grid, labels, title="Table 7: what-if scenarios"))
    if getattr(args, "trace", False):
        print()
        print(provenance_report(results, title="Provenance: baseline design"))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    """Evaluate the design/workload/scenarios of a JSON spec file."""
    with open(args.spec) as handle:
        spec = json.load(handle)
    workload = workload_from_spec(spec.get("workload", "cello"))
    design = design_from_spec(spec.get("design", "baseline"))
    scenario_specs = spec.get("scenarios", ["array"])
    scenarios = [scenario_from_spec(s) for s in scenario_specs]
    if "requirements" in spec:
        requirements = requirements_from_spec(spec["requirements"])
    else:
        requirements = case_study_requirements()

    results = evaluate_scenarios_cached(
        design, workload, scenarios, requirements, config=_engine_config(args)
    )
    first = next(iter(results.values()))
    print(design.render_hierarchy())
    print()
    print(f"workload: {workload.describe()}")
    print()
    print(utilization_report(first.utilization))
    print()
    print(dependability_report(results))
    print()
    print(cost_breakdown_report(results))
    for label, assessment in results.items():
        if assessment.recovery is not None:
            print()
            print(f"[{label}]")
            print(assessment.recovery.render_timeline())
    if getattr(args, "trace", False):
        print()
        print(provenance_report(results))
    if any(not a.meets_objectives for a in results.values()):
        print()
        print("WARNING: declared RTO/RPO objectives are violated")
        return 1
    return 0


def _cmd_risk(args: argparse.Namespace) -> int:
    """Assess annualized risk for a spec file's scenario ensemble."""
    from .reporting.risk_report import risk_report
    from .risk import assess_risk
    from .serialization import canonical_json, ensemble_from_spec

    with open(args.spec) as handle:
        spec = json.load(handle)
    workload = workload_from_spec(spec.get("workload", "cello"))
    design = design_from_spec(spec.get("design", "baseline"))
    if "ensemble" not in spec:
        raise ReproError(
            f"spec {args.spec!r} has no 'ensemble' section; "
            "'repro risk' needs rated scenarios (see 'repro evaluate' "
            "for single-scenario worst cases)"
        )
    ensemble = ensemble_from_spec(spec["ensemble"])
    if "requirements" in spec:
        requirements = requirements_from_spec(spec["requirements"])
    else:
        requirements = case_study_requirements()

    assessment = assess_risk(
        design,
        workload,
        ensemble,
        requirements,
        years=args.years,
        samples=args.samples,
        seed=args.seed,
        config=_engine_config(args),
    )
    if args.format == "json":
        print(canonical_json(assessment.to_dict()))
    else:
        print(risk_report(assessment))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Statically check spec files for dependability anti-patterns.

    A leading sub-analyzer name dispatches over Python source instead:
    ``repro lint dim|code|par|exn [PATHS]`` runs the dimensional
    dataflow checker, the units/exception code linter, the
    parallel-safety analyzer, or the exception-flow analyzer;
    ``repro lint all [SPEC...] [PATHS...]`` runs everything as one
    merged pass.  Flags and exit codes match the analyzers'
    ``python -m repro.lint.<module>`` entry points exactly.
    """
    sub = args.specs[0] if args.specs else None
    rest = args.specs[1:]
    if sub == "dim":
        from .lint.dimcheck import lint_paths

        diagnostics = lint_paths(
            rest or ["src/repro"], max_pragmas=args.max_pragmas
        )
    elif sub == "code":
        from .lint.codelint import DEFAULT_PATHS, lint_paths

        diagnostics = lint_paths(
            rest or list(DEFAULT_PATHS), max_pragmas=args.max_pragmas
        )
    elif sub == "par":
        from .lint.parcheck import lint_paths

        diagnostics = lint_paths(
            rest or ["src/repro"], max_pragmas=args.max_pragmas
        )
    elif sub == "exn":
        from .lint.exncheck import lint_paths

        diagnostics = lint_paths(
            rest or ["src/repro"], max_pragmas=args.max_pragmas
        )
    elif sub == "all":
        from .lint.allcheck import lint_targets, split_targets

        specs, paths = split_targets(rest or ["src/repro"])
        diagnostics = lint_targets(specs, paths, max_pragmas=args.max_pragmas)
    else:
        from .lint.engine import lint_files

        diagnostics = lint_files(args.specs)
    print(render_diagnostics(diagnostics, args.format))
    return lint_exit_code(diagnostics, strict=args.strict)


def _cmd_list_designs(_args: argparse.Namespace) -> int:
    """List the named designs a spec file can reference."""
    for name, design in all_table7_designs().items():
        print(f"{name}: {len(design.levels)} levels")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    """Search the catalog design space for the cheapest feasible design."""
    from .design import DesignSpace, candidate_designs, optimize
    from .reporting.tables import Table
    from .scenarios.failures import FailureScenario
    from .scenarios.requirements import BusinessRequirements
    from .units import format_money

    if args.spec is not None:
        with open(args.spec) as handle:
            spec = json.load(handle)
        workload = workload_from_spec(spec.get("workload", "cello"))
        scenarios = [
            scenario_from_spec(s)
            for s in spec.get("scenarios", ["array", "site"])
        ]
        if "requirements" in spec:
            requirements = requirements_from_spec(spec["requirements"])
        else:
            requirements = case_study_requirements()
    else:
        workload = cello()
        scenarios = [
            FailureScenario.array_failure("primary-array"),
            FailureScenario.site_disaster(),
        ]
        requirements = BusinessRequirements.per_hour(
            50_000, 50_000, rto=args.rto, rpo=args.rpo
        )

    candidates = candidate_designs(DesignSpace())
    outcome = optimize(
        candidates, workload, scenarios, requirements,
        config=_engine_config(args),
    )
    print(outcome.summary())
    print()
    table = Table(
        headers=["rank", "design", "feasible", "worst-case total"],
        title="Ranking (by worst-case total cost)",
    )
    for position, entry in enumerate(outcome.ranking, start=1):
        table.add_row(
            position,
            entry.name,
            "yes" if entry.feasible else "no",
            format_money(entry.objective),
        )
    print(table.render())
    return 0 if outcome.best is not None else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run registered benchmarks; record history; gate on regressions."""
    from . import bench as bench_pkg
    from .reporting.tables import Table

    infos = bench_pkg.all_benches(args.filter)
    if not infos:
        print(f"error: no benchmarks match {args.filter!r}", file=sys.stderr)
        return 2
    if args.list:
        for info in infos:
            print(f"{info.name}: {info.description}")
        return 0

    results = bench_pkg.run_suite(infos, repeats=args.repeats)
    table = Table(
        headers=["benchmark", "median ms", "mean ms", "min ms", "max ms"],
        title=f"Benchmarks ({args.repeats} repeats each)",
    )
    for result in results:
        table.add_row(
            result.name,
            f"{result.median_ms:.3f}",
            f"{result.mean_ms:.3f}",
            f"{result.min_ms:.3f}",
            f"{result.max_ms:.3f}",
        )
    print(table.render())

    if args.json_out is not None:
        import time as time_module

        stamp = time_module.time()
        payload = {"results": [result.record(stamp) for result in results]}
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote results to {args.json_out}", file=sys.stderr)
    if not args.no_history:
        count = bench_pkg.append_history(args.history, results)
        print(f"appended {count} records to {args.history}", file=sys.stderr)
    if args.update_baseline:
        bench_pkg.write_baseline(args.baseline, results)
        print(f"updated baseline {args.baseline}", file=sys.stderr)

    if args.check:
        tolerance = (
            bench_pkg.DEFAULT_TOLERANCE
            if args.tolerance is None
            else args.tolerance
        )
        min_delta = (
            bench_pkg.DEFAULT_MIN_DELTA_MS
            if args.min_delta is None
            else args.min_delta
        )
        try:
            baseline = bench_pkg.load_baseline(args.baseline)
        except FileNotFoundError:
            print(
                f"error: no baseline at {args.baseline} "
                "(run with --update-baseline first)",
                file=sys.stderr,
            )
            return 2
        reports = bench_pkg.check_regressions(
            results, baseline, tolerance=tolerance, min_delta_ms=min_delta
        )
        print()
        for report in reports:
            print(report.describe())
        regressed = [report for report in reports if report.regressed]
        if regressed:
            print(
                f"FAIL: {len(regressed)} benchmark(s) regressed beyond "
                f"{tolerance * 100:.0f}% tolerance",
                file=sys.stderr,
            )
            return 1
        print(f"OK: no regressions beyond {tolerance * 100:.0f}% tolerance")
    return 0


def _run_summary(record: RunRecord) -> "Dict[str, Any]":
    """One run's JSON summary row (``repro runs list/latest --format json``)."""
    return {
        "run_id": record.run_id,
        "directory": record.directory,
        "command": record.command,
        "status": record.status,
        "started": record.started,
        "wall_time_s": record.wall_time_s,
        "manifest_schema": record.manifest_schema,
        "model_schema_version": record.model_schema_version,
        "tasks": len(record.tasks()),
    }


def _cmd_runs(args: argparse.Namespace) -> int:
    """Inspect, compare and prune the run ledgers under a runs root."""
    from .reporting.runs_report import (
        run_diff_report,
        run_show_report,
        runs_list_report,
    )

    store = RunStore(args.runs_root)
    action = args.runs_command
    as_json = args.format == "json"

    if action == "list":
        records = store.list(
            command=args.filter_command, status=args.status, schema=args.schema
        )
        if as_json:
            payload = {
                "runs": [_run_summary(r) for r in records],
                "skipped": [
                    {"directory": directory, "reason": reason}
                    for directory, reason in store.skipped
                ],
            }
            print(json.dumps(payload, indent=2))
        else:
            print(runs_list_report(records, store.skipped))
        return 0

    if action == "latest":
        record = store.latest(command=args.filter_command)
        if record is None:
            print(f"error: no runs under {store.root!r}", file=sys.stderr)
            return 1
        if as_json:
            print(json.dumps(_run_summary(record), indent=2))
        else:
            print(f"{record.run_id}  {record.directory}")
        return 0

    if action == "show":
        record = resolve_run(args.run, root=store.root)
        if as_json:
            print(json.dumps(record.manifest, indent=2, sort_keys=True))
        else:
            print(run_show_report(record))
        return 0

    if action == "gc":
        removed = store.gc(args.keep)
        if as_json:
            print(json.dumps({"removed": [_run_summary(r) for r in removed]}, indent=2))
        else:
            for record in removed:
                print(f"removed {record.run_id}  {record.directory}")
            print(f"removed {len(removed)} run(s), kept {args.keep} newest")
        return 0

    # action == "diff"
    rel_threshold = (
        args.fail_on_regression
        if args.fail_on_regression is not None
        else args.rel_threshold
    )
    diff = diff_runs(
        resolve_run(args.base, root=store.root),
        resolve_run(args.cand, root=store.root),
        rel_threshold=rel_threshold,
        abs_threshold_ms=args.abs_threshold_ms,
        explain_fraction=args.explain_fraction,
    )
    if args.json_out is not None:
        with open(args.json_out, "w") as handle:
            json.dump(diff.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote diff to {args.json_out}", file=sys.stderr)
    if as_json:
        print(json.dumps(diff.to_dict(), indent=2))
    else:
        print(run_diff_report(diff))
    if args.fail_on_regression is not None and diff.has_regressions:
        print(
            f"FAIL: {len(diff.regressions)} span regression(s) beyond "
            f"{rel_threshold * 100:.0f}% / {args.abs_threshold_ms:.0f}ms",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags of the evaluating subcommands."""
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print a per-phase span tree and provenance explanations",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print an aggregated span profile (call counts, cumulative "
        "and self time per span name, hot call paths)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write spans and metrics as JSON lines to PATH",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metrics (counters, gauges, histograms)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the run's metrics in OpenMetrics text format to PATH",
    )
    parser.add_argument(
        "--run-dir",
        metavar="PATH",
        default=None,
        help="write a run ledger under PATH: manifest.json, spans.jsonl, "
        "metrics.prom and progress.jsonl (implies tracing and metrics)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="report live sweep progress (done/total, cache hits, "
        "throughput, ETA) on stderr",
    )
    parser.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics (OpenMetrics), /healthz and /progress on "
        "127.0.0.1:PORT for the duration of the run (0 picks a free "
        "port, announced on stderr)",
    )
    parser.add_argument(
        "--baseline",
        dest="baseline_run",
        metavar="RUN",
        default=None,
        help="after the run, diff this run against RUN (a ledger "
        "directory, or a run ID under the new ledger's parent "
        "directory) and print the attribution report on stderr; "
        "requires --run-dir",
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """The evaluation-engine flags of the evaluating subcommands."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="evaluate designs on N worker processes (default: 1, inline; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="cache evaluation results under PATH (content-addressed; "
        "reused across runs until the model changes)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for doc generation and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-dependability",
        description="Evaluate storage system dependability (Keeton & "
        "Merchant, DSN 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    case = sub.add_parser("case-study", help="reproduce the paper's case study")
    _add_obs_flags(case)
    _add_engine_flags(case)
    case.set_defaults(func=_cmd_case_study)

    ev = sub.add_parser("evaluate", help="evaluate a JSON spec file")
    ev.add_argument("spec", help="path to the JSON spec")
    _add_obs_flags(ev)
    _add_engine_flags(ev)
    ev.set_defaults(func=_cmd_evaluate)

    risk = sub.add_parser(
        "risk",
        help="assess annualized risk for a spec file's scenario ensemble",
    )
    risk.add_argument("spec", help="JSON spec file with an 'ensemble' section")
    risk.add_argument(
        "--years",
        type=float,
        default=1.0,
        metavar="Y",
        help="assessment horizon in years (default: 1)",
    )
    risk.add_argument(
        "--samples",
        type=int,
        default=0,
        metavar="N",
        help="add a seeded Monte Carlo cross-check with N samples "
        "(default: 0, analytic only)",
    )
    risk.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="SEED",
        help="root seed for the Monte Carlo substreams (default: 0)",
    )
    risk.add_argument(
        "--format",
        choices=["human", "json"],
        default="human",
        help="human tables, or one line of canonical JSON "
        "(byte-identical across serial/parallel/cached runs)",
    )
    _add_obs_flags(risk)
    _add_engine_flags(risk)
    risk.set_defaults(func=_cmd_risk)

    lint = sub.add_parser(
        "lint",
        help="statically check spec files for dependability anti-patterns",
    )
    lint.add_argument(
        "specs",
        nargs="+",
        help="JSON spec files to lint; or a sub-analyzer over Python "
        "source: `dim [PATHS]` (dimensional dataflow), `code [PATHS]` "
        "(units/exception hygiene), `par [PATHS]` (parallel-safety & "
        "determinism), `exn [PATHS]` (exception-flow contract), "
        "`all [SPEC...] [PATHS...]` (everything, merged)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on warnings as well as errors",
    )
    lint.add_argument(
        "--max-pragmas",
        type=int,
        default=None,
        metavar="N",
        help="(dim/code/par/exn/all) fail when an analyzer's pragma "
        "count exceeds N",
    )
    lint.add_argument(
        "--format",
        choices=LINT_FORMATS,
        default="human",
        help="output format (default: human)",
    )
    _add_obs_flags(lint)
    lint.set_defaults(func=_cmd_lint)

    ls = sub.add_parser("list-designs", help="list named designs")
    ls.set_defaults(func=_cmd_list_designs)

    opt = sub.add_parser(
        "optimize",
        help="search the catalog design space for the cheapest feasible design",
    )
    opt.add_argument(
        "spec", nargs="?", default=None,
        help="optional JSON spec supplying workload/scenarios/requirements",
    )
    opt.add_argument("--rto", default=None, help='recovery time objective, e.g. "4 hr"')
    opt.add_argument("--rpo", default=None, help='recovery point objective, e.g. "1 hr"')
    _add_obs_flags(opt)
    _add_engine_flags(opt)
    opt.set_defaults(func=_cmd_optimize)

    bench = sub.add_parser(
        "bench",
        help="run the registered hot-path benchmarks",
    )
    bench.add_argument(
        "--repeats", type=int, default=5,
        help="timed calls per benchmark after one warmup (default: 5)",
    )
    bench.add_argument(
        "--filter", metavar="SUBSTRING", default=None,
        help="only run benchmarks whose name contains SUBSTRING",
    )
    bench.add_argument(
        "--list", action="store_true",
        help="list the registered benchmarks and exit",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="exit 1 if any benchmark regresses beyond --tolerance vs "
        "the committed baseline",
    )
    bench.add_argument(
        "--tolerance", type=float, default=None,
        help="acceptable slowdown vs the baseline best-of-N as a "
        "fraction (default: 0.5)",
    )
    bench.add_argument(
        "--min-delta", type=float, default=None, metavar="MS",
        help="a regression must also exceed the baseline by this many "
        "milliseconds (default: 1.0)",
    )
    bench.add_argument(
        "--baseline", metavar="PATH", default="benchmarks/BENCH_baseline.json",
        help="committed baseline medians (default: %(default)s)",
    )
    bench.add_argument(
        "--history", metavar="PATH", default="BENCH_history.jsonl",
        help="JSONL trajectory to append results to (default: %(default)s)",
    )
    bench.add_argument(
        "--no-history", action="store_true",
        help="do not append to the history file",
    )
    bench.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file with this run's medians",
    )
    bench.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="also write this run's records as one JSON document to PATH",
    )
    bench.set_defaults(func=_cmd_bench)

    runs = sub.add_parser(
        "runs",
        help="inspect, compare and prune run ledgers (--run-dir outputs)",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    def _add_runs_common(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--runs-root",
            metavar="DIR",
            default="runs",
            help="directory whose subdirectories are run ledgers "
            "(default: %(default)s)",
        )
        sub_parser.add_argument(
            "--format",
            choices=("human", "json"),
            default="human",
            help="output format (default: human)",
        )

    runs_list = runs_sub.add_parser("list", help="list the indexed runs")
    runs_list.add_argument(
        "--command",
        dest="filter_command",
        metavar="NAME",
        default=None,
        help="only runs of this subcommand (evaluate, optimize, ...)",
    )
    runs_list.add_argument(
        "--status",
        default=None,
        help="only runs with this status (ok, error, running)",
    )
    runs_list.add_argument(
        "--schema",
        metavar="VERSION",
        default=None,
        help="only runs with this manifest schema number or model "
        "schema version prefix",
    )
    _add_runs_common(runs_list)

    runs_show = runs_sub.add_parser("show", help="show one run in detail")
    runs_show.add_argument("run", help="run ID, unique ID prefix, or ledger path")
    _add_runs_common(runs_show)

    runs_latest = runs_sub.add_parser(
        "latest", help="print the most recently started run"
    )
    runs_latest.add_argument(
        "--command",
        dest="filter_command",
        metavar="NAME",
        default=None,
        help="the latest run of this subcommand only",
    )
    _add_runs_common(runs_latest)

    runs_diff = runs_sub.add_parser(
        "diff",
        help="structurally diff two runs: span regressions with "
        "deepest-path attribution, metric deltas, correctness drift",
    )
    runs_diff.add_argument("base", help="baseline run (ID, prefix, or path)")
    runs_diff.add_argument("cand", help="candidate run (ID, prefix, or path)")
    runs_diff.add_argument(
        "--rel-threshold",
        type=float,
        default=DEFAULT_REL_THRESHOLD,
        metavar="FRACTION",
        help="a span regresses when it slows by more than this fraction "
        "of its baseline (default: %(default)s)",
    )
    runs_diff.add_argument(
        "--abs-threshold-ms",
        type=float,
        default=DEFAULT_ABS_THRESHOLD_MS,
        metavar="MS",
        help="... and by more than this many milliseconds "
        "(default: %(default)s)",
    )
    runs_diff.add_argument(
        "--explain-fraction",
        type=float,
        default=DEFAULT_EXPLAIN_FRACTION,
        metavar="FRACTION",
        help="attribution descends into a child explaining at least this "
        "fraction of its parent's delta (default: %(default)s)",
    )
    runs_diff.add_argument(
        "--fail-on-regression",
        nargs="?",
        type=float,
        const=DEFAULT_REL_THRESHOLD,
        default=None,
        metavar="FRACTION",
        help="exit 1 when any span regresses; the optional FRACTION "
        "overrides --rel-threshold (bare flag: %(const)s)",
    )
    runs_diff.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="also write the full diff as one JSON document to PATH",
    )
    _add_runs_common(runs_diff)

    runs_gc = runs_sub.add_parser(
        "gc", help="delete all but the newest N finished runs"
    )
    runs_gc.add_argument(
        "--keep",
        type=int,
        required=True,
        metavar="N",
        help="number of newest runs to keep (running runs never deleted)",
    )
    _add_runs_common(runs_gc)
    runs.set_defaults(func=_cmd_runs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    trace = getattr(args, "trace", False)
    profile = getattr(args, "profile", False)
    trace_out = getattr(args, "trace_out", None)
    want_metrics = getattr(args, "metrics", False)
    metrics_out = getattr(args, "metrics_out", None)
    run_dir = getattr(args, "run_dir", None)
    serve_port = getattr(args, "serve_metrics", None)
    want_progress = getattr(args, "progress", False)
    tracer = (
        set_tracer(Tracer())
        if (trace or profile or trace_out or run_dir is not None)
        else None
    )
    registry = (
        set_metrics(MetricsRegistry())
        if (
            want_metrics
            or trace_out
            or metrics_out
            or run_dir is not None
            or serve_port is not None
        )
        else None
    )

    baseline_run = getattr(args, "baseline_run", None)
    if baseline_run is not None and run_dir is None:
        print("error: --baseline requires --run-dir", file=sys.stderr)
        return 2

    ledger: "Optional[RunLedger]" = None
    task_log: "Optional[TaskLog]" = None
    if run_dir is not None:
        from .engine import model_schema_version

        ledger = RunLedger(run_dir, argv=argv if argv is not None else sys.argv[1:])
        set_run_id(ledger.run_id)
        task_log = TaskLog()
        set_task_log(task_log)
        ledger.begin(
            extra={
                "command": getattr(args, "command", None),
                "model_schema_version": model_schema_version(),
                "workers": getattr(args, "workers", 1),
                "cache_dir": getattr(args, "cache_dir", None),
            }
        )

    reporter: "Optional[ProgressReporter]" = None
    if want_progress or ledger is not None or serve_port is not None:
        reporter = ProgressReporter(
            stream=sys.stderr if want_progress else None, ledger=ledger
        )
        set_progress(reporter)

    server: "Optional[TelemetryServer]" = None
    if serve_port is not None:
        server = TelemetryServer(
            serve_port, registry=registry, progress=reporter
        )
        bound_port = server.start()
        print(
            f"serving telemetry on http://127.0.0.1:{bound_port}/metrics",
            file=sys.stderr,
        )
    # Machine formats (lint --format json/sarif) own stdout; the
    # human observability reports move to stderr so stdout stays
    # parseable — the same contract evaluate/optimize keep implicitly.
    report_stream = (
        sys.stderr if getattr(args, "format", "human") != "human" else sys.stdout
    )
    try:
        try:
            code = args.func(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            code = 2
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            code = 2
        if tracer is not None and trace:
            print(file=report_stream)
            print(span_tree_report(tracer), file=report_stream)
        if tracer is not None and profile:
            print(file=report_stream)
            print(profile_report(tracer), file=report_stream)
        if registry is not None and want_metrics:
            print(file=report_stream)
            print(metrics_report(registry), file=report_stream)
        if trace_out is not None:
            try:
                count = write_trace_jsonl(
                    trace_out, tracer=tracer, metrics=registry
                )
            except OSError as exc:
                print(f"error: cannot write trace: {exc}", file=sys.stderr)
                return 2
            print(f"wrote {count} trace records to {trace_out}", file=sys.stderr)
        if metrics_out is not None and registry is not None:
            try:
                write_openmetrics(metrics_out, registry)
            except OSError as exc:
                print(f"error: cannot write metrics: {exc}", file=sys.stderr)
                return 2
            print(f"wrote OpenMetrics to {metrics_out}", file=sys.stderr)
        if ledger is not None:
            try:
                ledger.finish(
                    tracer,
                    registry,
                    status="ok" if code == 0 else "error",
                    tasks=task_log.records if task_log is not None else None,
                )
            except OSError as exc:
                print(f"error: cannot write run ledger: {exc}", file=sys.stderr)
                return 2
            print(
                f"run ledger written to {ledger.directory} "
                f"(run {ledger.run_id})",
                file=sys.stderr,
            )
        if baseline_run is not None and ledger is not None:
            # Auto-diff the fresh ledger against the named baseline.
            # On stderr: stdout stays the evaluation report alone.
            from .reporting.runs_report import run_diff_report

            try:
                root = os.path.dirname(os.path.abspath(ledger.directory))
                diff = diff_runs(
                    resolve_run(baseline_run, root=root),
                    RunRecord.load(ledger.directory),
                )
            except ReproError as exc:
                print(f"error: cannot diff baseline: {exc}", file=sys.stderr)
                return 2
            print(file=sys.stderr)
            print(run_diff_report(diff), file=sys.stderr)
        return code
    finally:
        if server is not None:
            server.stop()
        if (
            tracer is not None
            or registry is not None
            or reporter is not None
            or ledger is not None
        ):
            reset_obs()


if __name__ == "__main__":
    sys.exit(main())
