"""The DSN'04 case study: inputs of Tables 2–4 and the Table 7 designs.

Factory functions here assemble the exact storage system designs the
paper evaluates:

* :func:`baseline_design` — split mirroring (12 h x4) + weekly full tape
  backup (48 h window, 4 cycles) + 4-weekly vaulting (39 fulls, 3 years);
* the six what-if variants of Table 7 (weekly vault; weekly vault with
  daily cumulative incrementals; weekly vault with daily fulls; the same
  with snapshots instead of split mirrors; batched asynchronous
  mirroring over 1 or 10 OC-3 links);
* :func:`case_study_scenarios` — the three failure scopes of Table 6
  (a 1 MB object rolled back 24 h, the primary array, the primary site).

Every design uses the Table 4 device catalog and the section 4 sparing
story: dedicated hot spares (60 s, 1.0x) on the primary array and tape
library, plus a shared remote recovery facility (9 h, 0.2x).
"""

from __future__ import annotations

from typing import Dict, List

from .core.hierarchy import StorageDesign
from .devices.catalog import (
    air_shipment,
    enterprise_tape_library,
    midrange_disk_array,
    oc3_links,
    offsite_vault,
    san_link,
)
from .devices.spares import SpareConfig
from .scenarios.failures import FailureScenario
from .scenarios.locations import PRIMARY_SITE, REMOTE_SITE
from .scenarios.requirements import BusinessRequirements
from .techniques.backup import Backup, IncrementalKind, IncrementalPolicy
from .techniques.mirroring import BatchedAsyncMirror
from .techniques.primary import PrimaryCopy
from .techniques.snapshot import VirtualSnapshot
from .techniques.split_mirror import SplitMirror
from .techniques.vaulting import RemoteVaulting
from .units import HOUR, MB, WEEK


def case_study_requirements() -> BusinessRequirements:
    """$50,000 per hour for both unavailability and recent data loss."""
    return BusinessRequirements.per_hour(50_000.0, 50_000.0)


def recovery_facility() -> SpareConfig:
    """The shared remote hosting facility: 9 h to provision, 0.2x cost."""
    return SpareConfig.shared("9 hr", 0.2)


def hot_spare() -> SpareConfig:
    """A dedicated hot spare: 60 s to provision, full price."""
    return SpareConfig.dedicated("60 s", 1.0)


# ---------------------------------------------------------------------------
# Building blocks shared by the tape-based designs.
# ---------------------------------------------------------------------------


def _tape_design(
    name: str,
    pit_technique,
    backup: Backup,
    vaulting: RemoteVaulting,
) -> StorageDesign:
    """Primary + PiT copies + tape backup + vaulting on catalog hardware."""
    array = midrange_disk_array(spare=hot_spare())
    library = enterprise_tape_library(spare=hot_spare())
    vault = offsite_vault()
    san = san_link()
    courier = air_shipment()

    design = StorageDesign(name, recovery_facility=recovery_facility())
    design.add_level(PrimaryCopy(), store=array)
    design.add_level(pit_technique, store=array)
    design.add_level(backup, store=library, transport=san)
    design.add_level(vaulting, store=vault, transport=courier)
    return design


def _baseline_split_mirror() -> SplitMirror:
    """Table 3: splits every 12 h, 4 accessible mirrors (2 days)."""
    return SplitMirror("12 hr", retention_count=4)


def _baseline_backup() -> Backup:
    """Table 3: weekly fulls, 48 h backup window, 1 h offset, 4 cycles."""
    return Backup(
        full_accumulation_window="1 wk",
        full_propagation_window="48 hr",
        full_hold_window="1 hr",
        retention_count=4,
    )


def _baseline_vaulting() -> RemoteVaulting:
    """Table 3: ship every 4 weeks after on-site retention, keep 3 years."""
    return RemoteVaulting(
        accumulation_window="4 wk",
        propagation_window="24 hr",
        hold_window=4 * WEEK + 12 * HOUR,
        retention_count=39,
    )


def _weekly_vaulting() -> RemoteVaulting:
    """Table 7 "weekly vault": weekly accW, 12 h holdW, same 3-year reach."""
    return RemoteVaulting(
        accumulation_window="1 wk",
        propagation_window="24 hr",
        hold_window="12 hr",
        retention_count=156,
    )


# ---------------------------------------------------------------------------
# The seven Table 7 designs.
# ---------------------------------------------------------------------------


def baseline_design() -> StorageDesign:
    """The Figure 1 / Tables 3–4 baseline configuration."""
    return _tape_design(
        "baseline",
        _baseline_split_mirror(),
        _baseline_backup(),
        _baseline_vaulting(),
    )


def weekly_vault_design() -> StorageDesign:
    """Baseline with weekly (instead of 4-weekly) vault shipments."""
    return _tape_design(
        "weekly vault",
        _baseline_split_mirror(),
        _baseline_backup(),
        _weekly_vaulting(),
    )


def weekly_vault_incrementals_design() -> StorageDesign:
    """Weekly vault + weekly fulls with 5 daily cumulative incrementals.

    Table 7 "Weekly vault, F+I": 48 h accW and propW for fulls, 24 h accW
    and 12 h propW for incrementals, cycleCnt 5.
    """
    backup = Backup(
        full_accumulation_window="48 hr",
        full_propagation_window="48 hr",
        full_hold_window="1 hr",
        retention_count=4,
        incremental=IncrementalPolicy(
            kind=IncrementalKind.CUMULATIVE,
            count=5,
            accumulation_window="24 hr",
            propagation_window="12 hr",
            hold_window="1 hr",
        ),
    )
    return _tape_design(
        "weekly vault, F+I",
        _baseline_split_mirror(),
        backup,
        _weekly_vaulting(),
    )


def weekly_vault_daily_fulls_design() -> StorageDesign:
    """Weekly vault + daily full backups (24 h accW, 12 h propW)."""
    backup = Backup(
        full_accumulation_window="24 hr",
        full_propagation_window="12 hr",
        full_hold_window="1 hr",
        retention_count=4,
    )
    return _tape_design(
        "weekly vault, daily F",
        _baseline_split_mirror(),
        backup,
        _weekly_vaulting(),
    )


def weekly_vault_daily_fulls_snapshot_design() -> StorageDesign:
    """Daily fulls with virtual snapshots instead of split mirrors."""
    backup = Backup(
        full_accumulation_window="24 hr",
        full_propagation_window="12 hr",
        full_hold_window="1 hr",
        retention_count=4,
    )
    return _tape_design(
        "weekly vault, daily F, snapshot",
        VirtualSnapshot("12 hr", retention_count=4),
        backup,
        _weekly_vaulting(),
    )


def async_batch_mirror_design(link_count: int = 1) -> StorageDesign:
    """Batched asynchronous mirroring over OC-3 links (Table 7, last rows).

    One-minute batches to a remote mid-range array; no tape hierarchy.
    """
    primary = midrange_disk_array(spare=hot_spare())
    secondary = midrange_disk_array(
        name="mirror-array", location=REMOTE_SITE, spare=SpareConfig.none()
    )
    links = oc3_links(link_count=link_count)

    design = StorageDesign(
        f"asyncB mirror, {link_count} link{'s' if link_count != 1 else ''}",
        recovery_facility=recovery_facility(),
    )
    design.add_level(PrimaryCopy(), store=primary)
    design.add_level(
        BatchedAsyncMirror(accumulation_window="1 min"),
        store=secondary,
        transport=links,
    )
    return design


def all_table7_designs() -> "Dict[str, StorageDesign]":
    """The seven designs of Table 7, in the paper's row order."""
    designs = [
        baseline_design(),
        weekly_vault_design(),
        weekly_vault_incrementals_design(),
        weekly_vault_daily_fulls_design(),
        weekly_vault_daily_fulls_snapshot_design(),
        async_batch_mirror_design(1),
        async_batch_mirror_design(10),
    ]
    return {design.name: design for design in designs}


# ---------------------------------------------------------------------------
# The Table 6 failure scenarios.
# ---------------------------------------------------------------------------


def object_failure_scenario() -> FailureScenario:
    """A corrupted 1 MB object rolled back to its state 24 h earlier."""
    return FailureScenario.object_corruption(
        object_size=1 * MB, recovery_target_age="24 hr"
    )


def array_failure_scenario() -> FailureScenario:
    """Failure of the primary array; recover everything to 'now'."""
    return FailureScenario.array_failure("primary-array")


def site_failure_scenario() -> FailureScenario:
    """A disaster destroying the primary site."""
    return FailureScenario.site_disaster(PRIMARY_SITE)


def case_study_scenarios() -> "List[FailureScenario]":
    """Object, array and site failures, in Table 6 order."""
    return [
        object_failure_scenario(),
        array_failure_scenario(),
        site_failure_scenario(),
    ]
