"""Interconnect device models: network links and physical shipment.

The paper folds "physical transportation methods, such as courier
services" into the interconnect category (§3.2.2).  Both kinds carry
RP propagation traffic between levels and both participate in recovery
paths, but they behave differently:

* a :class:`NetworkLink` moves bytes at a rate — transfer time scales
  with the amount of data and with how many parallel links are
  provisioned (the case study compares 1 vs. 10 OC-3 links);
* a :class:`Shipment` (courier, air freight) moves *media* with a fixed
  door-to-door delay regardless of how many bytes the cartridges hold,
  and costs per shipment rather than per byte.
"""

from __future__ import annotations

from typing import Optional, Union

from ..exceptions import DeviceError
from ..scenarios.locations import Location, PRIMARY_SITE
from ..units import parse_duration, parse_rate
from .base import Device
from .costs import CostModel
from .spares import SpareConfig


class Interconnect(Device):
    """Base class for devices that carry data between levels."""

    is_interconnect = True

    def transfer_time(self, size_bytes: float) -> float:
        """Serialized time to move ``size_bytes`` across this interconnect.

        Subclasses must implement; used by the recovery-time model.
        """
        raise NotImplementedError


class NetworkLink(Interconnect):
    """One or more parallel network links (SAN, WAN, OC-3, ...).

    Parameters
    ----------
    link_bandwidth:
        Per-link usable rate.  Accepts the paper's telecom units:
        ``"155 Mbps"`` parses to 155e6/8 bytes/s.
    link_count:
        Number of parallel links; the aggregate envelope is
        ``link_count * link_bandwidth``.
    propagation_delay:
        One-way latency (``devDelay``); matters for synchronous
        mirroring write latency, negligible for bulk recovery.
    """

    def __init__(
        self,
        name: str,
        link_bandwidth: Union[str, float],
        link_count: int = 1,
        propagation_delay: Union[str, float] = 0.0,
        cost_model: Optional[CostModel] = None,
        spare: Optional[SpareConfig] = None,
        location: Location = PRIMARY_SITE,
    ):
        if link_count <= 0:
            raise DeviceError(f"link {name!r} requires at least one link")
        per_link = parse_rate(link_bandwidth)
        if per_link <= 0:
            raise DeviceError(f"link {name!r} bandwidth must be positive")
        super().__init__(
            name=name,
            max_capacity=float("inf"),
            max_bandwidth=per_link * link_count,
            cost_model=cost_model,
            spare=spare,
            location=location,
            access_delay=parse_duration(propagation_delay),
        )
        self.link_bandwidth = per_link
        self.link_count = int(link_count)

    def transfer_time(self, size_bytes: float) -> float:
        """Bulk transfer time at the bandwidth left over by RP traffic."""
        available = self.available_bandwidth()
        if size_bytes <= 0:
            return 0.0
        if available <= 0:
            return float("inf")
        return self.access_delay + size_bytes / available

    def outlays_by_technique(self) -> "dict[str, float]":
        """Links are billed on *provisioned* bandwidth, not demanded.

        A leased OC-3 costs the same whether it runs full or idle, so the
        per-bandwidth cost applies to the full envelope, attributed to
        the primary technique; remaining techniques pay nothing extra.
        """
        outlays: "dict[str, float]" = {}
        primary = self.primary_technique
        if primary is not None:
            outlays[primary] = self.cost_model.fixed + self.cost_model.bandwidth_cost(
                self.max_bandwidth
            )
            for demand in self.demands:
                outlays.setdefault(demand.technique, 0.0)
            if self.spare.exists and self.spare.discount > 0:
                for technique in list(outlays):
                    outlays[technique] *= 1.0 + self.spare.discount
        return outlays


class Shipment(Interconnect):
    """Physical media transport with a fixed door-to-door delay.

    Parameters
    ----------
    delay:
        Door-to-door shipment time (``devDelay``; 24 h for the
        case-study air shipment).
    """

    def __init__(
        self,
        name: str,
        delay: Union[str, float] = "24 hr",
        cost_model: Optional[CostModel] = None,
        location: Location = PRIMARY_SITE,
    ):
        delay_s = parse_duration(delay)
        if delay_s < 0:
            raise DeviceError(f"shipment {name!r} delay must be >= 0")
        super().__init__(
            name=name,
            max_capacity=float("inf"),
            max_bandwidth=float("inf"),
            cost_model=cost_model,
            spare=SpareConfig.none(),
            location=location,
            access_delay=delay_s,
        )

    def transfer_time(self, size_bytes: float) -> float:
        """Constant door-to-door delay: the courier doesn't care about bytes."""
        if size_bytes <= 0:
            return 0.0
        return self.access_delay
