"""Device presets from the paper's Table 4.

Factory functions here reproduce the case-study hardware with its
published envelopes, delays, cost coefficients and sparing:

* :func:`midrange_disk_array` — HP EVA-like mid-range array,
  ``256 @ 73 GB`` disks, ``256 @ 25 MB/s``, 512 MB/s enclosure, cost
  ``123297 + c * 17.2``, dedicated hot spare (0.02 h, 1.0x);
* :func:`enterprise_tape_library` — HP ESL9595-like library,
  ``500 @ 400 GB`` LTO cartridges, ``16 @ 60 MB/s`` drives, 240 MB/s
  enclosure, 0.01 h load delay, cost ``98895 + c * 0.4 + b * 108.6``,
  dedicated hot spare;
* :func:`offsite_vault` — ``5000 @ 400 GB`` cartridge vault, cost
  ``25000 + c * 0.4``, no spare;
* :func:`air_shipment` — 24 h courier at $50 per shipment;
* :func:`oc3_links` — 155 Mbit/s WAN links at ``b * 23535`` per MB/s of
  provisioned bandwidth (Table 7's asynchronous-batch mirror rows);
* :func:`san_link` — a generous local Fibre Channel SAN hop, effectively
  free, used to connect co-located devices.

Spare provisioning defaults follow section 4's prose: hot spares
provision in 60 seconds at full (1.0x) cost; shared recovery-facility
resources provision in 9 hours at 0.2x cost.
"""

from __future__ import annotations

from typing import Optional

from ..scenarios.locations import Location, PRIMARY_SITE, REMOTE_SITE
from ..units import GB, MB
from .costs import CostModel
from .disk_array import DiskArray
from .interconnect import NetworkLink, Shipment
from .spares import SpareConfig
from .tape_library import TapeLibrary
from .vault import Vault


def midrange_disk_array(
    name: str = "primary-array",
    location: Location = PRIMARY_SITE,
    spare: Optional[SpareConfig] = None,
    raid_capacity_factor: float = 2.0,
) -> DiskArray:
    """The Table 4 mid-range disk array (HP EVA class)."""
    return DiskArray(
        name=name,
        max_capacity_slots=256,
        slot_capacity=73 * GB,
        max_bandwidth_slots=256,
        slot_bandwidth=25 * MB,
        enclosure_bandwidth=512 * MB,
        cost_model=CostModel.from_paper_units(fixed=123_297.0, per_gb=17.2),
        spare=spare if spare is not None else SpareConfig.dedicated("0.02 hr", 1.0),
        location=location,
        raid_capacity_factor=raid_capacity_factor,
    )


def enterprise_tape_library(
    name: str = "tape-library",
    location: Location = PRIMARY_SITE,
    spare: Optional[SpareConfig] = None,
    restore_efficiency: float = 0.7,
) -> TapeLibrary:
    """The Table 4 enterprise tape library (HP ESL9595 class).

    ``restore_efficiency`` derates bulk-restore reads for cartridge
    switching and stream-rate matching.  The 0.7 default is calibrated
    so the case-study full-dataset restore reproduces the paper's 2.4 h
    (Table 6); the paper's own tech-report constant is unavailable —
    see EXPERIMENTS.md.
    """
    return TapeLibrary(
        name=name,
        max_cartridges=500,
        cartridge_capacity=400 * GB,
        max_drives=16,
        drive_bandwidth=60 * MB,
        enclosure_bandwidth=240 * MB,
        cost_model=CostModel.from_paper_units(
            fixed=98_895.0, per_gb=0.4, per_mb_per_sec=108.6
        ),
        spare=spare if spare is not None else SpareConfig.dedicated("0.02 hr", 1.0),
        location=location,
        access_delay="0.01 hr",
        restore_efficiency=restore_efficiency,
    )


def offsite_vault(
    name: str = "vault",
    location: Location = REMOTE_SITE,
) -> Vault:
    """The Table 4 off-site tape vault (5000 cartridges, no sparing)."""
    return Vault(
        name=name,
        max_cartridges=5000,
        cartridge_capacity=400 * GB,
        cost_model=CostModel.from_paper_units(fixed=25_000.0, per_gb=0.4),
        spare=SpareConfig.none(),
        location=location,
    )


def air_shipment(
    name: str = "air-shipment",
    location: Location = PRIMARY_SITE,
) -> Shipment:
    """The Table 4 air courier: 24 h door-to-door, $50 per shipment."""
    return Shipment(
        name=name,
        delay="24 hr",
        cost_model=CostModel(per_shipment=50.0),
        location=location,
    )


def oc3_links(
    link_count: int = 1,
    name: str = "wan-links",
    location: Location = PRIMARY_SITE,
) -> NetworkLink:
    """OC-3 (155 Mbit/s) WAN links, billed at $23,535 per MB/s provisioned.

    Table 7's asynchronous-batch mirroring rows use 1 and 10 of these.
    """
    return NetworkLink(
        name=name,
        link_bandwidth="155 Mbps",
        link_count=link_count,
        cost_model=CostModel.from_paper_units(per_mb_per_sec=23_535.0),
        location=location,
    )


def san_link(
    name: str = "san",
    location: Location = PRIMARY_SITE,
) -> NetworkLink:
    """A local Fibre Channel SAN hop between co-located devices.

    The paper does not model the SAN as a bottleneck (it is absent from
    Table 4), so the preset is fast enough never to bind and carries no
    cost of its own.
    """
    return NetworkLink(
        name=name,
        link_bandwidth=4096 * MB,
        link_count=1,
        cost_model=CostModel(),
        location=location,
    )
