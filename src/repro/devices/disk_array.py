"""Disk array device model.

The paper's case-study primary array is a mid-range array modeled on
HP's EVA: up to 256 disks of 73 GB at 25 MB/s each behind a 512 MB/s
enclosure.  Arrays store data with internal RAID redundancy; the
case-study numbers imply RAID-1 (every logical byte costs two raw
bytes — Table 5's 14.6% foreground capacity is ``2 * 1360 GB`` over the
``256 * 73 GB`` envelope), so :class:`DiskArray` carries a
``raid_capacity_factor`` applied when logical demands are translated to
raw slot consumption.
"""

from __future__ import annotations

from typing import Optional, Union

from ..exceptions import DeviceError
from ..scenarios.locations import Location, PRIMARY_SITE
from ..units import parse_duration, parse_rate, parse_size
from .base import Device
from .costs import CostModel
from .spares import SpareConfig


class DiskArray(Device):
    """A disk array: capacity slots are disks, bandwidth slots are disks.

    Parameters
    ----------
    name:
        Unique device name.
    max_capacity_slots / slot_capacity:
        Number of disk bays and per-disk capacity.
    max_bandwidth_slots / slot_bandwidth:
        Number of active disks and per-disk bandwidth; on an array every
        disk contributes to both envelopes.
    enclosure_bandwidth:
        Aggregate controller/bus limit; the effective bandwidth envelope
        is ``min(enclosure, slots * slot_bw)``.
    raid_capacity_factor:
        Raw bytes consumed per logical byte (2.0 for RAID-1, ~1.25 for
        wide RAID-5, 1.0 for unprotected striping).
    """

    def __init__(
        self,
        name: str,
        max_capacity_slots: int,
        slot_capacity: Union[str, float],
        max_bandwidth_slots: int,
        slot_bandwidth: Union[str, float],
        enclosure_bandwidth: Union[str, float],
        cost_model: Optional[CostModel] = None,
        spare: Optional[SpareConfig] = None,
        location: Location = PRIMARY_SITE,
        access_delay: Union[str, float] = 0.0,
        raid_capacity_factor: float = 2.0,
    ):
        if max_capacity_slots <= 0 or max_bandwidth_slots <= 0:
            raise DeviceError(f"array {name!r} slot counts must be positive")
        if raid_capacity_factor < 1.0:
            raise DeviceError(
                f"array {name!r} RAID capacity factor must be >= 1, "
                f"got {raid_capacity_factor}"
            )
        slot_cap = parse_size(slot_capacity)
        slot_bw = parse_rate(slot_bandwidth)
        encl_bw = parse_rate(enclosure_bandwidth)
        if slot_cap <= 0 or slot_bw <= 0 or encl_bw <= 0:
            raise DeviceError(f"array {name!r} slot/enclosure values must be positive")
        super().__init__(
            name=name,
            max_capacity=max_capacity_slots * slot_cap,
            max_bandwidth=min(encl_bw, max_bandwidth_slots * slot_bw),
            cost_model=cost_model,
            spare=spare,
            location=location,
            access_delay=parse_duration(access_delay),
        )
        self.max_capacity_slots = int(max_capacity_slots)
        self.slot_capacity = slot_cap
        self.max_bandwidth_slots = int(max_bandwidth_slots)
        self.slot_bandwidth = slot_bw
        self.enclosure_bandwidth = encl_bw
        self.raid_capacity_factor = float(raid_capacity_factor)

    def raw_capacity(self, logical_bytes: float) -> float:
        """Logical bytes inflated by the RAID redundancy factor."""
        return logical_bytes * self.raid_capacity_factor

    def disks_required(self) -> int:
        """Number of disk slots needed for the current raw capacity demand."""
        import math

        return int(math.ceil(self.capacity_demand_raw() / self.slot_capacity))
