"""Device cost models (paper section 3.3.5, Table 4).

Outlay costs have fixed, per-capacity and per-bandwidth components; for
physical transport there is additionally a per-shipment component.  All
components are **annualized** dollars (the paper amortizes hardware over
a three-year depreciation and folds in facilities and service), so the
framework's "overall cost" is an annual outlay plus the per-event
penalties of the evaluated failure.

The Table 4 coefficients are quoted per GB and per MB/s; this class
stores them per byte and per byte/s, with constructors accepting the
paper's units.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import DeviceError
from ..units import GB, MB


@dataclass(frozen=True)
class CostModel:
    """Annualized outlay cost: fixed + c*capacity + b*bandwidth + s*shipments.

    Parameters
    ----------
    fixed:
        Dollars per year for the enclosure, service and facilities.
    per_byte:
        Dollars per year per byte of *used* capacity.
    per_byte_per_sec:
        Dollars per year per byte/s of *provisioned* bandwidth demand.
    per_shipment:
        Dollars per physical shipment (courier runs).
    """

    fixed: float = 0.0
    per_byte: float = 0.0
    per_byte_per_sec: float = 0.0
    per_shipment: float = 0.0

    def __post_init__(self) -> None:
        for label, value in (
            ("fixed", self.fixed),
            ("per_byte", self.per_byte),
            ("per_byte_per_sec", self.per_byte_per_sec),
            ("per_shipment", self.per_shipment),
        ):
            if value < 0:
                raise DeviceError(f"cost component {label} must be >= 0, got {value}")

    @classmethod
    def from_paper_units(
        cls,
        fixed: float = 0.0,
        per_gb: float = 0.0,
        per_mb_per_sec: float = 0.0,
        per_shipment: float = 0.0,
    ) -> "CostModel":
        """Construct from Table 4's units ($/GB and $/(MB/s), binary)."""
        return cls(
            fixed=fixed,
            per_byte=per_gb / GB,
            per_byte_per_sec=per_mb_per_sec / MB,
            per_shipment=per_shipment,
        )

    # -- evaluation -------------------------------------------------------------

    def capacity_cost(self, capacity_bytes: float) -> float:
        """Annual cost of the given used capacity."""
        return self.per_byte * max(0.0, capacity_bytes)

    def bandwidth_cost(self, bandwidth_bps: float) -> float:
        """Annual cost of the given provisioned bandwidth."""
        return self.per_byte_per_sec * max(0.0, bandwidth_bps)

    def shipment_cost(self, shipments_per_year: float) -> float:
        """Annual cost of the given shipment frequency."""
        return self.per_shipment * max(0.0, shipments_per_year)

    def variable_cost(
        self,
        capacity_bytes: float = 0.0,
        bandwidth_bps: float = 0.0,
        shipments_per_year: float = 0.0,
    ) -> float:
        """All non-fixed components for the given usage."""
        return (
            self.capacity_cost(capacity_bytes)
            + self.bandwidth_cost(bandwidth_bps)
            + self.shipment_cost(shipments_per_year)
        )

    def total_cost(
        self,
        capacity_bytes: float = 0.0,
        bandwidth_bps: float = 0.0,
        shipments_per_year: float = 0.0,
    ) -> float:
        """Fixed plus variable components for the given usage."""
        return self.fixed + self.variable_cost(
            capacity_bytes, bandwidth_bps, shipments_per_year
        )
