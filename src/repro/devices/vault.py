"""Off-site vault device model.

A vault is pure archival capacity — shelf space for tape cartridges (the
case-study vault holds up to 5000 LTO cartridges).  It has no bandwidth
envelope of its own (Table 4 marks the vault's bandwidth "n/a"; Table 5
reports 0.0% bandwidth utilization): data leaves the vault by physically
shipping cartridges, which is the job of a
:class:`~repro.devices.interconnect.Shipment` interconnect.
"""

from __future__ import annotations

from typing import Optional, Union

from ..exceptions import DeviceError
from ..scenarios.locations import Location, REMOTE_SITE
from ..units import parse_duration, parse_size
from .base import Device
from .costs import CostModel
from .spares import SpareConfig


class Vault(Device):
    """An off-site archival vault: capacity slots only."""

    def __init__(
        self,
        name: str,
        max_cartridges: int,
        cartridge_capacity: Union[str, float],
        cost_model: Optional[CostModel] = None,
        spare: Optional[SpareConfig] = None,
        location: Location = REMOTE_SITE,
        access_delay: Union[str, float] = 0.0,
    ):
        if max_cartridges <= 0:
            raise DeviceError(f"vault {name!r} cartridge count must be positive")
        cart_cap = parse_size(cartridge_capacity)
        if cart_cap <= 0:
            raise DeviceError(f"vault {name!r} cartridge capacity must be positive")
        super().__init__(
            name=name,
            max_capacity=max_cartridges * cart_cap,
            max_bandwidth=float("inf"),
            cost_model=cost_model,
            spare=spare,
            location=location,
            access_delay=parse_duration(access_delay),
        )
        self.max_cartridges = int(max_cartridges)
        self.cartridge_capacity = cart_cap
