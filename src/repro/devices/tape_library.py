"""Tape library device model.

The case-study library is modeled on HP's ESL9595: up to 500 LTO
cartridges of 400 GB (capacity slots) and up to 16 LTO drives of 60 MB/s
(bandwidth slots) behind a 240 MB/s enclosure.  Tape media carries no
internal redundancy, so logical and raw capacity coincide.  The
``access_delay`` (0.01 h in Table 4) models cartridge load and seek, and
feeds the *serialized fixed period* of the recovery-time model.
"""

from __future__ import annotations

import math
from typing import Optional, Union

from ..exceptions import DeviceError
from ..scenarios.locations import Location, PRIMARY_SITE
from ..units import parse_duration, parse_rate, parse_size
from .base import Device
from .costs import CostModel
from .spares import SpareConfig


class TapeLibrary(Device):
    """A tape library: cartridges are capacity slots, drives bandwidth slots."""

    def __init__(
        self,
        name: str,
        max_cartridges: int,
        cartridge_capacity: Union[str, float],
        max_drives: int,
        drive_bandwidth: Union[str, float],
        enclosure_bandwidth: Union[str, float],
        cost_model: Optional[CostModel] = None,
        spare: Optional[SpareConfig] = None,
        location: Location = PRIMARY_SITE,
        access_delay: Union[str, float] = "0.01 hr",
        restore_efficiency: float = 1.0,
    ):
        if max_cartridges <= 0 or max_drives <= 0:
            raise DeviceError(f"library {name!r} slot counts must be positive")
        if not 0 < restore_efficiency <= 1:
            raise DeviceError(
                f"library {name!r} restore efficiency must be in (0, 1]"
            )
        cart_cap = parse_size(cartridge_capacity)
        drive_bw = parse_rate(drive_bandwidth)
        encl_bw = parse_rate(enclosure_bandwidth)
        if cart_cap <= 0 or drive_bw <= 0 or encl_bw <= 0:
            raise DeviceError(f"library {name!r} slot/enclosure values must be positive")
        super().__init__(
            name=name,
            max_capacity=max_cartridges * cart_cap,
            max_bandwidth=min(encl_bw, max_drives * drive_bw),
            cost_model=cost_model,
            spare=spare,
            location=location,
            access_delay=parse_duration(access_delay),
        )
        self.max_cartridges = int(max_cartridges)
        self.cartridge_capacity = cart_cap
        self.max_drives = int(max_drives)
        self.drive_bandwidth = drive_bw
        self.enclosure_bandwidth = encl_bw
        # Bulk restores stream slower than the nominal drive rate:
        # cartridge switches, repositioning and rate-matching stalls.
        self.recovery_read_efficiency = float(restore_efficiency)

    def cartridges_required(self) -> int:
        """Cartridges needed for the current capacity demand."""
        return int(math.ceil(self.capacity_demand_logical() / self.cartridge_capacity))

    def drives_required(self) -> int:
        """Drives needed to sustain the current bandwidth demand."""
        return int(math.ceil(self.bandwidth_demand() / self.drive_bandwidth))

    def cartridges_for(self, data_bytes: Union[str, float]) -> int:
        """Cartridges a dataset of the given size occupies (for shipping)."""
        return int(math.ceil(parse_size(data_bytes) / self.cartridge_capacity))
