"""Device base model: envelopes, demand ledger, utilization and outlays.

A device exposes:

* a **capacity envelope** ``devCap = maxCapSlots * slotCap`` and a
  **bandwidth envelope** ``devBW = min(enclBW, maxBWSlots * slotBW)``.
  (The paper's §3.3.1 prints ``max`` here, but its own case-study
  arithmetic — 12.4 MB/s being 2.4% of the array — only holds with
  ``min``; see DESIGN.md §2.)
* a **demand ledger**: each data protection technique registers the
  bandwidth and capacity workload demands it places on the device
  (paper §3.2.3).  Utilizations are the summed demands over the
  envelopes (§3.3.1).
* an **outlay model**: the device's fixed cost is attributed to its
  *primary* technique (the first registered, by the paper's convention
  §3.3.5) and each technique additionally pays the per-capacity /
  per-bandwidth / per-shipment costs of its own demands.  Spare
  resources add ``spareDisc`` times the technique's outlay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import DeviceError
from ..scenarios.locations import Location, PRIMARY_SITE
from ..units import format_rate, format_size
from .costs import CostModel
from .spares import SpareConfig


@dataclass(frozen=True)
class Demand:
    """One technique's workload demand on one device.

    ``capacity`` is *logical* bytes; storage devices with internal
    redundancy (RAID) translate it to raw bytes via
    :meth:`Device.raw_capacity`.  ``shipments_per_year`` is only
    meaningful for physical-transport interconnects.
    """

    technique: str
    bandwidth: float = 0.0
    capacity: float = 0.0
    shipments_per_year: float = 0.0
    note: str = ""

    def __post_init__(self) -> None:
        if not self.technique:
            raise DeviceError("demand requires a technique name")
        if self.bandwidth < 0 or self.capacity < 0 or self.shipments_per_year < 0:
            raise DeviceError(
                f"demands must be >= 0 (technique {self.technique!r}: "
                f"bw={self.bandwidth}, cap={self.capacity}, "
                f"ship={self.shipments_per_year})"
            )


@dataclass(frozen=True)
class TechniqueUtilization:
    """One technique's share of a device's utilization."""

    technique: str
    bandwidth: float
    bandwidth_utilization: float
    capacity: float
    capacity_utilization: float


@dataclass(frozen=True)
class DeviceUtilization:
    """A device's normal-mode utilization report (one row of Table 5)."""

    device_name: str
    bandwidth_demand: float
    bandwidth_utilization: float
    capacity_demand_raw: float
    capacity_demand_logical: float
    capacity_utilization: float
    by_technique: Tuple[TechniqueUtilization, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        """Compact single-line rendering for logs and reports."""
        return (
            f"{self.device_name}: bw {self.bandwidth_utilization:.1%} "
            f"({format_rate(self.bandwidth_demand)}), cap "
            f"{self.capacity_utilization:.1%} "
            f"({format_size(self.capacity_demand_logical)})"
        )


class Device:
    """Base class for storage and interconnect devices.

    Parameters
    ----------
    name:
        Unique identifier within a design (e.g. ``"primary-array"``).
    max_capacity:
        Total capacity envelope in bytes (``maxCapSlots * slotCap``);
        ``float('inf')`` for devices without a meaningful limit.
    max_bandwidth:
        Total bandwidth envelope in bytes/s
        (``min(enclBW, maxBWSlots * slotBW)``); ``float('inf')`` where
        not applicable (e.g. a vault).
    cost_model:
        Annualized outlay cost components.
    spare:
        Spare configuration; defaults to no spare.
    location:
        Physical placement for failure-scope evaluation.
    access_delay:
        ``devDelay``: fixed delay to begin reading (tape load/seek) or,
        for interconnects, the propagation delay.  Seconds.
    """

    #: True for interconnects (network links, couriers).  Interconnects
    #: carry data between levels and are never the resting place of an RP.
    is_interconnect: bool = False

    #: Fraction of the available bandwidth actually delivered when the
    #: device is *read as a recovery source* (bulk restore).  1.0 for
    #: devices that stream at full rate; tape libraries lose throughput
    #: to cartridge switches and stream-rate matching (the catalog's
    #: library uses 0.7, calibrated in DESIGN.md/EXPERIMENTS.md).
    recovery_read_efficiency: float = 1.0

    def __init__(
        self,
        name: str,
        max_capacity: float,
        max_bandwidth: float,
        cost_model: Optional[CostModel] = None,
        spare: Optional[SpareConfig] = None,
        location: Location = PRIMARY_SITE,
        access_delay: float = 0.0,
    ):
        if not name:
            raise DeviceError("device requires a name")
        if max_capacity < 0 or max_bandwidth < 0:
            raise DeviceError(f"device {name!r} envelopes must be >= 0")
        if access_delay < 0:
            raise DeviceError(f"device {name!r} access delay must be >= 0")
        self.name = name
        self.max_capacity = float(max_capacity)
        self.max_bandwidth = float(max_bandwidth)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.spare = spare if spare is not None else SpareConfig.none()
        self.location = location
        self.access_delay = float(access_delay)
        self._demands: List[Demand] = []

    # -- demand ledger ----------------------------------------------------------

    def register_demand(
        self,
        technique: str,
        bandwidth: float = 0.0,
        capacity: float = 0.0,
        shipments_per_year: float = 0.0,
        note: str = "",
    ) -> Demand:
        """Record a technique's workload demand on this device.

        The first technique registered becomes the device's *primary*
        technique for cost attribution (paper §3.3.5).
        """
        demand = Demand(
            technique=technique,
            bandwidth=bandwidth,
            capacity=capacity,
            shipments_per_year=shipments_per_year,
            note=note,
        )
        self._demands.append(demand)
        return demand

    def clear_demands(self) -> None:
        """Drop all registered demands (used between evaluations)."""
        self._demands.clear()

    @property
    def demands(self) -> Tuple[Demand, ...]:
        """All registered demands, in registration order."""
        return tuple(self._demands)

    @property
    def primary_technique(self) -> Optional[str]:
        """The technique charged this device's fixed cost."""
        return self._demands[0].technique if self._demands else None

    # -- redundancy translation ---------------------------------------------------

    def raw_capacity(self, logical_bytes: float) -> float:
        """Raw bytes consumed to store the given logical bytes.

        The base device stores data without internal redundancy
        overhead; :class:`~repro.devices.disk_array.DiskArray` overrides
        this with its RAID factor.
        """
        return logical_bytes

    # -- utilization ---------------------------------------------------------------

    def bandwidth_demand(self) -> float:
        """Sum of registered bandwidth demands, bytes/s."""
        return sum(demand.bandwidth for demand in self._demands)

    def capacity_demand_logical(self) -> float:
        """Sum of registered (logical) capacity demands, bytes."""
        return sum(demand.capacity for demand in self._demands)

    def capacity_demand_raw(self) -> float:
        """Raw capacity consumed, after redundancy translation."""
        return self.raw_capacity(self.capacity_demand_logical())

    def bandwidth_utilization(self) -> float:
        """``bwUtil`` = summed bandwidth demand over the envelope."""
        if self.max_bandwidth == float("inf"):
            return 0.0
        if self.max_bandwidth == 0:
            return 0.0 if self.bandwidth_demand() == 0 else float("inf")
        return self.bandwidth_demand() / self.max_bandwidth

    def capacity_utilization(self) -> float:
        """``capUtil`` = raw capacity demand over the envelope."""
        if self.max_capacity == float("inf"):
            return 0.0
        if self.max_capacity == 0:
            return 0.0 if self.capacity_demand_raw() == 0 else float("inf")
        return self.capacity_demand_raw() / self.max_capacity

    def available_bandwidth(self) -> float:
        """Bandwidth left after normal-mode demands (recovery transfers).

        The paper's recovery model limits transfers to "the remaining
        bandwidth after any RP propagation workload demands have been
        satisfied" (§3.3.4).
        """
        if self.max_bandwidth == float("inf"):
            return float("inf")
        return max(0.0, self.max_bandwidth - self.bandwidth_demand())

    def utilization(self) -> DeviceUtilization:
        """Full per-technique utilization report for this device."""
        by_technique = []
        for demand in self._demands:
            raw = self.raw_capacity(demand.capacity)
            by_technique.append(
                TechniqueUtilization(
                    technique=demand.technique,
                    bandwidth=demand.bandwidth,
                    bandwidth_utilization=(
                        demand.bandwidth / self.max_bandwidth
                        if self.max_bandwidth not in (0.0, float("inf"))
                        else 0.0
                    ),
                    capacity=demand.capacity,
                    capacity_utilization=(
                        raw / self.max_capacity
                        if self.max_capacity not in (0.0, float("inf"))
                        else 0.0
                    ),
                )
            )
        return DeviceUtilization(
            device_name=self.name,
            bandwidth_demand=self.bandwidth_demand(),
            bandwidth_utilization=self.bandwidth_utilization(),
            capacity_demand_raw=self.capacity_demand_raw(),
            capacity_demand_logical=self.capacity_demand_logical(),
            capacity_utilization=self.capacity_utilization(),
            by_technique=tuple(by_technique),
        )

    # -- outlays ---------------------------------------------------------------------

    def outlays_by_technique(self) -> "Dict[str, float]":
        """Annualized outlay dollars attributed to each technique.

        The primary technique pays the fixed cost plus its variable
        costs; secondary techniques pay only their *additional* variable
        costs.  A spare adds ``spareDisc`` times each technique's outlay
        (the spare mirrors the device, so its cost decomposes the same
        way).
        """
        outlays: "Dict[str, float]" = {}
        primary = self.primary_technique
        for demand in self._demands:
            cost = self.cost_model.variable_cost(
                capacity_bytes=self.raw_capacity(demand.capacity),
                bandwidth_bps=demand.bandwidth,
                shipments_per_year=demand.shipments_per_year,
            )
            if demand.technique == primary and demand is self._demands[0]:
                cost += self.cost_model.fixed
            outlays[demand.technique] = outlays.get(demand.technique, 0.0) + cost
        if self.spare.exists and self.spare.discount > 0:
            for technique in list(outlays):
                outlays[technique] *= 1.0 + self.spare.discount
        return outlays

    def total_outlay(self) -> float:
        """Total annualized outlay for this device across techniques."""
        return sum(self.outlays_by_technique().values())

    # -- misc ---------------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} at {self.location.label()}>"
