"""Hardware device models (paper sections 3.2.2 and 3.3.1).

Each storage or interconnect device is represented by an *operational
model* (capacity/bandwidth envelopes plus a demand ledger from which
normal-mode utilizations are computed) and a *cost model* (annualized
outlays, attributed per data protection technique).  Keeping the device
internals behind this interface is what lets the compositional framework
swap in more sophisticated device models without change (paper §3).

Modules:

* :mod:`repro.devices.costs` — fixed / per-capacity / per-bandwidth /
  per-shipment cost components;
* :mod:`repro.devices.spares` — spare type, provisioning time, discount;
* :mod:`repro.devices.base` — the demand ledger and utilization math;
* :mod:`repro.devices.disk_array` / :mod:`~repro.devices.tape_library` /
  :mod:`~repro.devices.vault` — storage devices;
* :mod:`repro.devices.interconnect` — network links and physical
  shipment (couriers are interconnects too, per the paper);
* :mod:`repro.devices.catalog` — the Table 4 presets.
"""

from .costs import CostModel
from .spares import SpareConfig, SpareType
from .base import Demand, Device, DeviceUtilization
from .disk_array import DiskArray
from .tape_library import TapeLibrary
from .vault import Vault
from .interconnect import Interconnect, NetworkLink, Shipment
from .catalog import (
    midrange_disk_array,
    enterprise_tape_library,
    offsite_vault,
    air_shipment,
    oc3_links,
    san_link,
)

__all__ = [
    "CostModel",
    "SpareConfig",
    "SpareType",
    "Demand",
    "Device",
    "DeviceUtilization",
    "DiskArray",
    "TapeLibrary",
    "Vault",
    "Interconnect",
    "NetworkLink",
    "Shipment",
    "midrange_disk_array",
    "enterprise_tape_library",
    "offsite_vault",
    "air_shipment",
    "oc3_links",
    "san_link",
]
