"""Spare resource configuration (paper section 3.2.2).

Each device may have a spare that replaces it on failure.  A *dedicated*
hot spare provisions quickly (the case study uses 60 seconds) and costs
the full resource price (discount factor 1.0); a *shared* spare — e.g. a
slice of a remote hosting facility — takes longer to provision (9 hours
in the case study: draining and scrubbing other workloads) but costs
only a fraction (0.2x).  ``NONE`` means the device is not spared; a
failure scope that destroys it forces recovery onto other levels and
replacement is out of scope for the recovery-time model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from ..exceptions import DeviceError
from ..units import parse_duration


class SpareType(enum.Enum):
    """How (and whether) a device is spared."""

    DEDICATED = "dedicated"
    SHARED = "shared"
    NONE = "none"


@dataclass(frozen=True)
class SpareConfig:
    """A device's spare: type, provisioning time and cost discount.

    Parameters
    ----------
    spare_type:
        :class:`SpareType` of the spare resource.
    provisioning_time:
        Seconds (or a duration string) from failure until the spare can
        accept data (``spareTime``).  Contributes the parallelizable
        fixed period of the recovery-time model.
    discount:
        Fraction of the original resource's outlay charged for keeping
        the spare (``spareDisc``): 1.0 for a dedicated duplicate, less
        for shared capacity.
    """

    spare_type: SpareType
    provisioning_time: float = 0.0
    discount: float = 0.0

    def __init__(
        self,
        spare_type: SpareType,
        provisioning_time: Union[str, float] = 0.0,
        discount: float = 0.0,
    ):
        if not isinstance(spare_type, SpareType):
            raise DeviceError(f"spare_type must be a SpareType, got {spare_type!r}")
        time_s = parse_duration(provisioning_time)
        if time_s < 0:
            raise DeviceError(f"provisioning time must be >= 0, got {provisioning_time!r}")
        if discount < 0:
            raise DeviceError(f"spare discount must be >= 0, got {discount}")
        if spare_type is SpareType.NONE and (time_s != 0 or discount != 0):
            raise DeviceError("a NONE spare has no provisioning time or cost")
        object.__setattr__(self, "spare_type", spare_type)
        object.__setattr__(self, "provisioning_time", time_s)
        object.__setattr__(self, "discount", discount)

    @classmethod
    def dedicated(
        cls, provisioning_time: Union[str, float] = "60 s", discount: float = 1.0
    ) -> "SpareConfig":
        """A dedicated hot spare (case-study default: 60 s, full price)."""
        return cls(SpareType.DEDICATED, provisioning_time, discount)

    @classmethod
    def shared(
        cls, provisioning_time: Union[str, float] = "9 hr", discount: float = 0.2
    ) -> "SpareConfig":
        """A shared recovery-facility spare (case-study default: 9 h, 0.2x)."""
        return cls(SpareType.SHARED, provisioning_time, discount)

    @classmethod
    def none(cls) -> "SpareConfig":
        """No spare."""
        return cls(SpareType.NONE)

    @property
    def exists(self) -> bool:
        """True when any spare resource is configured."""
        return self.spare_type is not SpareType.NONE
