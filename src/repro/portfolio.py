"""Multi-object evaluation: several protected objects on shared hardware.

The paper models a single data object for clarity and notes (§3.1.1)
that the extension to multiple objects is "straightforward": explicitly
track each object's workload demands, the techniques and devices
protecting it, and **inter-object dependencies during recovery**.  This
module is that extension.

A :class:`Portfolio` holds named :class:`ProtectedObject` entries, each
pairing a workload with its own design; designs may share device
instances (two databases on one array, one tape library for everything).
Evaluation then:

* registers every object's demands on the (shared) devices *jointly*,
  so utilization reflects the union of protection workloads;
* computes each object's worst-case data loss independently (RPs are
  per-object);
* schedules recoveries respecting the declared dependencies — an
  application object whose database must be restored first starts its
  recovery only when the database finishes — and reports both
  per-object and portfolio-wide recovery times;
* prices outlays once (shared devices are not double-charged) and
  penalties per object.

Recovery concurrency is modeled optimistically within a dependency
level (independent objects restore in parallel, each at its own
available bandwidth) — the conservative serialized alternative is a
single flag away (``serialize_recoveries=True``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .core.dataloss import DataLossResult, compute_data_loss
from .core.demands import register_design_demands
from .core.hierarchy import StorageDesign
from .core.recovery import RecoveryPlan, plan_recovery
from .core.utilization import SystemUtilization
from .core.validate import validate_design
from .devices.base import Device, DeviceUtilization
from .exceptions import DesignError, RecoveryError
from .scenarios.failures import FailureScenario
from .scenarios.requirements import BusinessRequirements
from .units import format_duration, format_money
from .workload.spec import Workload


@dataclass(frozen=True)
class ProtectedObject:
    """One data object: its workload, its design, and what it waits for."""

    name: str
    workload: Workload
    design: StorageDesign
    depends_on: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise DesignError("protected object requires a name")
        if self.name in self.depends_on:
            raise DesignError(f"object {self.name!r} cannot depend on itself")


@dataclass(frozen=True)
class ObjectOutcome:
    """One object's result under the evaluated scenario."""

    name: str
    data_loss: DataLossResult
    plan: Optional[RecoveryPlan]
    recovery_start: float
    recovery_finish: float

    @property
    def own_recovery_time(self) -> float:
        """The object's recovery duration, dependencies excluded."""
        if self.plan is None:
            return float("inf")
        return self.plan.recovery_time

    @property
    def unavailability(self) -> float:
        """Outage as experienced: from failure until this object is back."""
        return self.recovery_finish


@dataclass(frozen=True)
class PortfolioAssessment:
    """The whole portfolio under one failure scenario."""

    portfolio_name: str
    scenario: FailureScenario
    utilization: SystemUtilization
    outcomes: "Dict[str, ObjectOutcome]"
    outlays_by_technique: "Dict[str, float]"
    outage_penalty: float
    loss_penalty: float

    @property
    def portfolio_recovery_time(self) -> float:
        """When the last object is back: the business-level RT."""
        return max(o.recovery_finish for o in self.outcomes.values())

    @property
    def total_outlays(self) -> float:
        """Annualized outlays over the shared device set (no double count)."""
        return sum(self.outlays_by_technique.values())

    @property
    def total_cost(self) -> float:
        """Outlays plus every object's outage and loss penalties."""
        return self.total_outlays + self.outage_penalty + self.loss_penalty

    def summary(self) -> str:
        """One-line portfolio outcome for logs and examples."""
        worst = max(
            self.outcomes.values(), key=lambda o: o.recovery_finish
        )
        return (
            f"{self.portfolio_name} / {self.scenario.describe()}: portfolio "
            f"RT={format_duration(self.portfolio_recovery_time)} (last: "
            f"{worst.name}), cost={format_money(self.total_cost)}"
        )


class Portfolio:
    """Named protected objects whose designs may share devices."""

    def __init__(self, name: str):
        if not name:
            raise DesignError("portfolio requires a name")
        self.name = name
        self._objects: "Dict[str, ProtectedObject]" = {}

    def add_object(
        self,
        name: str,
        workload: Workload,
        design: StorageDesign,
        depends_on: Sequence[str] = (),
    ) -> ProtectedObject:
        """Register an object; dependencies must already be present."""
        if name in self._objects:
            raise DesignError(f"duplicate object name {name!r}")
        for dependency in depends_on:
            if dependency not in self._objects:
                raise DesignError(
                    f"object {name!r} depends on unknown object {dependency!r} "
                    "(add dependencies first)"
                )
        obj = ProtectedObject(
            name=name,
            workload=workload,
            design=design,
            depends_on=tuple(depends_on),
        )
        self._objects[name] = obj
        return obj

    @property
    def objects(self) -> "Tuple[ProtectedObject, ...]":
        """All protected objects, in insertion (topological) order."""
        return tuple(self._objects.values())

    def devices(self) -> "Tuple[Device, ...]":
        """Unique devices across all designs, in first-use order."""
        seen: "Dict[int, Device]" = {}
        for obj in self._objects.values():
            for device in obj.design.devices():
                seen.setdefault(id(device), device)
        return tuple(seen.values())

    # -- joint demand registration -------------------------------------------------

    def register_demands(self) -> None:
        """Register every object's demands jointly on shared devices."""
        if not self._objects:
            raise DesignError(f"portfolio {self.name!r} has no objects")
        for device in self.devices():
            device.clear_demands()
        for obj in self._objects.values():
            register_design_demands(obj.design, obj.workload, clear=False)

    def utilization(self) -> SystemUtilization:
        """Joint utilization across the shared device set."""
        reports: "List[DeviceUtilization]" = [
            device.utilization() for device in self.devices()
        ]
        max_cap, max_cap_dev = 0.0, None
        max_bw, max_bw_dev = 0.0, None
        for report in reports:
            if report.capacity_utilization > max_cap:
                max_cap, max_cap_dev = report.capacity_utilization, report.device_name
            if report.bandwidth_utilization > max_bw:
                max_bw, max_bw_dev = report.bandwidth_utilization, report.device_name
        return SystemUtilization(
            devices=tuple(reports),
            max_capacity_utilization=max_cap,
            max_capacity_device=max_cap_dev,
            max_bandwidth_utilization=max_bw,
            max_bandwidth_device=max_bw_dev,
        )

    # -- recovery scheduling ----------------------------------------------------------

    def _topological_order(self) -> "List[ProtectedObject]":
        """Objects ordered so dependencies precede dependents.

        Insertion order already guarantees acyclicity (dependencies must
        exist when an object is added), so insertion order *is* a valid
        topological order.
        """
        return list(self._objects.values())

    def evaluate(
        self,
        scenario: FailureScenario,
        requirements: BusinessRequirements,
        strict_utilization: bool = True,
        serialize_recoveries: bool = False,
    ) -> PortfolioAssessment:
        """Assess the whole portfolio under one failure scenario.

        ``serialize_recoveries=True`` restores objects strictly one at a
        time (a single recovery crew / shared restore pipe); the default
        lets independent objects restore in parallel.
        """
        for obj in self._objects.values():
            validate_design(obj.design, obj.workload, strict=True)
        self.register_demands()
        utilization = self.utilization()
        if strict_utilization:
            utilization.raise_if_overcommitted()

        outcomes: "Dict[str, ObjectOutcome]" = {}
        outage_penalty = 0.0
        loss_penalty = 0.0
        serial_clock = 0.0
        for obj in self._topological_order():
            loss = compute_data_loss(obj.design, scenario, allow_total_loss=True)
            plan: Optional[RecoveryPlan] = None
            if not loss.total_loss:
                try:
                    plan = plan_recovery(
                        obj.design, scenario, obj.workload, loss_result=loss
                    )
                except RecoveryError:
                    plan = None
            dependency_finish = max(
                (outcomes[d].recovery_finish for d in obj.depends_on),
                default=0.0,
            )
            start = max(dependency_finish, serial_clock)
            duration = plan.recovery_time if plan is not None else float("inf")
            finish = start + duration
            if serialize_recoveries:
                serial_clock = finish
            outcomes[obj.name] = ObjectOutcome(
                name=obj.name,
                data_loss=loss,
                plan=plan,
                recovery_start=start,
                recovery_finish=finish,
            )
            outage_penalty += requirements.outage_penalty(finish)
            loss_penalty += (
                float("inf")
                if loss.total_loss
                else requirements.loss_penalty(loss.data_loss)
            )

        return PortfolioAssessment(
            portfolio_name=self.name,
            scenario=scenario,
            utilization=utilization,
            outcomes=outcomes,
            outlays_by_technique=self._outlays(),
            outage_penalty=outage_penalty,
            loss_penalty=loss_penalty,
        )

    def evaluate_scenarios(
        self,
        scenarios: "Iterable[FailureScenario]",
        requirements: BusinessRequirements,
        strict_utilization: bool = True,
        config: "Optional[Any]" = None,
    ) -> "Dict[str, PortfolioAssessment]":
        """Assess the portfolio under each scenario, through the engine.

        Returns ``{scenario description: assessment}`` in input order.
        Portfolio tasks run inline in the parent (they share live
        device state), but routing them through
        :func:`repro.engine.map_evaluations` gives them the engine's
        result caching and uniform failure reporting; ``config`` is an
        :class:`repro.engine.EngineConfig` (imported lazily — the model
        layer never depends on the engine at import time).
        """
        from .engine import EngineConfig, PortfolioTask, map_evaluations

        tasks = [
            PortfolioTask(
                name=scenario.describe(),
                portfolio=self,
                scenario=scenario,
                requirements=requirements,
                strict_utilization=strict_utilization,
            )
            for scenario in scenarios
        ]
        engine_config = config if config is not None else EngineConfig()
        # Portfolios aggregate live device objects: force inline
        # execution so shared state stays in this process.
        if engine_config.workers > 1:
            engine_config = dataclasses.replace(engine_config, workers=1)
        outcomes = map_evaluations(tasks, config=engine_config, label="portfolio")
        results: "Dict[str, PortfolioAssessment]" = {}
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
            results[outcome.name] = outcome.value
        return results

    def evaluate_contended(
        self,
        scenario: FailureScenario,
        requirements: BusinessRequirements,
        background_load: float = 1.0,
        strict_utilization: bool = True,
    ) -> PortfolioAssessment:
        """Assess the portfolio with recoveries contending for bandwidth.

        The plain :meth:`evaluate` lets independent objects restore in
        parallel at full rate — optimistic when they share devices.
        This variant replays every object's recovery transfers through
        the event-level :class:`~repro.simulation.RecoverySimulator`:
        objects at the same dependency depth contend for their shared
        devices (processor sharing); deeper objects start when their
        dependencies finish.  ``background_load`` scales how much of the
        normal-mode RP propagation demand stays active during recovery.
        """
        from .simulation.recovery_sim import RecoverySimulator, TransferSpec

        for obj in self._objects.values():
            validate_design(obj.design, obj.workload, strict=True)
        self.register_demands()
        utilization = self.utilization()
        if strict_utilization:
            utilization.raise_if_overcommitted()

        # Device envelopes and background demands for the simulator; the
        # source-read efficiency folds into each transfer's nominal rate.
        bandwidths: "Dict[str, float]" = {}
        demands: "Dict[str, float]" = {}
        for device in self.devices():
            if device.max_bandwidth != float("inf"):
                bandwidths[device.name] = device.max_bandwidth
                demands[device.name] = device.bandwidth_demand()

        # Layer objects by dependency depth.
        depth: "Dict[str, int]" = {}
        for obj in self._topological_order():
            depth[obj.name] = (
                max((depth[d] for d in obj.depends_on), default=-1) + 1
            )
        max_depth = max(depth.values(), default=0)

        simulator = RecoverySimulator(
            bandwidths, demands, background_load=background_load
        )
        outcomes: "Dict[str, ObjectOutcome]" = {}
        outage_penalty = 0.0
        loss_penalty = 0.0
        finish_times: "Dict[str, float]" = {}
        for layer in range(max_depth + 1):
            layer_specs: "List[TransferSpec]" = []
            layer_meta: "Dict[str, Tuple[DataLossResult, Optional[RecoveryPlan], float]]" = {}
            for obj in self._topological_order():
                if depth[obj.name] != layer:
                    continue
                loss = compute_data_loss(obj.design, scenario, allow_total_loss=True)
                plan: Optional[RecoveryPlan] = None
                if not loss.total_loss:
                    try:
                        plan = plan_recovery(
                            obj.design, scenario, obj.workload, loss_result=loss
                        )
                    except RecoveryError:
                        plan = None
                offset = max(
                    (finish_times[d] for d in obj.depends_on), default=0.0
                )
                layer_meta[obj.name] = (loss, plan, offset)
                if plan is None:
                    continue
                for step in plan.steps:
                    if step.kind != "transfer" or step.duration <= 0:
                        continue
                    # The plan's own rate already folds in the source's
                    # read efficiency and background demands; it is the
                    # transfer's solo (uncontended) speed.  Contention
                    # on shared devices can only slow it further.
                    solo_rate = plan.recovery_size / step.duration
                    layer_specs.append(
                        TransferSpec(
                            label=f"{obj.name}:{step.label}",
                            ready_at=offset + step.start,
                            size=plan.recovery_size,
                            nominal_rate=solo_rate,
                            devices=tuple(
                                d for d in step.devices if d in bandwidths
                            ),
                        )
                    )
            simulated = (
                {r.plan_label: r for r in simulator.simulate(layer_specs)}
                if layer_specs
                else {}
            )
            for name, (loss, plan, offset) in layer_meta.items():
                if plan is None:
                    finish = float("inf")
                elif name in simulated:
                    finish = simulated[name].finish_time
                else:
                    finish = offset + plan.recovery_time
                finish_times[name] = finish
                outcomes[name] = ObjectOutcome(
                    name=name,
                    data_loss=loss,
                    plan=plan,
                    recovery_start=offset,
                    recovery_finish=finish,
                )
                outage_penalty += requirements.outage_penalty(finish)
                loss_penalty += (
                    float("inf")
                    if loss.total_loss
                    else requirements.loss_penalty(loss.data_loss)
                )

        return PortfolioAssessment(
            portfolio_name=self.name,
            scenario=scenario,
            utilization=utilization,
            outcomes=outcomes,
            outlays_by_technique=self._outlays(),
            outage_penalty=outage_penalty,
            loss_penalty=loss_penalty,
        )

    # -- outlays ---------------------------------------------------------------------

    def _outlays(self) -> "Dict[str, float]":
        """Joint outlays over the shared device set (demands registered).

        Devices keep their joint ledgers from :meth:`register_demands`,
        so per-technique attribution already reflects every object's
        demands; iterating designs would double-count shared devices.
        """
        outlays: "Dict[str, float]" = {}
        seen_devices: "Dict[int, Device]" = {}
        for obj in self._objects.values():
            for device in obj.design.devices():
                seen_devices.setdefault(id(device), device)
        for device in seen_devices.values():
            for technique, dollars in device.outlays_by_technique().items():
                outlays[technique] = outlays.get(technique, 0.0) + dollars
        # The recovery facility charges its discount fraction of the
        # primary-site hardware it stands behind, exactly once per
        # protected site (several objects on one site share one standby).
        facility_total = 0.0
        sites_seen = set()
        for obj in self._objects.values():
            facility = obj.design.recovery_facility
            if facility is None or not facility.exists:
                continue
            primary_site = obj.design.primary_level.store.location
            site_key = (primary_site.region, primary_site.site)
            if site_key in sites_seen:
                continue
            sites_seen.add(site_key)
            covered = [
                device
                for device in self.devices()
                if not device.is_interconnect
                and device.location.same_site(primary_site)
            ]
            facility_total += facility.discount * sum(
                device.cost_model.total_cost(
                    capacity_bytes=device.capacity_demand_raw(),
                    bandwidth_bps=device.bandwidth_demand(),
                )
                for device in covered
            )
        if facility_total > 0:
            outlays["recovery facility"] = facility_total
        return outlays
