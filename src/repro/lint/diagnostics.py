"""The diagnostic model shared by the design linter and the code linter.

Both halves of :mod:`repro.lint` — the rule-based design checker and the
AST-based code checker — emit the same :class:`Diagnostic` record, so
the output renderers (:mod:`repro.lint.output`), the CLI exit-code
policy and the CI gates treat them uniformly.

A diagnostic carries a stable code (``DEP###`` for design rules,
``UNI###``/``EXC###`` for code rules), a :class:`Severity`, the
human-readable message, a fix-it ``hint``, and *where* it points:
a JSON pointer into the spec for design diagnostics, or a
file/line/column triple for code diagnostics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional

from ..exceptions import ReproError


class LintError(ReproError):
    """The linter itself was misused (unknown rule code, bad format)."""


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``error > warning > info``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric rank for comparisons (higher is more severe)."""
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` value for this severity."""
        return {"error": "error", "warning": "warning", "info": "note"}[self.value]

    @classmethod
    def from_sarif_level(cls, level: str) -> "Severity":
        """The severity a SARIF ``level`` maps back to."""
        mapping = {"error": cls.ERROR, "warning": cls.WARNING, "note": cls.INFO}
        try:
            return mapping[level]
        except KeyError:
            raise LintError(f"unknown SARIF level {level!r}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of either linter.

    Parameters
    ----------
    code:
        Stable rule identifier (``"DEP004"``, ``"UNI001"``).
    severity:
        :class:`Severity` of the finding.
    message:
        What is wrong, in one sentence.
    hint:
        How to fix it (empty when no mechanical fix exists).
    category:
        Rule family (``"placement"``, ``"retention"``, ``"units"``...).
    source:
        ``"design"`` for spec/design rules, ``"code"`` for AST rules.
    pointer:
        JSON pointer into the spec (``"/design/levels/2"``); design
        diagnostics only.
    file / line / column:
        Source location; code diagnostics (and the spec file a design
        diagnostic came from, when linting files).
    """

    code: str
    severity: Severity
    message: str
    hint: str = ""
    category: str = ""
    source: str = "design"
    pointer: str = ""
    file: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None

    def with_file(self, file: str) -> "Diagnostic":
        """A copy attributed to the given file (spec-file lint runs)."""
        return Diagnostic(
            code=self.code,
            severity=self.severity,
            message=self.message,
            hint=self.hint,
            category=self.category,
            source=self.source,
            pointer=self.pointer,
            file=file,
            line=self.line,
            column=self.column,
        )

    def location(self) -> str:
        """The most specific place this diagnostic points at."""
        parts = []
        if self.file:
            place = self.file
            if self.line is not None:
                place += f":{self.line}"
                if self.column is not None:
                    place += f":{self.column}"
            parts.append(place)
        if self.pointer:
            parts.append(self.pointer)
        return " ".join(parts)

    def render(self) -> str:
        """One-line human rendering: ``place: CODE severity: message``."""
        place = self.location()
        prefix = f"{place}: " if place else ""
        line = f"{prefix}{self.code} {self.severity.value}: {self.message}"
        if self.hint:
            line += f"\n    fix: {self.hint}"
        return line

    def to_dict(self) -> "Dict[str, Any]":
        """JSON-friendly dictionary (the inverse of :func:`from_dict`)."""
        record: "Dict[str, Any]" = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "source": self.source,
        }
        if self.hint:
            record["hint"] = self.hint
        if self.category:
            record["category"] = self.category
        if self.pointer:
            record["pointer"] = self.pointer
        if self.file is not None:
            record["file"] = self.file
        if self.line is not None:
            record["line"] = self.line
        if self.column is not None:
            record["column"] = self.column
        return record


def diagnostic_from_dict(record: Mapping[str, Any]) -> Diagnostic:
    """Rebuild a :class:`Diagnostic` from its dictionary form.

    Unknown keys are ignored: diagnostics are an output record, so one
    written by a newer version must still load on this one.
    """
    try:
        return Diagnostic(
            code=str(record["code"]),
            severity=Severity(record["severity"]),
            message=str(record["message"]),
            hint=str(record.get("hint", "")),
            category=str(record.get("category", "")),
            source=str(record.get("source", "design")),
            pointer=str(record.get("pointer", "")),
            file=record.get("file"),
            line=record.get("line"),
            column=record.get("column"),
        )
    except KeyError as exc:
        raise LintError(f"diagnostic record missing key {exc}") from None


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """The most severe severity present, or None for a clean run."""
    worst: Optional[Severity] = None
    for diagnostic in diagnostics:
        if worst is None or diagnostic.severity.rank > worst.rank:
            worst = diagnostic.severity
    return worst


def exit_code(diagnostics: Iterable[Diagnostic], strict: bool = False) -> int:
    """The CLI exit-code policy.

    Errors always fail (1); warnings fail only under ``--strict``;
    info-level findings never fail.
    """
    worst = max_severity(diagnostics)
    if worst is Severity.ERROR:
        return 1
    if worst is Severity.WARNING and strict:
        return 1
    return 0
