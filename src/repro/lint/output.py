"""Diagnostic renderers: human text, JSON, and SARIF 2.1.0.

All three formats render the same list of
:class:`~repro.lint.diagnostics.Diagnostic` objects; JSON and SARIF are
loss-free (``diagnostics_from_json`` / ``diagnostics_from_sarif``
round-trip them), so CI systems can consume either.

SARIF output follows the 2.1.0 schema: each diagnostic becomes a
``result`` with the severity mapped to a SARIF ``level``
(``info`` -> ``note``), the fix-it hint and JSON pointer carried in
``properties``, and the rule table exported as ``tool.driver.rules``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence

from .diagnostics import (
    Diagnostic,
    LintError,
    Severity,
    diagnostic_from_dict,
    max_severity,
)
from .registry import RULES, RuleInfo

#: The formats ``render`` accepts (the CLI's ``--format`` choices).
FORMATS = ("human", "json", "sarif")

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-lint"


def all_rule_infos() -> "List[RuleInfo]":
    """Every known rule: design rules plus the four code-rule tables."""
    infos = list(RULES.values())
    # runtime imports: the code analyzers render via this module
    from . import codelint, dimcheck, exncheck, parcheck

    infos.extend(codelint.CODE_RULES.values())
    infos.extend(dimcheck.DIM_RULES.values())
    infos.extend(parcheck.PAR_RULES.values())
    infos.extend(exncheck.EXN_RULES.values())
    return infos


def summarize(diagnostics: "Sequence[Diagnostic]") -> "Dict[str, int]":
    """Counts by severity (always includes all three keys)."""
    counts = {severity.value: 0 for severity in Severity}
    for diagnostic in diagnostics:
        counts[diagnostic.severity.value] += 1
    return counts


# ---------------------------------------------------------------------------
# Human.
# ---------------------------------------------------------------------------


def render_human(diagnostics: "Sequence[Diagnostic]") -> str:
    """One line per diagnostic plus a closing summary line."""
    lines = [diagnostic.render() for diagnostic in diagnostics]
    counts = summarize(diagnostics)
    total = len(diagnostics)
    if total == 0:
        lines.append("clean: no diagnostics")
    else:
        lines.append(
            f"{total} diagnostic(s): {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# JSON.
# ---------------------------------------------------------------------------


def render_json(diagnostics: "Sequence[Diagnostic]") -> str:
    """A JSON document: the diagnostics plus a severity summary."""
    worst = max_severity(diagnostics)
    document = {
        "tool": _TOOL_NAME,
        "diagnostics": [d.to_dict() for d in diagnostics],
        "summary": summarize(diagnostics),
        "max_severity": worst.value if worst is not None else None,
    }
    return json.dumps(document, indent=2, sort_keys=False)


def diagnostics_from_json(text: str) -> "List[Diagnostic]":
    """Reload diagnostics from :func:`render_json` output."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise LintError(f"not a JSON diagnostics document: {exc}") from None
    records = document.get("diagnostics") if isinstance(document, dict) else None
    if not isinstance(records, list):
        raise LintError("JSON document has no 'diagnostics' list")
    return [diagnostic_from_dict(record) for record in records]


# ---------------------------------------------------------------------------
# SARIF 2.1.0.
# ---------------------------------------------------------------------------


def _sarif_rule(info: RuleInfo) -> "Dict[str, Any]":
    return {
        "id": info.code,
        "shortDescription": {"text": info.summary or info.code},
        "defaultConfiguration": {"level": info.severity.sarif_level},
        "properties": {"category": info.category},
    }


def _sarif_result(diagnostic: Diagnostic) -> "Dict[str, Any]":
    result: "Dict[str, Any]" = {
        "ruleId": diagnostic.code,
        "level": diagnostic.severity.sarif_level,
        "message": {"text": diagnostic.message},
        "properties": {"source": diagnostic.source},
    }
    if diagnostic.hint:
        result["properties"]["hint"] = diagnostic.hint
    if diagnostic.category:
        result["properties"]["category"] = diagnostic.category
    if diagnostic.pointer:
        result["properties"]["pointer"] = diagnostic.pointer
    if diagnostic.file is not None:
        physical: "Dict[str, Any]" = {
            "artifactLocation": {"uri": diagnostic.file}
        }
        region: "Dict[str, Any]" = {}
        if diagnostic.line is not None:
            region["startLine"] = diagnostic.line
        if diagnostic.column is not None:
            region["startColumn"] = diagnostic.column
        if region:
            physical["region"] = region
        result["locations"] = [{"physicalLocation": physical}]
    return result


def render_sarif(diagnostics: "Sequence[Diagnostic]") -> str:
    """A SARIF 2.1.0 log with the full rule table as tool metadata."""
    used = {d.code for d in diagnostics}
    rules = [
        _sarif_rule(info)
        for info in all_rule_infos()
        if info.code in used or not diagnostics
    ]
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {"driver": {"name": _TOOL_NAME, "rules": rules}},
                "results": [_sarif_result(d) for d in diagnostics],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=False)


def diagnostics_from_sarif(text: str) -> "List[Diagnostic]":
    """Reload diagnostics from :func:`render_sarif` output."""
    try:
        log = json.loads(text)
    except json.JSONDecodeError as exc:
        raise LintError(f"not a SARIF document: {exc}") from None
    try:
        runs = log["runs"]
    except (TypeError, KeyError):
        raise LintError("SARIF document has no 'runs'") from None
    categories = {info.code: info.category for info in all_rule_infos()}
    diagnostics: "List[Diagnostic]" = []
    for run in runs:
        for result in run.get("results", ()):
            properties = result.get("properties", {})
            file = line = column = None
            for location in result.get("locations", ()):
                physical = location.get("physicalLocation", {})
                file = physical.get("artifactLocation", {}).get("uri")
                region = physical.get("region", {})
                line = region.get("startLine")
                column = region.get("startColumn")
                break
            code = str(result.get("ruleId", ""))
            diagnostics.append(
                Diagnostic(
                    code=code,
                    severity=Severity.from_sarif_level(
                        result.get("level", "warning")
                    ),
                    message=result.get("message", {}).get("text", ""),
                    hint=properties.get("hint", ""),
                    category=properties.get(
                        "category", categories.get(code, "")
                    ),
                    source=properties.get("source", "design"),
                    pointer=properties.get("pointer", ""),
                    file=file,
                    line=line,
                    column=column,
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# Dispatch.
# ---------------------------------------------------------------------------


def render(diagnostics: "Sequence[Diagnostic]", format: str = "human") -> str:
    """Render in the named format (one of :data:`FORMATS`)."""
    if format == "human":
        return render_human(diagnostics)
    if format == "json":
        return render_json(diagnostics)
    if format == "sarif":
        return render_sarif(diagnostics)
    raise LintError(
        f"unknown format {format!r}; expected one of {', '.join(FORMATS)}"
    )


def rule_table() -> "List[Dict[str, str]]":
    """The rule table (code, severity, category, summary) for docs/CLI."""
    return [
        {
            "code": info.code,
            "severity": info.severity.value,
            "category": info.category,
            "summary": info.summary,
        }
        for info in sorted(all_rule_infos(), key=lambda info: info.code)
    ]
