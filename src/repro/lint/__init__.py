"""Static analysis for designs and code (no evaluation involved).

Five analyzers share one :class:`~repro.lint.diagnostics.Diagnostic`
model:

* **Design lint** — ``DEP###`` rules over a
  :class:`~repro.core.hierarchy.StorageDesign` + workload + scenarios +
  requirements (and the raw spec dictionary, for structure rules).  Run
  them with :func:`~repro.lint.engine.lint_design` /
  ``lint_spec`` / ``lint_file`` from :mod:`repro.lint.engine`, or via
  the ``repro lint`` CLI subcommand.
* **Code lint** — ``UNI###``/``EXC###`` AST rules over Python source
  (:mod:`repro.lint.codelint`, ``python -m repro.lint.codelint``).
* **Dimension check** — ``DIM###`` dimensional dataflow analysis over
  Python source (:mod:`repro.lint.dimcheck`, ``repro lint dim``): a
  flow-sensitive abstract interpreter inferring bytes/seconds/$ for
  every expression and flagging mismatched arithmetic, arguments and
  returns.
* **Parallel-safety check** — ``PAR###`` interprocedural effect
  inference over Python source (:mod:`repro.lint.parcheck`,
  ``repro lint par``): a project-wide call graph anchored at
  pool-submission worker boundaries and lock-disciplined shared state,
  flagging nondeterminism, global mutation/I-O, order-dependent set
  iteration, lock-discipline violations and pickle-hostile payloads.
* **Exception-flow check** — ``EXN###`` interprocedural escape-set
  analysis over Python source (:mod:`repro.lint.exncheck`,
  ``repro lint exn``): a fixpoint over the same call graph computing
  which exception types can escape each function, flagging
  unpicklable worker-reachable errors, broad handlers that absorb
  :class:`~repro.exceptions.ReproError`, non-framework leaks from the
  public API, provably dead handlers and chain-dropping re-raises.

``repro lint all`` (:mod:`repro.lint.allcheck`) runs every analyzer —
design rules over ``.json`` specs, the four code analyzers over
Python paths — in one pass with a single merged report and exit code.

This package root intentionally imports only the registry, the rules
and the renderers — never :mod:`repro.lint.engine` — so that
``core.validate`` can adapt over the DEP rules without dragging in
serialization or the case-study catalog (and without import cycles).
"""

from . import rules  # noqa: F401  (registers the DEP rule table)
from .diagnostics import (
    Diagnostic,
    LintError,
    Severity,
    diagnostic_from_dict,
    exit_code,
    max_severity,
)
from .output import (
    FORMATS,
    diagnostics_from_json,
    diagnostics_from_sarif,
    render,
    render_human,
    render_json,
    render_sarif,
    rule_table,
)
from .registry import RULES, RuleContext, RuleInfo, make, rule, run_rules

__all__ = [
    "Diagnostic",
    "LintError",
    "Severity",
    "diagnostic_from_dict",
    "exit_code",
    "max_severity",
    "FORMATS",
    "diagnostics_from_json",
    "diagnostics_from_sarif",
    "render",
    "render_human",
    "render_json",
    "render_sarif",
    "rule_table",
    "RULES",
    "RuleContext",
    "RuleInfo",
    "make",
    "rule",
    "run_rules",
]
