"""``python -m repro.lint SPEC...`` — shorthand for ``repro lint``."""

from __future__ import annotations

import sys

from ..cli import main

if __name__ == "__main__":
    sys.exit(main(["lint", *sys.argv[1:]]))
