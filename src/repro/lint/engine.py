"""The design-lint engine: lint built objects, spec dicts, or spec files.

Three entry points, from lowest to highest level:

* :func:`lint_design` — run the design rules over already-built
  framework objects (what the optimizer uses to prune candidates).
* :func:`lint_spec` — build the objects from a spec dictionary (the
  same shape ``repro evaluate`` accepts) and lint them; a spec that
  does not build yields a ``DEP000`` error instead of an exception,
  and the raw dictionary is handed to the spec-structure rules either
  way.
* :func:`lint_file` / :func:`lint_files` — load JSON spec files and
  attribute every diagnostic to its file.

This module deliberately sits *above* the rule registry: importing
:mod:`repro.lint` (which ``core.validate`` does for its adapter) never
pulls in serialization or the case-study catalog — only the CLI and
engine users pay for those imports.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, List, Mapping, Optional, Sequence

from ..obs import get_metrics, get_tracer
from . import rules as _rules  # noqa: F401  (registers the DEP rules)
from .diagnostics import Diagnostic
from .registry import RuleContext, make, run_rules


def _record_reported(diagnostics: "Iterable[Diagnostic]") -> None:
    """Count the diagnostics actually reported, per severity.

    Emitted here — after ``lint.expect`` suppression, including the
    engine-made DEP000/DEP099 findings — so ``lint.diagnostics.<sev>``
    always agrees with what the user sees, the way ``evaluate``'s
    metrics reflect its outputs.
    """
    metrics = get_metrics()
    for diagnostic in diagnostics:
        metrics.inc(f"lint.diagnostics.{diagnostic.severity.value}")


def lint_design(
    design: Any,
    workload: Any = None,
    scenarios: "Iterable[Any]" = (),
    requirements: Any = None,
    spec: "Optional[Mapping[str, Any]]" = None,
    codes: "Optional[Sequence[str]]" = None,
) -> "List[Diagnostic]":
    """Run the design rules over built framework objects."""
    context = RuleContext(
        design=design,
        workload=workload,
        scenarios=tuple(scenarios),
        requirements=requirements,
        spec=spec,
    )
    return run_rules(context, codes)


def lint_spec(spec: "Mapping[str, Any]") -> "List[Diagnostic]":
    """Build a spec dictionary's objects and lint the result.

    Each part of the spec (workload, design, scenarios, requirements)
    is built independently, so a broken design still lets the scenario
    rules run; every part that fails to build becomes a ``DEP000``
    error carrying the builder's message.  The raw dictionary is passed
    through to the spec-structure rules (DEP008/DEP009) regardless.
    """
    from ..casestudy import case_study_requirements
    from ..exceptions import ReproError
    from ..serialization import (
        design_from_spec,
        requirements_from_spec,
        scenario_from_spec,
        workload_from_spec,
    )

    build_failures: "List[Diagnostic]" = []

    def build(pointer: str, builder: Any) -> Any:
        try:
            return builder()
        except ReproError as exc:
            build_failures.append(
                make(
                    "DEP000",
                    f"spec does not build: {exc}",
                    hint="fix the spec before linting deeper properties",
                    pointer=pointer,
                )
            )
            return None

    workload = build(
        "/workload", lambda: workload_from_spec(spec.get("workload", "cello"))
    )
    design = build(
        "/design", lambda: design_from_spec(spec.get("design", "baseline"))
    )
    scenario_specs = spec.get("scenarios", [])
    scenarios = []
    for index, scenario_spec in enumerate(scenario_specs):
        scenario = build(
            f"/scenarios/{index}", lambda s=scenario_spec: scenario_from_spec(s)
        )
        if scenario is not None:
            scenarios.append(scenario)
    if "requirements" in spec:
        requirements = build(
            "/requirements",
            lambda: requirements_from_spec(spec["requirements"]),
        )
    else:
        requirements = case_study_requirements()

    diagnostics = build_failures + lint_design(
        design,
        workload=workload,
        scenarios=scenarios,
        requirements=requirements,
        spec=spec,
    )
    return _apply_expectations(spec, diagnostics)


def _apply_expectations(
    spec: "Mapping[str, Any]", diagnostics: "List[Diagnostic]"
) -> "List[Diagnostic]":
    """Suppress the spec's documented expected diagnostics.

    A spec may declare ``"lint": {"expect": ["DEP003"]}`` for known,
    deliberate findings (e.g. the paper's own baseline carries the
    DEP003 vault-hold warning by design).  Expected codes are dropped
    from the report; an expected code that no longer fires is itself
    reported (``DEP099``) so stale suppressions cannot linger.
    """
    section = spec.get("lint")
    if not isinstance(section, Mapping):
        return diagnostics
    raw = section.get("expect", [])
    if isinstance(raw, (str, bytes)) or not isinstance(raw, Sequence):
        return diagnostics
    expected = [str(code) for code in raw]
    if not expected:
        return diagnostics
    fired = {d.code for d in diagnostics}
    kept = [d for d in diagnostics if d.code not in expected]
    for code in expected:
        if code not in fired:
            kept.append(
                make(
                    "DEP099",
                    f"expected diagnostic {code} did not fire: remove it "
                    "from lint.expect",
                    hint="delete the stale entry",
                    pointer="/lint/expect",
                )
            )
    return kept


def lint_file(path: str) -> "List[Diagnostic]":
    """Lint one JSON spec file; diagnostics carry the file path.

    The ``lint.files`` counter and per-severity
    ``lint.diagnostics.<severity>`` counters cover the file's final
    reported diagnostics (JSON failures included).
    """
    tracer = get_tracer()
    with tracer.span("lint.file", path=path):
        get_metrics().inc("lint.files")
        try:
            with open(path) as handle:
                spec = json.load(handle)
        except OSError as exc:
            diagnostics = [
                make(
                    "DEP000",
                    f"spec file is unreadable: {exc}",
                    hint="check the path and permissions",
                ).with_file(path)
            ]
        except json.JSONDecodeError as exc:
            diagnostics = [
                make(
                    "DEP000",
                    f"spec is not valid JSON: {exc}",
                    hint="fix the JSON syntax",
                ).with_file(path)
            ]
        else:
            if not isinstance(spec, Mapping):
                diagnostics = [
                    make(
                        "DEP000",
                        "spec must be a JSON object with workload/design/"
                        "scenarios/requirements keys",
                    ).with_file(path)
                ]
            else:
                diagnostics = [d.with_file(path) for d in lint_spec(spec)]
        _record_reported(diagnostics)
        return diagnostics


def lint_files(paths: "Sequence[str]") -> "List[Diagnostic]":
    """Lint several spec files, concatenating their diagnostics."""
    diagnostics: "List[Diagnostic]" = []
    for path in paths:
        diagnostics.extend(lint_file(path))
    return diagnostics
