"""The dependability anti-pattern rules (``DEP###``).

Static checks over a :class:`~repro.core.hierarchy.StorageDesign`, its
workload, the declared failure scenarios and business requirements —
*without evaluating*.  Each rule catches a design that would either
fail evaluation later (capacity overcommit, unknown devices) or, worse,
evaluate "successfully" while being structurally hopeless (every copy
in one building still produces a Table 6 row — it just loses everything
under a site failure).

The rule table:

========  ========  ===========  ================================================
code      severity  category     what it catches
========  ========  ===========  ================================================
DEP000    error     spec         spec file does not parse or build
DEP001    error     retention    retention-count inversion (retCnt_i+1 < retCnt_i)
DEP002    error     retention    accumulation window shorter than feeder's cycle
DEP003    warning   retention    hold window exceeds the feeder's retention
DEP004    error     placement    all RP copies lost under one declared scope
DEP005    error     objectives   declared RPO statically unreachable
DEP006    error     objectives   declared RTO below the bandwidth lower bound
DEP007    error     capacity     capacity overcommit on a bound device
DEP008    error     spec         dangling device ``ref`` in a serialized spec
DEP009    warning   spec         duplicate device id / ambiguous device name
DEP010    warning   sparing      no spare pool for hardware-replacement scenarios
DEP011    warning   units        penalty rate off by >= 10^3 (per-hour as per-s)
DEP012    error     scenario     scenario names a device the design lacks
DEP013    error     structure    empty design / level 0 is not a primary copy
DEP014    warning   structure    no secondary levels: any hardware loss is total
DEP015    error     spec         inconsistent risk ensemble (rates, ids, refs)
========  ========  ===========  ================================================

DEP001–DEP003 are the paper's section 3.2.1 inter-level conventions,
previously hard-coded in :mod:`repro.core.validate`; ``validate_design``
is now a thin string adapter over them (plus DEP013).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..scenarios.failures import FailureScenario, FailureScope
from ..units import (
    HOUR,
    UnitError,
    format_duration,
    format_money,
    format_size,
    parse_event_rate,
)
from .diagnostics import Diagnostic, Severity
from .registry import RuleContext, make, register_code, rule

register_code(
    "DEP000", Severity.ERROR, "spec", "Spec file does not parse or build."
)
register_code(
    "DEP099",
    Severity.WARNING,
    "spec",
    "An expected diagnostic (lint.expect) did not fire: stale suppression.",
)

# ---------------------------------------------------------------------------
# Cycle helpers.
#
# Continuous techniques (primary copy, sync/async mirrors) signal "no RP
# cycle" by raising NoCycleError, which is a NotImplementedError; any
# *other* exception out of cycle() is a bug in the technique and must
# surface instead of silently skipping the check.
# ---------------------------------------------------------------------------


def cycle_period_of(level: Any) -> Optional[float]:
    """A level's cycle period, or None for continuous techniques."""
    try:
        return float(level.technique.cycle().period)
    except (AttributeError, NotImplementedError):
        return None


def retention_count_of(level: Any) -> Optional[int]:
    """A level's retention count, or None for continuous techniques."""
    try:
        return int(level.technique.cycle().retention_count)
    except (AttributeError, NotImplementedError):
        return None


def _secondary_pairs(design: Any) -> "Iterator[Tuple[Any, Any]]":
    """(feeder, level) pairs the 3.2.1 conventions compare.

    Levels fed directly by the primary copy are skipped: the conventions
    compare secondary levels to their *secondary* feeders.
    """
    for current in design.levels[1:]:
        previous = design.parent_of(current)
        if previous.index == 0:
            continue
        yield previous, current


def _hardware_scopes(
    ctx: RuleContext,
) -> "List[Tuple[FailureScenario, bool]]":
    """The hardware failure scenarios to check placement against.

    Declared scenarios are used as-is; with none declared, the linter
    hypothesizes building and site disasters at the primary location
    (the motivating anti-pattern: a hierarchy whose every copy sits in
    one building).  The bool marks whether the scenario was declared.
    """
    declared = [s for s in ctx.scenarios if s.scope.is_hardware]
    if declared:
        return [(scenario, True) for scenario in declared]
    return [
        (FailureScenario.building_disaster(), False),
        (FailureScenario.site_disaster(), False),
    ]


# ---------------------------------------------------------------------------
# Section 3.2.1 conventions (DEP001-DEP003).
# ---------------------------------------------------------------------------


@rule("DEP001", Severity.ERROR, "retention")
def retention_count_inversion(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """A slower level retains fewer cycles than the level feeding it."""
    if ctx.design is None:
        return
    for previous, current in _secondary_pairs(ctx.design):
        prev_ret = retention_count_of(previous)
        curr_ret = retention_count_of(current)
        if prev_ret is None or curr_ret is None or curr_ret >= prev_ret:
            continue
        yield make(
            "DEP001",
            f"level {current.index} ({current.technique.name}) retains "
            f"fewer cycles ({curr_ret}) than level {previous.index} "
            f"({previous.technique.name}, {prev_ret}): slower levels must "
            "retain at least as much (paper section 3.2.1)",
            hint=(
                f"raise level {current.index}'s retention_count to at "
                f"least {prev_ret}"
            ),
            pointer=f"/levels/{current.index}/technique/retention_count",
        )


@rule("DEP002", Severity.ERROR, "retention")
def accumulation_window_inversion(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """A level accumulates over less than its feeder's full cycle."""
    if ctx.design is None:
        return
    for previous, current in _secondary_pairs(ctx.design):
        prev_period = cycle_period_of(previous)
        curr_period = cycle_period_of(current)
        if prev_period is None or curr_period is None:
            continue
        if curr_period >= prev_period:
            continue
        yield make(
            "DEP002",
            f"level {current.index} ({current.technique.name}) "
            f"accumulates over {format_duration(curr_period)}, shorter "
            f"than level {previous.index}'s cycle period "
            f"({format_duration(prev_period)}): accW_i+1 >= cyclePer_i "
            "(paper section 3.2.1)",
            hint=(
                f"stretch level {current.index}'s accumulation window to "
                f"at least {format_duration(prev_period)}"
            ),
            pointer=f"/levels/{current.index}/technique/accumulation_window",
        )


@rule("DEP003", Severity.WARNING, "retention")
def hold_window_exceeds_retention(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """A level holds RPs longer than its feeder retains them."""
    if ctx.design is None:
        return
    for previous, current in _secondary_pairs(ctx.design):
        hold = getattr(current.technique, "hold_window", None)
        prev_ret = retention_count_of(previous)
        prev_period = cycle_period_of(previous)
        if hold is None or prev_ret is None or prev_period is None:
            continue
        source_retention = prev_ret * prev_period
        if hold <= source_retention:
            continue
        yield make(
            "DEP003",
            f"level {current.index} ({current.technique.name}) holds "
            f"RPs {format_duration(hold)} before shipping, longer than "
            f"level {previous.index}'s retention "
            f"({format_duration(source_retention)}): extra retention "
            "capacity is demanded from the source device",
            hint=(
                f"cut the hold window to {format_duration(source_retention)} "
                f"or raise level {previous.index}'s retention"
            ),
            pointer=f"/levels/{current.index}/technique/hold_window",
        )


# ---------------------------------------------------------------------------
# Placement and sparing (DEP004, DEP010).
# ---------------------------------------------------------------------------


def _failed_stores(design: Any, scenario: FailureScenario) -> "List[Any]":
    """The level stores a scenario destroys (static location/name match)."""
    stores = [level.store for level in design.levels]
    unique: "List[Any]" = []
    for store in stores:
        if not any(existing is store for existing in unique):
            unique.append(store)
    if scenario.scope is FailureScope.DISK_ARRAY:
        return [s for s in unique if s.name == scenario.failed_device]
    failed_at = scenario.failed_location or design.primary_level.store.location
    return [
        s
        for s in unique
        if scenario.scope.fails_location(failed_at, s.location)
    ]


@rule("DEP004", Severity.ERROR, "placement")
def single_point_of_failure_scope(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """Every RP copy is contained in one declared failure scope."""
    design = ctx.design
    if design is None or not design.levels:
        return
    stores = [level.store for level in design.levels]
    unique: "List[Any]" = []
    for store in stores:
        if not any(existing is store for existing in unique):
            unique.append(store)
    for scenario, declared in _hardware_scopes(ctx):
        failed = _failed_stores(design, scenario)
        if len(failed) < len(unique) or not failed:
            continue
        scope = scenario.scope.value
        origin = (
            "the declared" if declared else "a hypothesized"
        )
        if scenario.scope is FailureScope.DISK_ARRAY:
            where = scenario.failed_device
        else:
            failed_at = (
                scenario.failed_location
                or design.primary_level.store.location
            )
            where = failed_at.label()
        yield make(
            "DEP004",
            f"single point of failure: all {len(unique)} device(s) holding "
            f"RP copies are lost under {origin} {scope} failure at "
            f"{where} — the design loses every copy",
            hint=(
                "place at least one retention level (remote mirror, "
                f"vault) outside the {scope} scope"
            ),
            pointer="/levels",
        )


@rule("DEP010", Severity.WARNING, "sparing")
def spare_pool_absent(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """Hardware-replacement scenarios with no spare and no facility."""
    design = ctx.design
    if design is None or not design.levels:
        return
    if ctx.scenarios and not any(s.scope.is_hardware for s in ctx.scenarios):
        return  # only object-scope scenarios declared: nothing to replace
    if design.recovery_facility is not None:
        return
    if any(device.spare.exists for device in design.storage_devices()):
        return
    yield make(
        "DEP010",
        "no device has a spare and the design has no shared recovery "
        "facility: scenarios that destroy hardware leave nowhere to "
        "rebuild (site-scale failures of unspared devices are "
        "unrecoverable)",
        hint=(
            "add a SpareConfig to the critical devices or set "
            "recovery_facility on the design (the case study uses a "
            "shared facility: 9 h provisioning at 0.2x cost)"
        ),
        pointer="/recovery_facility",
    )


# ---------------------------------------------------------------------------
# Objective feasibility (DEP005, DEP006).
# ---------------------------------------------------------------------------


@rule("DEP005", Severity.ERROR, "objectives")
def rpo_statically_unreachable(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """No level can ever be fresh enough to meet the declared RPO."""
    design = ctx.design
    requirements = ctx.requirements
    if design is None or requirements is None or requirements.rpo is None:
        return
    secondaries = design.secondary_levels()
    if not secondaries:
        return
    best_lag = None
    best_level = None
    for level in secondaries:
        lag = design.upstream_delay(level.index) + level.technique.worst_lag()
        if best_lag is None or lag < best_lag:
            best_lag, best_level = lag, level
    if best_lag is None or best_lag <= requirements.rpo:
        return
    assert best_level is not None
    yield make(
        "DEP005",
        f"declared RPO {format_duration(requirements.rpo)} is statically "
        f"unreachable: the freshest level "
        f"({best_level.technique.name}, level {best_level.index}) already "
        f"lags up to {format_duration(best_lag)} (accW + holdW + propW "
        "along its ancestor chain)",
        hint=(
            "shorten the accumulation/hold windows of the freshest "
            "level (or add a mirror) — or relax the RPO to at least "
            f"{format_duration(best_lag)}"
        ),
        pointer="/requirements/rpo",
    )


@rule("DEP006", Severity.ERROR, "objectives")
def rto_below_bandwidth_bound(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """The declared RTO is below the restore-bandwidth lower bound."""
    design = ctx.design
    workload = ctx.workload
    requirements = ctx.requirements
    if (
        design is None
        or workload is None
        or requirements is None
        or requirements.rto is None
    ):
        return
    if ctx.scenarios and not any(s.scope.is_hardware for s in ctx.scenarios):
        return  # only object restores requested: the bound is the object
    best_time = None
    best_level = None
    for level in design.secondary_levels():
        store = level.store
        bandwidth = store.max_bandwidth * store.recovery_read_efficiency
        if bandwidth == float("inf"):
            transfer = 0.0
        elif bandwidth <= 0:
            continue
        else:
            transfer = workload.data_capacity / bandwidth
        if best_time is None or transfer < best_time:
            best_time, best_level = transfer, level
    if best_time is None or best_time <= requirements.rto:
        return
    assert best_level is not None
    yield make(
        "DEP006",
        f"declared RTO {format_duration(requirements.rto)} is infeasible: "
        f"restoring {format_size(workload.data_capacity)} from the "
        f"fastest level store ({best_level.store.name}) takes at least "
        f"{format_duration(best_time)} at its full device bandwidth, "
        "before any provisioning or reconfiguration",
        hint=(
            "add restore bandwidth (more drives/links or a disk-resident "
            "copy) or relax the RTO to at least "
            f"{format_duration(best_time)}"
        ),
        pointer="/requirements/rto",
    )


# ---------------------------------------------------------------------------
# Capacity (DEP007).
# ---------------------------------------------------------------------------


@rule("DEP007", Severity.ERROR, "capacity")
def capacity_overcommit(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """A device's static capacity demands exceed its envelope."""
    design = ctx.design
    workload = ctx.workload
    if design is None or workload is None or not design.levels:
        return
    # Registering demands is the paper's own static sizing arithmetic
    # (section 3.2.3) — no evaluation involved — but it mutates the
    # device ledgers, so snapshot and restore them around the check.
    from ..core.demands import register_design_demands

    devices = design.devices()
    saved = [(device, device.demands) for device in devices]
    findings: "List[Diagnostic]" = []
    try:
        register_design_demands(design, workload)
        for device in devices:
            if device.is_interconnect or device.max_capacity == float("inf"):
                continue
            demand = device.capacity_demand_raw()
            if demand <= device.max_capacity:
                continue
            findings.append(
                make(
                    "DEP007",
                    f"device {device.name!r} is overcommitted: the design "
                    f"demands {format_size(demand)} raw capacity against "
                    f"a {format_size(device.max_capacity)} envelope "
                    f"({demand / device.max_capacity:.0%})",
                    hint=(
                        "retain fewer RPs on this device, shrink the "
                        "dataset, or bind the level to a larger device"
                    ),
                    pointer="/levels",
                )
            )
    finally:
        for device, demands in saved:
            device.clear_demands()
            for demand in demands:
                device.register_demand(
                    demand.technique,
                    bandwidth=demand.bandwidth,
                    capacity=demand.capacity,
                    shipments_per_year=demand.shipments_per_year,
                    note=demand.note,
                )
    for finding in findings:
        yield finding


# ---------------------------------------------------------------------------
# Serialized-spec structure (DEP008, DEP009).
# ---------------------------------------------------------------------------


def _spec_levels(spec: "Optional[Mapping[str, Any]]") -> "List[Mapping[str, Any]]":
    """The level dictionaries of a spec's inline design ([] otherwise)."""
    if not isinstance(spec, Mapping):
        return []
    design = spec.get("design")
    if not isinstance(design, Mapping):
        return []
    levels = design.get("levels")
    if not isinstance(levels, Sequence) or isinstance(levels, (str, bytes)):
        return []
    return [level for level in levels if isinstance(level, Mapping)]


@rule("DEP008", Severity.ERROR, "spec")
def dangling_device_ref(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """A level references a device id the spec never (yet) defines."""
    levels = _spec_levels(ctx.spec)
    defined_anywhere = set()
    for level in levels:
        for key in ("store", "transport"):
            device = level.get(key)
            if isinstance(device, Mapping) and "id" in device:
                defined_anywhere.add(device["id"])
    defined_so_far: set = set()
    for index, level in enumerate(levels):
        for key in ("store", "transport"):
            device = level.get(key)
            if not isinstance(device, Mapping):
                continue
            if "ref" in device:
                ref = device["ref"]
                pointer = f"/design/levels/{index}/{key}/ref"
                if ref not in defined_anywhere:
                    yield make(
                        "DEP008",
                        f"level {index} {key} references device id {ref!r}, "
                        "which no level defines",
                        hint=(
                            'give some earlier device an "id": '
                            f'"{ref}", or fix the ref'
                        ),
                        pointer=pointer,
                    )
                elif ref not in defined_so_far:
                    yield make(
                        "DEP008",
                        f"level {index} {key} references device id {ref!r} "
                        "before its definition (ids resolve in level "
                        "order)",
                        hint="move the defining level earlier, or swap "
                        "the definition and the ref",
                        pointer=pointer,
                    )
            elif "id" in device:
                defined_so_far.add(device["id"])


@rule("DEP009", Severity.WARNING, "spec")
def duplicate_device_binding(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """Duplicate device ids or ambiguous device names."""
    levels = _spec_levels(ctx.spec)
    seen_ids: "dict" = {}
    seen_names: "dict" = {}
    for index, level in enumerate(levels):
        for key in ("store", "transport"):
            device = level.get(key)
            if not isinstance(device, Mapping) or "ref" in device:
                continue
            pointer = f"/design/levels/{index}/{key}"
            device_id = device.get("id")
            if device_id is not None:
                if device_id in seen_ids:
                    yield make(
                        "DEP009",
                        f"device id {device_id!r} is defined twice (levels "
                        f"{seen_ids[device_id]} and {index}): the later "
                        "definition silently shadows the earlier one",
                        hint="rename one id, or replace the second "
                        'definition with {"ref": ...}',
                        pointer=pointer + "/id",
                    )
                else:
                    seen_ids[device_id] = index
            name = device.get("name")
            if name is not None:
                if name in seen_names:
                    yield make(
                        "DEP009",
                        f"two distinct devices are named {name!r} (levels "
                        f"{seen_names[name]} and {index}): failure "
                        "scenarios match devices by name and will fail "
                        "both",
                        hint="give each physical device a unique name "
                        '(or share one device via {"ref": ...})',
                        pointer=pointer + "/name",
                    )
                else:
                    seen_names[name] = index
    # The built-design variant of the same mistake: two distinct device
    # objects carrying one name (programmatic designs have no spec).
    design = ctx.design
    if design is not None:
        by_name: "dict" = {}
        for device in design.devices():
            by_name.setdefault(device.name, []).append(device)
        for name, devices in by_name.items():
            if len(devices) > 1:
                yield make(
                    "DEP009",
                    f"{len(devices)} distinct devices share the name "
                    f"{name!r}: failure scenarios match devices by name "
                    "and will fail all of them",
                    hint="give each physical device a unique name",
                    pointer="/levels",
                )


# ---------------------------------------------------------------------------
# Requirements units (DEP011).
# ---------------------------------------------------------------------------

#: Above this per-second penalty rate (>= $3.6M per hour) the rate was
#: almost certainly quoted per hour and passed to the per-second
#: constructor — a 3600x (~10^3.5) cost-model error.
_PENALTY_RATE_SUSPECT = 1_000.0


@rule("DEP011", Severity.WARNING, "units")
def penalty_rate_units_suspect(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """A penalty rate is ~10^3 over plausible: per-hour passed as per-second."""
    requirements = ctx.requirements
    if requirements is None:
        return
    for label, pointer, value in (
        (
            "unavailability",
            "/requirements/unavailability_per_hour",
            requirements.unavailability_penalty_rate,
        ),
        ("loss", "/requirements/loss_per_hour", requirements.loss_penalty_rate),
    ):
        if value < _PENALTY_RATE_SUSPECT:
            continue
        yield make(
            "DEP011",
            f"{label} penalty rate is {value:,.0f} $/s, i.e. "
            f"{format_money(value * HOUR)} per hour of impact — at least "
            "10^3 over plausible rates; a $/hour figure was likely "
            "passed to the per-second constructor",
            hint=(
                "use BusinessRequirements.per_hour(...) (the paper's "
                "units) or divide the rate by HOUR"
            ),
            pointer=pointer,
        )


# ---------------------------------------------------------------------------
# Scenario/design consistency (DEP012) and structure (DEP013, DEP014).
# ---------------------------------------------------------------------------


@rule("DEP012", Severity.ERROR, "scenario")
def scenario_names_unknown_device(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """An array-failure scenario names a device the design lacks."""
    design = ctx.design
    if design is None or not design.levels:
        return
    names = sorted({device.name for device in design.devices()})
    for index, scenario in enumerate(ctx.scenarios):
        if scenario.scope is not FailureScope.DISK_ARRAY:
            continue
        if scenario.failed_device in names:
            continue
        yield make(
            "DEP012",
            f"scenario {index} fails device "
            f"{scenario.failed_device!r}, which the design does not "
            "contain (evaluation would reject it)",
            hint=f"use one of the design's devices: {', '.join(names)}",
            pointer=f"/scenarios/{index}/failed_device",
        )


@rule("DEP013", Severity.ERROR, "structure")
def structural_integrity(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """The design is empty or does not start with a primary copy."""
    design = ctx.design
    if design is None:
        return
    if not design.levels:
        yield make(
            "DEP013",
            "design has no levels",
            hint="add a primary-copy level first",
            pointer="/levels",
        )
        return
    if not design.levels[0].technique.is_primary:
        yield make(
            "DEP013",
            "level 0 is not a primary copy",
            hint="make the first level a PrimaryCopy technique",
            pointer="/levels/0/technique",
        )


@rule("DEP014", Severity.WARNING, "structure")
def no_secondary_levels(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """A primary-only design: any hardware failure is a total loss."""
    design = ctx.design
    if design is None or not design.levels:
        return
    if design.secondary_levels():
        return
    yield make(
        "DEP014",
        "the design has no data protection levels: every hardware "
        "failure scenario is an unrecoverable total loss",
        hint="add at least one secondary level (snapshot, mirror, "
        "backup...)",
        pointer="/levels",
    )


# ---------------------------------------------------------------------------
# Risk ensembles (DEP015).
# ---------------------------------------------------------------------------


def _entries(section: "Mapping[str, Any]", group: str) -> "Iterator[Tuple[int, Mapping[str, Any]]]":
    """The well-formed dictionary entries of one ensemble group."""
    entries = section.get(group)
    if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
        return
    for index, entry in enumerate(entries):
        if isinstance(entry, Mapping):
            yield index, entry


def _rate_problem(value: Any) -> "Optional[str]":
    """Why a spec rate value is unusable (None if it is fine)."""
    if not isinstance(value, (str, int, float)) or isinstance(value, bool):
        return f"rate must be a number or a rate string, got {value!r}"
    try:
        rate = parse_event_rate(value)
    except UnitError as exc:
        return str(exc)
    if not rate > 0:
        return (
            f"rate {value!r} is not positive: an event that cannot occur "
            "contributes no risk — drop the member instead"
        )
    return None


def _scenario_device(scenario_spec: Any) -> "Optional[str]":
    """The device an array-failure scenario spec would fail, if any."""
    if isinstance(scenario_spec, str):
        scenario_spec = {"scope": scenario_spec}
    if not isinstance(scenario_spec, Mapping):
        return None
    if scenario_spec.get("scope") != FailureScope.DISK_ARRAY.value:
        return None
    device = scenario_spec.get("failed_device", "primary-array")
    return device if isinstance(device, str) else None


@rule("DEP015", Severity.ERROR, "spec")
def ensemble_inconsistency(ctx: RuleContext) -> "Iterator[Diagnostic]":
    """A risk ensemble spec that would not build or could not fire.

    Four inconsistencies: non-positive (or unparseable) occurrence
    rates, cascade probabilities / correlation fractions outside
    (0, 1], duplicate member ids, and a rate attached to an
    array-failure scenario naming a device the design never defines
    (the ensemble's analogue of DEP012).
    """
    spec = ctx.spec
    if not isinstance(spec, Mapping):
        return
    section = spec.get("ensemble")
    if not isinstance(section, Mapping):
        return

    device_names: "Optional[List[str]]" = None
    if ctx.design is not None and ctx.design.levels:
        device_names = sorted(
            {device.name for device in ctx.design.devices()}
        )

    def check_scenario(
        scenario_spec: Any, pointer: str
    ) -> "Iterator[Diagnostic]":
        failed = _scenario_device(scenario_spec)
        if failed is None or device_names is None or failed in device_names:
            return
        yield make(
            "DEP015",
            f"ensemble rates an array failure of device {failed!r}, "
            "which the design does not contain (evaluation would "
            "reject it)",
            hint="use one of the design's devices: "
            + ", ".join(device_names),
            pointer=pointer,
        )

    seen_ids: "dict" = {}
    rate_keys = {
        "members": ("rate",),
        "correlated": ("rate",),
        "cascades": ("rate", "secondary_rate"),
    }
    scenario_keys = {
        "members": ("scenario",),
        "correlated": ("base", "correlated"),
        "cascades": ("primary", "escalated"),
    }
    for group in ("members", "correlated", "cascades"):
        for index, entry in _entries(section, group):
            pointer = f"/ensemble/{group}/{index}"
            member_id = entry.get("id")
            if isinstance(member_id, str) and member_id:
                if member_id in seen_ids:
                    yield make(
                        "DEP015",
                        f"duplicate ensemble member id {member_id!r} "
                        f"(also declared at {seen_ids[member_id]})",
                        hint="ids must be unique across members, "
                        "correlated pairs and cascades",
                        pointer=f"{pointer}/id",
                    )
                else:
                    seen_ids[member_id] = pointer
            for key in rate_keys[group]:
                if key not in entry:
                    continue
                problem = _rate_problem(entry[key])
                if problem is not None:
                    yield make(
                        "DEP015",
                        f"ensemble {group} entry {index}: {problem}",
                        hint='rates are events per second; write '
                        '"0.5/yr" for the paper\'s per-year idiom',
                        pointer=f"{pointer}/{key}",
                    )
            kofn = entry.get("kofn")
            if isinstance(kofn, Mapping) and "unit_rate" in kofn:
                problem = _rate_problem(kofn["unit_rate"])
                if problem is not None:
                    yield make(
                        "DEP015",
                        f"ensemble member {index} kofn: {problem}",
                        hint="the unit failure rate must be a positive "
                        "event rate",
                        pointer=f"{pointer}/kofn/unit_rate",
                    )
            for key, label in (
                ("probability", "cascade probability"),
                ("fraction", "correlation fraction"),
            ):
                value = entry.get(key)
                if value is None or isinstance(value, bool):
                    continue
                if isinstance(value, (int, float)) and not 0 < value <= 1:
                    yield make(
                        "DEP015",
                        f"ensemble {group} entry {index}: {label} "
                        f"{value!r} is outside (0, 1]",
                        hint="0 means the split never happens (drop "
                        "it); above 1 is not a probability",
                        pointer=f"{pointer}/{key}",
                    )
            for key in scenario_keys[group]:
                if key in entry:
                    yield from check_scenario(
                        entry[key], f"{pointer}/{key}"
                    )

    generate = section.get("generate")
    if isinstance(generate, Mapping):
        grid = generate.get("object_grid")
        if isinstance(grid, Mapping) and "total_rate" in grid:
            problem = _rate_problem(grid["total_rate"])
            if problem is not None:
                yield make(
                    "DEP015",
                    f"ensemble object_grid: {problem}",
                    hint="the generated members share this total rate; "
                    "it must be positive",
                    pointer="/ensemble/generate/object_grid/total_rate",
                )
