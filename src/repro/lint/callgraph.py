"""Shared project model for the interprocedural code analyzers.

:mod:`repro.lint.parcheck` (parallel safety) and
:mod:`repro.lint.exncheck` (exception flow) both need the same
front half: parse every file of one invocation into a symbol table
(imports resolved across modules, classes with their methods and lock
attributes, nested functions), then resolve call edges — direct names,
``self.method()`` within the class, locally constructed receivers
(``x = Cls(); x.m()``), dotted cross-module calls, and a
class-hierarchy-analysis union of same-named methods as the fallback
(container-protocol names are excluded from the union so ``d.get(...)``
does not alias every ``get`` in the tree).

This module holds that front half once: the dataclasses
(:class:`ModuleInfo`, :class:`ClassInfo`, :class:`FunctionInfo`,
:class:`CallRef`, :class:`SubmitSite`), the :class:`ModuleCollector`
that builds one :class:`ModuleInfo` per file, and the :class:`Project`
base class with the resolution machinery and the worker-boundary root
discovery (pool-submission call sites plus ``# lint: worker-boundary``
markers).  Each analyzer subclasses :class:`Project`, sets its own
suppression ``pragma``, and layers its domain analysis — effect
propagation for parcheck, escape-set fixpoints for exncheck — on top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

#: Marks a function as a worker boundary even when no ``.submit`` call
#: site is visible to the analyzer (the engine marks ``_execute_chunk``).
WORKER_BOUNDARY_MARKER = "lint: worker-boundary"

#: Pool-submission method names whose first argument is the callable.
SUBMIT_METHODS = frozenset({"submit", "apply_async", "map"})

#: Container-protocol names excluded from the CHA union: binding
#: ``d.get(...)`` to every ``get`` method in the tree would wire the
#: whole project together through dict lookups.
COMMON_METHOD_NAMES = frozenset(
    {
        "get",
        "put",
        "set",
        "add",
        "pop",
        "update",
        "append",
        "extend",
        "insert",
        "remove",
        "discard",
        "clear",
        "keys",
        "values",
        "items",
        "copy",
        "sort",
        "reverse",
        "count",
        "index",
        "join",
        "split",
        "strip",
        "startswith",
        "endswith",
        "format",
        "encode",
        "decode",
        "read",
        "write",
        "close",
        "open",
        "exists",
        "mkdir",
        "touch",
        "setdefault",
        "group",
        "match",
        "search",
        "sub",
        "inc",
        "observe",
        "describe",
        "render",
    }
)

FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def module_name(filename: str) -> str:
    """The dotted module name a project file provides.

    ``src/repro/engine/executor.py`` → ``repro.engine.executor``; files
    outside a recognizable package root fall back to their stem.
    """
    normalized = filename.replace("\\", "/")
    if normalized.endswith(".py"):
        normalized = normalized[: -len(".py")]
    parts = [part for part in normalized.split("/") if part not in ("", ".")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("repro", "src"):
        if anchor in parts:
            index = parts.index(anchor)
            if anchor == "src":
                index += 1
            tail = parts[index:]
            if tail:
                return ".".join(tail)
    return parts[-1] if parts else "<module>"


def dotted_chain(node: ast.expr) -> "Optional[List[str]]":
    """``a.b.c`` as ``["a", "b", "c"]``, or None for non-name chains."""
    parts: "List[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def is_lock_value(node: ast.expr) -> bool:
    """Is ``node`` a ``threading.Lock()`` / ``RLock()`` construction?"""
    if not isinstance(node, ast.Call):
        return False
    chain = dotted_chain(node.func)
    if chain and chain[-1] in ("Lock", "RLock"):
        return True
    # dataclasses.field(default_factory=threading.Lock)
    if chain and chain[-1] == "field":
        for keyword in node.keywords:
            if keyword.arg == "default_factory":
                inner = dotted_chain(keyword.value)
                if inner and inner[-1] in ("Lock", "RLock"):
                    return True
    return False


def is_lock_annotation(node: "Optional[ast.expr]") -> bool:
    if node is None:
        return False
    chain = dotted_chain(node)
    if chain and chain[-1] in ("Lock", "RLock"):
        return True
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.endswith(("Lock", "RLock"))
    return False


# ---------------------------------------------------------------------------
# Project model.
# ---------------------------------------------------------------------------


@dataclass
class Effect:
    """One direct effect observed in a function body (analyzer-owned:
    parcheck records nondet/global/io effects, exncheck ignores it)."""

    kind: str  # "nondet" | "global" | "io"
    detail: str
    line: int
    column: int
    node: ast.AST


@dataclass
class CallRef:
    """One unresolved outgoing call edge."""

    kind: str  # "name" | "attr"
    name: str
    dotted: Optional[str] = None
    recv_class: Optional[str] = None


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    name: str
    module: "ModuleInfo"
    node: FuncNode
    cls: Optional[str] = None
    parent: "Optional[FunctionInfo]" = None
    is_boundary: bool = False
    effects: "List[Effect]" = field(default_factory=list)
    calls: "List[CallRef]" = field(default_factory=list)
    children: "Dict[str, FunctionInfo]" = field(default_factory=dict)
    resolved: "List[FunctionInfo]" = field(default_factory=list)


@dataclass
class AttrAccess:
    """One ``self.X`` (or module-global) access for lock analysis."""

    name: str
    write: bool
    locked: bool
    node: ast.AST
    where: str  # the method/function the access sits in


@dataclass
class ClassInfo:
    """One class: its methods, bases and lock attributes."""

    name: str
    module: "ModuleInfo"
    node: "Optional[ast.ClassDef]" = None
    methods: "Dict[str, FunctionInfo]" = field(default_factory=dict)
    bases: "List[str]" = field(default_factory=list)
    lock_attrs: "Set[str]" = field(default_factory=set)
    accesses: "List[AttrAccess]" = field(default_factory=list)


@dataclass
class SubmitSite:
    """One pool-submission call site."""

    call: ast.Call
    func: "Optional[FunctionInfo]"  # the enclosing function
    module: "ModuleInfo"


@dataclass
class ModuleInfo:
    """One parsed file of the project."""

    filename: str
    modname: str
    tree: ast.Module
    lines: "Sequence[str]"
    sanctioned: bool
    imports: "Dict[str, str]" = field(default_factory=dict)
    global_names: "Set[str]" = field(default_factory=set)
    module_locks: "Set[str]" = field(default_factory=set)
    functions: "Dict[str, FunctionInfo]" = field(default_factory=dict)
    classes: "Dict[str, ClassInfo]" = field(default_factory=dict)
    global_accesses: "List[AttrAccess]" = field(default_factory=list)
    pragma_lines: "Set[int]" = field(default_factory=set)
    used_pragma_lines: "Set[int]" = field(default_factory=set)

    @property
    def is_package_init(self) -> bool:
        """Is this file a package ``__init__.py`` (a public surface)?"""
        return self.filename.replace("\\", "/").endswith("__init__.py")


def local_names(node: FuncNode) -> "Set[str]":
    """Names bound inside a function (params + stores), excluding
    bindings that happen only inside nested defs."""
    names: "Set[str]" = set()
    arguments = node.args
    for arg in (
        list(arguments.posonlyargs)
        + list(arguments.args)
        + list(arguments.kwonlyargs)
    ):
        names.add(arg.arg)
    if arguments.vararg:
        names.add(arguments.vararg.arg)
    if arguments.kwarg:
        names.add(arguments.kwarg.arg)
    stack: "List[ast.AST]" = list(node.body)
    while stack:
        current = stack.pop()
        if isinstance(current, (*FUNC_NODES, ast.Lambda, ast.ClassDef)):
            if isinstance(current, (*FUNC_NODES, ast.ClassDef)):
                names.add(current.name)
            continue
        if isinstance(current, ast.Name) and isinstance(
            current.ctx, (ast.Store, ast.Del)
        ):
            names.add(current.id)
        elif isinstance(current, (ast.Import, ast.ImportFrom)):
            for alias in current.names:
                names.add((alias.asname or alias.name).split(".", 1)[0])
        elif isinstance(current, ast.ExceptHandler) and current.name:
            names.add(current.name)
        stack.extend(ast.iter_child_nodes(current))
    return names


# ---------------------------------------------------------------------------
# Discovery: one file → ModuleInfo (symbols, locks, function tree).
# ---------------------------------------------------------------------------


class ModuleCollector:
    """Builds the :class:`ModuleInfo` symbol table for one file.

    ``pragma`` is the analyzer's suppression comment (the ``allow-par``
    or ``allow-exn`` marker): lines carrying it are recorded so the
    analyzer can honour and stale-check them.
    """

    def __init__(
        self,
        filename: str,
        source: str,
        tree: ast.Module,
        pragma: str,
        sanctioned: bool = False,
    ) -> None:
        lines = source.splitlines()
        self.module = ModuleInfo(
            filename=filename,
            modname=module_name(filename),
            tree=tree,
            lines=lines,
            sanctioned=sanctioned,
            pragma_lines={
                number
                for number, line in enumerate(lines, 1)
                if pragma and pragma in line
            },
        )

    def collect(self) -> ModuleInfo:
        module = self.module
        self._collect_imports(module.tree)
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        module.global_names.add(target.id)
                        if is_lock_value(node.value):
                            module.module_locks.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    module.global_names.add(node.target.id)
                    if node.value is not None and is_lock_value(node.value):
                        module.module_locks.add(node.target.id)
            elif isinstance(node, FUNC_NODES):
                self._collect_function(node, cls=None, parent=None)
            elif isinstance(node, ast.ClassDef):
                self._collect_class(node)
        # Locks are synchronization primitives, not shared state.
        module.global_names -= module.module_locks
        return module

    def _collect_imports(self, tree: ast.Module) -> None:
        module = self.module
        package_parts = module.modname.split(".")
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    module.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Resolve ``from ..x import y`` against our package.
                    anchor = package_parts[: len(package_parts) - node.level]
                    base = ".".join(anchor + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    dotted = f"{base}.{alias.name}" if base else alias.name
                    module.imports[bound] = dotted

    def _marked_boundary(self, node: FuncNode) -> bool:
        lineno = node.lineno
        lines = self.module.lines
        if 1 <= lineno <= len(lines):
            return WORKER_BOUNDARY_MARKER in lines[lineno - 1]
        return False

    def _collect_function(
        self,
        node: FuncNode,
        cls: "Optional[str]",
        parent: "Optional[FunctionInfo]",
    ) -> FunctionInfo:
        module = self.module
        if parent is not None:
            qualname = f"{parent.qualname}.<locals>.{node.name}"
        elif cls is not None:
            qualname = f"{module.modname}.{cls}.{node.name}"
        else:
            qualname = f"{module.modname}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            module=module,
            node=node,
            cls=cls,
            parent=parent,
            is_boundary=self._marked_boundary(node),
        )
        if parent is not None:
            parent.children[node.name] = info
        elif cls is None:
            module.functions[node.name] = info
        for child in node.body:
            if isinstance(child, FUNC_NODES):
                self._collect_function(child, cls=None, parent=info)
        return info

    def _collect_class(self, node: ast.ClassDef) -> None:
        module = self.module
        info = ClassInfo(name=node.name, module=module, node=node)
        for base in node.bases:
            chain = dotted_chain(base)
            if chain:
                info.bases.append(chain[-1])
        for member in node.body:
            if isinstance(member, FUNC_NODES):
                info.methods[member.name] = self._collect_function(
                    member, cls=node.name, parent=None
                )
            elif isinstance(member, ast.AnnAssign) and isinstance(
                member.target, ast.Name
            ):
                if is_lock_annotation(member.annotation) or (
                    member.value is not None and is_lock_value(member.value)
                ):
                    info.lock_attrs.add(member.target.id)
            elif isinstance(member, ast.Assign):
                for target in member.targets:
                    if isinstance(target, ast.Name) and is_lock_value(member.value):
                        info.lock_attrs.add(target.id)
        # ``self._lock = threading.Lock()`` inside any method.
        for method in info.methods.values():
            for stmt in ast.walk(method.node):
                if isinstance(stmt, ast.Assign) and is_lock_value(stmt.value):
                    for target in stmt.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            info.lock_attrs.add(target.attr)
        module.classes[node.name] = info


# ---------------------------------------------------------------------------
# The project base: module registry + call-graph resolution + roots.
# ---------------------------------------------------------------------------


class Project:
    """All modules of one analyzer invocation, resolved together.

    Subclasses set :attr:`pragma` (their suppression comment) and may
    override :meth:`sanctioned` (path fragments whose effects the
    analyzer deliberately ignores) and :attr:`skip_method_names` (the
    CHA-union exclusion list).
    """

    #: The analyzer's suppression pragma (collected per line).
    pragma: str = ""

    #: Method names excluded from the CHA fallback union.
    skip_method_names: "FrozenSet[str]" = COMMON_METHOD_NAMES

    def __init__(self) -> None:
        self.modules: "List[ModuleInfo]" = []
        self.modules_by_name: "Dict[str, ModuleInfo]" = {}
        self.submit_sites: "List[SubmitSite]" = []
        self._methods_by_name: "Dict[str, List[FunctionInfo]]" = {}
        self._functions_by_qualname: "Dict[str, FunctionInfo]" = {}

    def sanctioned(self, filename: str) -> bool:
        """Is this file's *effect* analysis waived?  Default: never."""
        return False

    def add_module(self, filename: str, source: str) -> None:
        tree = ast.parse(source, filename=filename)
        module = ModuleCollector(
            filename,
            source,
            tree,
            pragma=self.pragma,
            sanctioned=self.sanctioned(filename),
        ).collect()
        self.modules.append(module)
        self.modules_by_name[module.modname] = module

    def all_functions(self, module: ModuleInfo) -> "List[FunctionInfo]":
        result: "List[FunctionInfo]" = []

        def descend(info: FunctionInfo) -> None:
            result.append(info)
            for child in info.children.values():
                descend(child)

        for func in module.functions.values():
            descend(func)
        for cls in module.classes.values():
            for method in cls.methods.values():
                descend(method)
        return result

    def index(self) -> None:
        """Build the qualname and CHA method indexes (call once)."""
        for module in self.modules:
            for func in self.all_functions(module):
                self._functions_by_qualname[func.qualname] = func
                if func.cls is not None and func.parent is None:
                    self._methods_by_name.setdefault(func.name, []).append(func)

    def resolve_edges(self) -> None:
        """Resolve every function's recorded :class:`CallRef` edges."""
        for module in self.modules:
            for func in self.all_functions(module):
                targets: "List[FunctionInfo]" = []
                for ref in func.calls:
                    targets.extend(self.resolve(ref, func))
                # Deduplicate while keeping deterministic order.
                seen: "Set[str]" = set()
                for target in targets:
                    if target.qualname not in seen:
                        seen.add(target.qualname)
                        func.resolved.append(target)

    def resolve(
        self, ref: CallRef, caller: FunctionInfo
    ) -> "List[FunctionInfo]":
        module = caller.module
        if ref.kind == "name":
            scope: "Optional[FunctionInfo]" = caller
            while scope is not None:
                if ref.name in scope.children:
                    return [scope.children[ref.name]]
                scope = scope.parent
            if ref.name in module.functions:
                return [module.functions[ref.name]]
            if ref.name in module.classes:
                return self.constructor_targets(module.classes[ref.name])
            if ref.dotted is not None:
                return self.resolve_dotted(ref.dotted)
            return []
        # Attribute call.
        if ref.recv_class is not None:
            found = self.method_in_hierarchy(module, ref.recv_class, ref.name)
            if found is not None:
                return [found]
        if ref.dotted is not None:
            resolved = self.resolve_dotted(ref.dotted)
            if resolved:
                return resolved
        if ref.name in self.skip_method_names:
            return []
        return list(self._methods_by_name.get(ref.name, []))

    def constructor_targets(self, cls: ClassInfo) -> "List[FunctionInfo]":
        targets = []
        for name in ("__init__", "__post_init__"):
            if name in cls.methods:
                targets.append(cls.methods[name])
        return targets

    def method_in_hierarchy(
        self, module: ModuleInfo, class_name: str, method: str
    ) -> "Optional[FunctionInfo]":
        visited: "Set[str]" = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in visited:
                continue
            visited.add(current)
            for candidate_module in (module, *self.modules):
                cls = candidate_module.classes.get(current)
                if cls is not None:
                    if method in cls.methods:
                        return cls.methods[method]
                    queue.extend(cls.bases)
                    break
        return None

    def resolve_dotted(self, dotted: str) -> "List[FunctionInfo]":
        modname, _, attr = dotted.rpartition(".")
        module = self.modules_by_name.get(modname)
        if module is None:
            return []
        if attr in module.functions:
            return [module.functions[attr]]
        if attr in module.classes:
            return self.constructor_targets(module.classes[attr])
        return []

    def worker_roots(self) -> "List[Tuple[FunctionInfo, str]]":
        """Worker-boundary root functions and how each became one:
        resolved pool-submission callables plus marker-carrying defs."""
        roots: "List[Tuple[FunctionInfo, str]]" = []
        seen: "Set[str]" = set()
        for site in self.submit_sites:
            call = site.call
            if not call.args:
                continue
            first = call.args[0]
            resolved: "List[FunctionInfo]" = []
            if isinstance(first, ast.Name):
                caller = site.func
                ref = CallRef(
                    kind="name",
                    name=first.id,
                    dotted=site.module.imports.get(first.id, first.id),
                )
                if caller is not None:
                    resolved = self.resolve(ref, caller)
            via = (
                f"pool submission in "
                f"{site.func.qualname if site.func else site.module.modname}"
            )
            for target in resolved:
                if target.qualname not in seen:
                    seen.add(target.qualname)
                    roots.append((target, via))
        for module in self.modules:
            for func in self.all_functions(module):
                if func.is_boundary and func.qualname not in seen:
                    seen.add(func.qualname)
                    roots.append((func, f"`# {WORKER_BOUNDARY_MARKER}` marker"))
        return roots
