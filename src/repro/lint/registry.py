"""The design-rule registry: ``@rule`` declarations and the runner.

Every design rule is a function from a :class:`RuleContext` to an
iterable of :class:`~repro.lint.diagnostics.Diagnostic` objects,
declared with the :func:`rule` decorator::

    @rule("DEP004", Severity.ERROR, "placement")
    def spof_scope(ctx):
        '''All RP copies share one failure scope.'''
        ...

Rules are pure queries: they never mutate the design (the one rule that
needs the demand ledger snapshots and restores it) and never evaluate.
:func:`run_rules` executes a selected (or every) rule against a context,
emitting the ``lint.rules_run`` metric and a ``lint.rules`` tracer span
through :mod:`repro.obs`.  Per-severity ``lint.diagnostics.<severity>``
counters are emitted by the engine over the *reported* set (after
``lint.expect`` suppression), so the metrics always match the output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..obs import get_metrics, get_tracer
from .diagnostics import Diagnostic, LintError, Severity

RuleFunction = Callable[["RuleContext"], Iterable[Diagnostic]]


@dataclass(frozen=True)
class RuleInfo:
    """One registered rule: code, defaults, and the check function.

    ``function`` is None for pseudo-rules (codes that only name a
    diagnostic family the engine emits itself, e.g. ``DEP000`` for
    unbuildable specs) — they appear in the rule table and SARIF
    metadata but are never "run".
    """

    code: str
    severity: Severity
    category: str
    summary: str
    function: Optional[RuleFunction] = None


#: Every registered rule, keyed by code, in registration order.
RULES: "Dict[str, RuleInfo]" = {}


@dataclass
class RuleContext:
    """Everything a design rule may look at.

    All fields are optional: rules guard on what they need and emit
    nothing when their inputs are absent.  ``spec`` is the raw JSON
    dictionary when linting a spec file (spec-structure rules use it);
    the rest are built framework objects.
    """

    design: Optional[Any] = None  # StorageDesign
    workload: Optional[Any] = None  # Workload
    scenarios: "Tuple[Any, ...]" = ()  # FailureScenario, ...
    requirements: Optional[Any] = None  # BusinessRequirements
    spec: "Optional[Mapping[str, Any]]" = None


def rule(
    code: str, severity: Severity, category: str
) -> "Callable[[RuleFunction], RuleFunction]":
    """Register a design rule under a stable ``DEP###`` code.

    The decorated function's docstring first line becomes the rule's
    summary in the rule table and SARIF metadata.
    """

    def decorator(function: RuleFunction) -> RuleFunction:
        if code in RULES:
            raise LintError(f"duplicate rule code {code!r}")
        summary = (function.__doc__ or "").strip().splitlines()[0] if function.__doc__ else ""
        RULES[code] = RuleInfo(
            code=code,
            severity=severity,
            category=category,
            summary=summary,
            function=function,
        )
        return function

    return decorator


def register_code(
    code: str, severity: Severity, category: str, summary: str
) -> None:
    """Register a pseudo-rule code (no check function) for the table."""
    if code in RULES:
        raise LintError(f"duplicate rule code {code!r}")
    RULES[code] = RuleInfo(
        code=code, severity=severity, category=category, summary=summary
    )


def make(code: str, message: str, hint: str = "", pointer: str = "") -> Diagnostic:
    """Build a diagnostic with the registered defaults of ``code``."""
    try:
        info = RULES[code]
    except KeyError:
        raise LintError(f"unknown rule code {code!r}") from None
    return Diagnostic(
        code=code,
        severity=info.severity,
        message=message,
        hint=hint,
        category=info.category,
        source="design",
        pointer=pointer,
    )


def run_rules(
    context: RuleContext,
    codes: "Optional[Sequence[str]]" = None,
) -> "List[Diagnostic]":
    """Run the selected rules (default: every registered rule) in order.

    ``codes`` preserves its order, so callers that adapt diagnostics to
    a legacy report (``validate_design``) control message ordering.
    """
    if codes is None:
        selected = [info for info in RULES.values() if info.function is not None]
    else:
        selected = []
        for code in codes:
            try:
                info = RULES[code]
            except KeyError:
                raise LintError(f"unknown rule code {code!r}") from None
            if info.function is not None:
                selected.append(info)
    tracer = get_tracer()
    metrics = get_metrics()
    diagnostics: "List[Diagnostic]" = []
    with tracer.span("lint.rules", rules=len(selected)) as span:
        for info in selected:
            assert info.function is not None  # filtered above
            metrics.inc("lint.rules_run")
            diagnostics.extend(info.function(context))
        span.set(diagnostics=len(diagnostics))
    return diagnostics
