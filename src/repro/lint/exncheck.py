"""Interprocedural exception-flow analyzer for the error contract.

Run as::

    python -m repro.lint.exncheck src/repro

Everything the evaluation pipeline reports rests on its own failure
paths being correct: :mod:`repro.engine` encodes "``ReproError`` =
model outcome, never retried; anything else = infrastructure fault,
retried", §3.3.1 of the paper mandates hard errors on utilization
overflow, and any exception crossing the worker boundary must survive
pickling into the parent process.  A violation does not crash the
evaluator; it silently converts a model verdict into a retry loop, or
swallows a capacity overflow into a generic failure.  This module
makes the contract statically checkable, the way
:mod:`repro.lint.parcheck` made the purity contract checkable.

The analyzer is **interprocedural**, built on the shared project model
in :mod:`repro.lint.callgraph`: all files of one invocation form one
project with a resolved call graph.  For every function it computes
the set of exception types that can *escape* it — a fixpoint over
``raise`` sites, callee escape sets, and ``except`` clause filtering,
with the class hierarchy resolved so ``except DeviceError`` is known
to absorb ``CapacityExceededError``.  Escape sets are *positive
evidence*: a function whose calls cannot all be resolved is marked
*open* (its escape set is a lower bound), and rules that need
completeness (EXN004's "provably cannot escape") only fire on closed
bodies.

Rules (sharing the :class:`~repro.lint.diagnostics.Diagnostic` model):

``EXN001`` (error)
    An exception type raised in worker-reachable code (the same
    pool-submission / ``# lint: worker-boundary`` roots parcheck uses)
    cannot round-trip through pickle: its ``__init__`` takes two or
    more required arguments and neither it nor a project ancestor
    defines ``__reduce__``.  ``BaseException.__reduce__`` replays
    ``self.args`` into ``__init__``, so the unpickle in the parent
    raises ``TypeError`` and the real failure is lost.
``EXN002`` (error)
    A broad handler (``except Exception`` / ``BaseException`` / bare
    ``except``) can absorb a ``ReproError`` subclass without
    re-raising, recording, or returning it: a model outcome silently
    becomes a retried infrastructure fault.
``EXN003`` (error)
    A public-API function (re-exported via a package ``__init__`` or
    registered as a CLI ``set_defaults(func=...)`` handler) can leak a
    project-defined exception that is not a ``ReproError``: callers
    honouring the documented "catch ``ReproError``" contract will not
    catch it.
``EXN004`` (warning)
    A dead handler: the caught project-defined type provably cannot
    escape the ``try`` body (the body's escape set is closed and
    disjoint from the handler).
``EXN005`` (warning)
    ``raise NewError(...)`` inside an ``except`` block without
    ``from``: the causal chain provenance records is destroyed
    (``from exc`` keeps it, ``from None`` severs it deliberately).
``EXN006`` (error)
    The ``# lint: allow-exn`` pragma budget is exceeded.
``EXN099`` (warning)
    A stale ``# lint: allow-exn`` pragma that suppresses nothing.

The pragma ``# lint: allow-exn`` on the flagged line suppresses
EXN001–EXN005 (use it only with a comment stating why the flow is
safe); ``--max-pragmas`` budgets the total (CI pins it at 3).
"""

from __future__ import annotations

import argparse
import ast
import builtins
import sys
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..obs import get_metrics
from .callgraph import (
    COMMON_METHOD_NAMES,
    FUNC_NODES as _FUNC_NODES,
    SUBMIT_METHODS,
    CallRef,
    ClassInfo,
    FuncNode,
    FunctionInfo,
    ModuleInfo,
    Project,
    SubmitSite,
    dotted_chain as _dotted_chain,
    local_names as _local_names,
)
from .diagnostics import Diagnostic, Severity, exit_code
from .output import FORMATS, render
from .registry import RuleInfo

#: The exception-flow rule table, merged into SARIF metadata and the
#: documented rule table by ``output.all_rule_infos``.
EXN_RULES: "Dict[str, RuleInfo]" = {
    info.code: info
    for info in (
        RuleInfo(
            "EXN001",
            Severity.ERROR,
            "exceptions",
            "Worker-reachable exception type cannot survive pickling.",
        ),
        RuleInfo(
            "EXN002",
            Severity.ERROR,
            "exceptions",
            "Broad handler absorbs a ReproError without recording it.",
        ),
        RuleInfo(
            "EXN003",
            Severity.ERROR,
            "exceptions",
            "Public API can leak a non-ReproError framework exception.",
        ),
        RuleInfo(
            "EXN004",
            Severity.WARNING,
            "exceptions",
            "Dead handler: the caught type cannot escape the try body.",
        ),
        RuleInfo(
            "EXN005",
            Severity.WARNING,
            "exceptions",
            "raise inside except without `from`: causal chain destroyed.",
        ),
        RuleInfo(
            "EXN006",
            Severity.ERROR,
            "exceptions",
            "allow-exn pragma budget exceeded.",
        ),
        RuleInfo(
            "EXN099",
            Severity.WARNING,
            "exceptions",
            "Stale allow-exn pragma that no longer suppresses anything.",
        ),
    )
}

ALLOW_EXN_PRAGMA = "lint: allow-exn"

#: Files the checker never applies to: this analyzer itself (its stub
#: tables and hint strings name the very patterns it flags) and
#: codelint, whose ``EXN_FAMILY_PRAGMA`` constant spells the pragma
#: out as a string literal.
DEFAULT_ALLOWLIST = (
    "repro/lint/exncheck.py",
    "repro/lint/codelint.py",
)

#: The framework's error-contract root class.
REPRO_ERROR = "ReproError"

#: Handler names that catch everything (the EXN002 "broad" set).
BROAD_HANDLERS = frozenset({"Exception", "BaseException"})

# ---------------------------------------------------------------------------
# Stub escape tables (stdlib), like dimcheck's dimension stubs.
# ---------------------------------------------------------------------------

#: Fully-dotted (or builtin) callables with a known escape set.  The
#: values are what the call can raise under inputs the framework can
#: actually produce — not an exhaustive stdlib audit.
STUB_RAISES: "Dict[str, Tuple[str, ...]]" = {
    "open": ("OSError",),
    "json.loads": ("ValueError",),
    "json.load": ("ValueError", "OSError"),
    "json.dumps": ("TypeError", "ValueError"),
    "json.dump": ("TypeError", "OSError"),
    "pickle.dumps": ("PicklingError", "TypeError"),
    "pickle.loads": ("UnpicklingError", "AttributeError"),
    "pickle.load": ("UnpicklingError", "OSError"),
    "int": ("ValueError", "TypeError"),
    "float": ("ValueError", "TypeError"),
}

#: Callables known not to raise anything the contract cares about.
#: (``next`` raises ``StopIteration`` and ``min``/``max`` raise
#: ``ValueError`` on empty input; both are loop-protocol noise, not
#: error-contract flows, so they are deliberately "clean".)
CLEAN_CALLS = frozenset(
    {
        "len",
        "str",
        "repr",
        "format",
        "bool",
        "abs",
        "round",
        "id",
        "hash",
        "type",
        "isinstance",
        "issubclass",
        "callable",
        "getattr",
        "hasattr",
        "setattr",
        "list",
        "dict",
        "set",
        "frozenset",
        "tuple",
        "enumerate",
        "zip",
        "range",
        "sorted",
        "reversed",
        "sum",
        "min",
        "max",
        "any",
        "all",
        "next",
        "iter",
        "vars",
        "print",
        "super",
    }
)

#: Dotted-call prefixes treated as clean (telemetry, math, paths).
CLEAN_DOTTED_PREFIXES = (
    "math.",
    "time.",
    "os.path.",
    "itertools.",
    "textwrap.",
    "re.",
)

#: Method names treated as clean besides the shared container set:
#: logging-style emitters and telemetry sinks.
CLEAN_METHODS = frozenset(
    {
        "info",
        "warning",
        "error",
        "debug",
        "exception",
        "critical",
        "log",
        "upper",
        "lower",
        "title",
        "replace",
        "rstrip",
        "lstrip",
        "splitlines",
        "ljust",
        "rjust",
        "zfill",
    }
)


def _builtin_exception_bases() -> "Dict[str, Tuple[str, ...]]":
    """Direct bases of every builtin exception type, by introspection,
    plus the non-builtin stdlib exceptions the stub tables mention."""
    table: "Dict[str, Tuple[str, ...]]" = {}
    for name in dir(builtins):
        obj = getattr(builtins, name)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            table[name] = tuple(
                base.__name__
                for base in obj.__bases__
                if issubclass(base, BaseException)
            )
    table.setdefault("PicklingError", ("Exception",))
    table.setdefault("UnpicklingError", ("Exception",))
    table.setdefault("JSONDecodeError", ("ValueError",))
    return table


class _Hierarchy:
    """The merged exception class hierarchy: builtins + project."""

    def __init__(self) -> None:
        self._bases: "Dict[str, Tuple[str, ...]]" = _builtin_exception_bases()
        self._ancestors: "Dict[str, FrozenSet[str]]" = {}

    def add(self, name: str, bases: "Sequence[str]") -> None:
        if name not in self._bases:
            self._bases[name] = tuple(bases)
            self._ancestors.clear()

    def ancestors(self, name: str) -> "FrozenSet[str]":
        """``name`` and everything above it; unknown types are assumed
        to derive ``Exception`` directly."""
        cached = self._ancestors.get(name)
        if cached is not None:
            return cached
        result: "Set[str]" = set()
        queue = [name]
        while queue:
            current = queue.pop()
            if current in result:
                continue
            result.add(current)
            queue.extend(self._bases.get(current, ("Exception",)))
        frozen = frozenset(result)
        self._ancestors[name] = frozen
        return frozen

    def absorbs(self, handler: str, exc: str) -> bool:
        """Does ``except handler`` catch an ``exc`` instance?"""
        return handler in self.ancestors(exc)

    def is_repro_error(self, name: str) -> bool:
        return REPRO_ERROR in self.ancestors(name)


# ---------------------------------------------------------------------------
# Per-function summary IR: raise sites, call sites, try structure.
# ---------------------------------------------------------------------------


@dataclass
class RaiseSite:
    """One ``raise`` statement (re-raises are handler-level, not here)."""

    exc: Optional[str]  # type name, or None when unresolvable
    node: ast.Raise


@dataclass
class CallSite:
    """One call whose escape set feeds the enclosing block."""

    ref: CallRef
    dotted: Optional[str]
    bare: Optional[str]
    node: ast.Call


@dataclass
class Block:
    """A flat region of statements: control flow other than ``try``
    is irrelevant to what *can* escape, so it is flattened away."""

    raises: "List[RaiseSite]" = field(default_factory=list)
    calls: "List[CallSite]" = field(default_factory=list)
    tries: "List[TrySummary]" = field(default_factory=list)


@dataclass
class HandlerSummary:
    """One ``except`` clause of a ``try``."""

    types: "Optional[List[str]]"  # None = bare except
    block: Block
    bound: Optional[str]
    reraises: bool  # bare raise / `raise bound`
    records: bool  # bound passed to a call, returned, or `from bound`
    node: ast.ExceptHandler


@dataclass
class TrySummary:
    body: Block
    handlers: "List[HandlerSummary]"
    orelse: Block
    final: Block
    node: ast.Try


class _SummaryBuilder:
    """Builds one function's :class:`Block` tree and emits the purely
    syntactic EXN005 findings along the way."""

    def __init__(self, project: "_ExnProject", func: FunctionInfo) -> None:
        self.project = project
        self.func = func
        self.module = func.module
        self.locals = _local_names(func.node)

    def build(self) -> Block:
        return self._block(self.func.node.body, handler_bound=None)

    # -- statement walk ------------------------------------------------------

    def _block(
        self, stmts: "Sequence[ast.stmt]", handler_bound: Optional[str]
    ) -> Block:
        block = Block()
        for stmt in stmts:
            self._stmt(stmt, block, handler_bound)
        return block

    def _stmt(
        self, node: ast.stmt, block: Block, handler_bound: Optional[str]
    ) -> None:
        if isinstance(node, (*_FUNC_NODES, ast.ClassDef)):
            return  # nested defs are summarized as their own functions
        if isinstance(node, ast.Raise):
            self._raise(node, block, handler_bound)
            return
        if isinstance(node, ast.Try):
            block.tries.append(self._try(node, handler_bound))
            return
        # Any other statement: harvest calls from its expressions, then
        # recurse into child statements (If/For/While/With bodies).
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._stmt(child, block, handler_bound)
            elif isinstance(child, ast.expr):
                self._calls(child, block)
            elif isinstance(child, ast.withitem):
                self._calls(child.context_expr, block)
            elif isinstance(child, ast.ExceptHandler):  # pragma: no cover
                pass  # only reachable via ast.Try, handled above

    def _raise(
        self, node: ast.Raise, block: Block, handler_bound: Optional[str]
    ) -> None:
        exc = node.exc
        if exc is None:
            return  # bare re-raise: handler-level semantics
        if isinstance(exc, ast.Name) and exc.id == handler_bound:
            return  # `raise exc`: handler-level re-raise
        if isinstance(exc, ast.Call):
            # The constructor itself is not a call-site escape; its
            # arguments still are.
            for arg in exc.args:
                self._calls(arg, block)
            for keyword in exc.keywords:
                self._calls(keyword.value, block)
            name = self._type_name(exc.func)
            block.raises.append(RaiseSite(exc=name, node=node))
        elif isinstance(exc, (ast.Name, ast.Attribute)):
            # `raise SomeError` (the bare class) raises SomeError();
            # `raise instance_var` is unresolvable.
            name = self._type_name(exc)
            if name is not None and self._looks_like_type(name):
                block.raises.append(RaiseSite(exc=name, node=node))
            else:
                block.raises.append(RaiseSite(exc=None, node=node))
        else:
            block.raises.append(RaiseSite(exc=None, node=node))
        if node.cause is not None and isinstance(node.cause, ast.Call):
            self._calls(node.cause, block)

    def _type_name(self, node: ast.expr) -> Optional[str]:
        chain = _dotted_chain(node)
        if chain is None:
            return None
        if chain[0] in self.locals and len(chain) == 1:
            return None
        return chain[-1]

    @staticmethod
    def _looks_like_type(name: str) -> bool:
        # `raise SomeError` vs `raise err`: exception classes are
        # CapWords by convention (PEP 8), locals are not.
        return bool(name) and name[0].isupper()

    def _try(self, node: ast.Try, handler_bound: Optional[str]) -> TrySummary:
        body = self._block(node.body, handler_bound)
        handlers: "List[HandlerSummary]" = []
        for handler in node.handlers:
            handlers.append(self._handler(handler))
        orelse = self._block(node.orelse, handler_bound)
        final = self._block(node.finalbody, handler_bound)
        return TrySummary(
            body=body, handlers=handlers, orelse=orelse, final=final, node=node
        )

    def _handler(self, handler: ast.ExceptHandler) -> HandlerSummary:
        types = self._handler_types(handler.type)
        bound = handler.name
        block = self._block(handler.body, handler_bound=bound)
        reraises = False
        records = False
        for stmt in handler.body:
            for child in self._walk_shallow(stmt):
                if isinstance(child, ast.Raise):
                    if child.exc is None:
                        reraises = True
                    elif (
                        bound is not None
                        and isinstance(child.exc, ast.Name)
                        and child.exc.id == bound
                    ):
                        reraises = True
                    else:
                        if (
                            bound is not None
                            and isinstance(child.cause, ast.Name)
                            and child.cause.id == bound
                        ):
                            records = True
                        if child.cause is None and isinstance(
                            child.exc, ast.Call
                        ):
                            self.project.emit(
                                self.module,
                                "EXN005",
                                "`raise` inside an `except` block without "
                                "`from`: the causal chain provenance "
                                "records is destroyed",
                                "chain the original with `raise ... from "
                                f"{bound or 'exc'}` (or sever deliberately "
                                "with `from None`), or pragma with "
                                f"`# {ALLOW_EXN_PRAGMA}`",
                                child,
                            )
                elif bound is not None and isinstance(child, ast.Call):
                    for arg in child.args:
                        if isinstance(arg, ast.Name) and arg.id == bound:
                            records = True
                    for keyword in child.keywords:
                        if (
                            isinstance(keyword.value, ast.Name)
                            and keyword.value.id == bound
                        ):
                            records = True
                elif bound is not None and isinstance(child, ast.Return):
                    if child.value is not None and any(
                        isinstance(leaf, ast.Name) and leaf.id == bound
                        for leaf in ast.walk(child.value)
                    ):
                        records = True
        return HandlerSummary(
            types=types,
            block=block,
            bound=bound,
            reraises=reraises,
            records=records,
            node=handler,
        )

    @staticmethod
    def _walk_shallow(stmt: ast.stmt) -> "Iterator[ast.AST]":
        """Walk a statement without descending into nested defs."""
        stack: "List[ast.AST]" = [stmt]
        while stack:
            current = stack.pop()
            if isinstance(current, (*_FUNC_NODES, ast.Lambda, ast.ClassDef)):
                continue
            yield current
            stack.extend(ast.iter_child_nodes(current))

    @staticmethod
    def _walk_shallow_body(node: FuncNode) -> "Iterator[ast.AST]":
        """Walk a function's body without descending into nested defs."""
        for stmt in node.body:
            yield from _SummaryBuilder._walk_shallow(stmt)

    def _handler_types(
        self, node: Optional[ast.expr]
    ) -> "Optional[List[str]]":
        if node is None:
            return None
        elements = node.elts if isinstance(node, ast.Tuple) else [node]
        names: "List[str]" = []
        for element in elements:
            name = self._type_name(element)
            names.append(name if name is not None else "Exception")
        return names

    # -- call harvesting -----------------------------------------------------

    def _calls(self, node: ast.expr, block: Block) -> None:
        stack: "List[ast.AST]" = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, (*_FUNC_NODES, ast.Lambda)):
                continue
            if isinstance(current, ast.Call):
                site = self._call_site(current)
                block.calls.append(site)
                # Mirror the site onto the call-graph edge list so
                # ``resolve_edges`` (EXN001's worker-reach walk) sees
                # the same calls the escape fixpoint does.
                self.func.calls.append(site.ref)
            stack.extend(ast.iter_child_nodes(current))

    def _call_site(self, node: ast.Call) -> CallSite:
        bare: Optional[str] = None
        dotted: Optional[str] = None
        if isinstance(node.func, ast.Name):
            if node.func.id not in self.locals:
                bare = node.func.id
                dotted = self.module.imports.get(bare, bare)
            ref = CallRef(kind="name", name=node.func.id, dotted=dotted)
            return CallSite(ref=ref, dotted=dotted, bare=bare, node=node)
        if isinstance(node.func, ast.Attribute):
            chain = _dotted_chain(node.func)
            if chain is not None and chain[0] not in self.locals and chain[
                0
            ] not in ("self", "cls"):
                resolved = self.module.imports.get(chain[0])
                if resolved is not None:
                    chain = resolved.split(".") + chain[1:]
                dotted = ".".join(chain)
            recv_class: Optional[str] = None
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and self.func.cls is not None
            ):
                recv_class = self.func.cls
            ref = CallRef(
                kind="attr",
                name=node.func.attr,
                dotted=dotted,
                recv_class=recv_class,
            )
            return CallSite(ref=ref, dotted=dotted, bare=None, node=node)
        ref = CallRef(kind="attr", name="<dynamic>", dotted=None)
        return CallSite(ref=ref, dotted=None, bare=None, node=node)


# ---------------------------------------------------------------------------
# The project: escape-set fixpoint, rules, pragmas.
# ---------------------------------------------------------------------------


#: An escape result: the set of type names plus the "open" flag that
#: marks the set as a lower bound (some call could not be resolved).
Escape = Tuple[FrozenSet[str], bool]

_EMPTY: Escape = (frozenset(), False)


class _ExnProject(Project):
    """All modules of one invocation, analyzed together."""

    pragma = ALLOW_EXN_PRAGMA

    #: ``decode``/``encode`` stay resolvable (the cache's codec decode
    #: is a load-bearing EXN002 flow); the rest of the shared container
    #: vocabulary is excluded from CHA as usual.
    skip_method_names = frozenset(COMMON_METHOD_NAMES - {"decode", "encode"})

    def __init__(self) -> None:
        super().__init__()
        self.findings: "List[Diagnostic]" = []
        self._emitted: "Set[Tuple[str, Optional[int], str, str]]" = set()
        self.hierarchy = _Hierarchy()
        self.summaries: "Dict[str, Block]" = {}
        self.escapes: "Dict[str, FrozenSet[str]]" = {}
        self.opens: "Dict[str, bool]" = {}
        self._classes_by_name: "Dict[str, ClassInfo]" = {}
        #: Callable-field CHA: ``Codec(decode=_decode_map)`` binds the
        #: field name ``decode`` to that function, so the later
        #: ``codec.decode(...)`` attr call resolves through it.
        self._field_bindings: "Dict[str, List[FunctionInfo]]" = {}

    # -- emission ------------------------------------------------------------

    def emit(
        self,
        module: ModuleInfo,
        code: str,
        message: str,
        hint: str,
        node: "Optional[ast.AST]",
        line: "Optional[int]" = None,
    ) -> None:
        first = getattr(node, "lineno", None) if node is not None else line
        if node is not None and first is not None:
            last = getattr(node, "end_lineno", None) or first
            covered = module.pragma_lines.intersection(range(first, int(last) + 1))
            if covered:
                module.used_pragma_lines.update(covered)
                return
        key = (module.filename, first, code, message)
        if key in self._emitted:
            return
        self._emitted.add(key)
        info = EXN_RULES[code]
        self.findings.append(
            Diagnostic(
                code=code,
                severity=info.severity,
                message=message,
                hint=hint,
                category=info.category,
                source="code",
                file=module.filename,
                line=first,
                column=getattr(node, "col_offset", None) if node is not None else None,
            )
        )

    # -- analysis ------------------------------------------------------------

    def analyze(self) -> "List[Diagnostic]":
        self.index()
        for module in self.modules:
            for cls in module.classes.values():
                self._classes_by_name.setdefault(cls.name, cls)
                self.hierarchy.add(cls.name, cls.bases)
        for module in self.modules:
            self._collect_field_bindings(module)
            for func in self.all_functions(module):
                self.summaries[func.qualname] = _SummaryBuilder(
                    self, func
                ).build()
                self._find_submissions(func)
                self.escapes[func.qualname] = frozenset()
                self.opens[func.qualname] = False
        # EXN001's worker-reach traversal walks ``func.resolved``.
        self.resolve_edges()
        self._fixpoint()
        self._report_handlers()
        self._check_worker_pickling()
        self._check_public_leaks()
        for module in self.modules:
            self._stale_pragmas(module)
        self.findings.sort(
            key=lambda d: (d.file or "", d.line or 0, d.code, d.message)
        )
        return self.findings

    def _collect_field_bindings(self, module: ModuleInfo) -> None:
        """Record ``SomeClass(field=module_function)`` keyword bindings
        so attr calls on callable dataclass fields resolve."""
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and node.keywords):
                continue
            if not self._is_project_class_call(module, node.func):
                continue
            for keyword in node.keywords:
                if keyword.arg is None or not isinstance(
                    keyword.value, ast.Name
                ):
                    continue
                bound = self._function_for_name(module, keyword.value.id)
                if bound is not None:
                    targets = self._field_bindings.setdefault(keyword.arg, [])
                    if all(t.qualname != bound.qualname for t in targets):
                        targets.append(bound)

    def _is_project_class_call(
        self, module: ModuleInfo, func: ast.expr
    ) -> bool:
        chain = _dotted_chain(func)
        if chain is None:
            return False
        name = chain[-1]
        if len(chain) == 1:
            if name in module.classes:
                return True
            dotted = module.imports.get(name)
        else:
            head = module.imports.get(chain[0], chain[0])
            dotted = ".".join([head] + chain[1:])
        if dotted is None:
            return False
        modname, _, attr = dotted.rpartition(".")
        target = self.modules_by_name.get(modname)
        return target is not None and attr in target.classes

    def _function_for_name(
        self, module: ModuleInfo, name: str
    ) -> "Optional[FunctionInfo]":
        if name in module.functions:
            return module.functions[name]
        dotted = module.imports.get(name)
        if dotted is not None:
            resolved = self.resolve_dotted(dotted)
            if len(resolved) == 1 and resolved[0].cls is None:
                return resolved[0]
        return None

    def _find_submissions(self, func: FunctionInfo) -> None:
        """Record pool-submission sites so :meth:`worker_roots` sees
        the same roots parcheck does."""
        for child in _SummaryBuilder._walk_shallow_body(func.node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in SUBMIT_METHODS
            ):
                self.submit_sites.append(
                    SubmitSite(call=child, func=func, module=func.module)
                )

    # -- escape evaluation ---------------------------------------------------

    def _fixpoint(self) -> None:
        ordering = [
            func
            for module in self.modules
            for func in self.all_functions(module)
        ]
        changed = True
        rounds = 0
        while changed and rounds < 50:
            changed = False
            rounds += 1
            for func in ordering:
                escaped, open_ = self._eval_block(
                    self.summaries[func.qualname], func, report=False
                )
                frozen = frozenset(escaped)
                new_open = open_ or self.opens[func.qualname]
                if frozen != self.escapes[func.qualname] or (
                    new_open != self.opens[func.qualname]
                ):
                    self.escapes[func.qualname] = frozen
                    self.opens[func.qualname] = new_open
                    changed = True

    def _eval_block(
        self, block: Block, func: FunctionInfo, report: bool
    ) -> "Tuple[Set[str], bool]":
        escaped: "Set[str]" = set()
        open_ = False
        for site in block.raises:
            if site.exc is not None:
                escaped.add(site.exc)
            else:
                open_ = True
        for call in block.calls:
            call_escape, call_open = self._eval_call(call, func)
            escaped |= call_escape
            open_ |= call_open
        for summary in block.tries:
            try_escape, try_open = self._eval_try(summary, func, report)
            escaped |= try_escape
            open_ |= try_open
        return escaped, open_

    def _eval_call(
        self, call: CallSite, func: FunctionInfo
    ) -> "Tuple[Set[str], bool]":
        targets = self.resolve(call.ref, func)
        if targets:
            escaped: "Set[str]" = set()
            open_ = False
            for target in targets:
                escaped |= self.escapes.get(target.qualname, frozenset())
                open_ |= self.opens.get(target.qualname, False)
            return escaped, open_
        if call.dotted is not None:
            stub = STUB_RAISES.get(call.dotted)
            if stub is not None:
                return set(stub), False
            if call.dotted.startswith(CLEAN_DOTTED_PREFIXES):
                return set(), False
        if call.bare is not None:
            stub = STUB_RAISES.get(call.bare)
            if stub is not None:
                return set(stub), False
            if call.bare in CLEAN_CALLS:
                return set(), False
            # Constructing a known exception type raises nothing.
            if call.bare in _builtin_names():
                return set(), False
            return set(), True
        if call.ref.kind == "attr":
            bound = self._field_bindings.get(call.ref.name)
            if bound:
                escaped = set()
                open_ = False
                for target in bound:
                    escaped |= self.escapes.get(target.qualname, frozenset())
                    open_ |= self.opens.get(target.qualname, False)
                return escaped, open_
            if (
                call.ref.name in self.skip_method_names
                or call.ref.name in CLEAN_METHODS
            ):
                return set(), False
        return set(), True

    def _eval_try(
        self, summary: TrySummary, func: FunctionInfo, report: bool
    ) -> "Tuple[Set[str], bool]":
        body_escape, body_open = self._eval_block(summary.body, func, report)
        remaining = set(body_escape)
        remaining_open = body_open
        result: "Set[str]" = set()
        result_open = False
        for handler in summary.handlers:
            types = handler.types
            broad = types is None or any(t in BROAD_HANDLERS for t in types)
            if types is None:
                caught = set(remaining)
            else:
                caught = {
                    exc
                    for exc in remaining
                    if any(self.hierarchy.absorbs(t, exc) for t in types)
                }
            caught_open = remaining_open and broad
            remaining -= caught
            if caught_open:
                remaining_open = False
            if report:
                self._report_one_handler(
                    summary, handler, func, caught, body_open, broad
                )
            handler_escape, handler_open = self._eval_block(
                handler.block, func, report
            )
            if handler.reraises:
                handler_escape |= caught
                handler_open |= caught_open
            result |= handler_escape
            result_open |= handler_open
        orelse_escape, orelse_open = self._eval_block(
            summary.orelse, func, report
        )
        final_escape, final_open = self._eval_block(summary.final, func, report)
        escaped = remaining | result | orelse_escape | final_escape
        open_ = remaining_open or result_open or orelse_open or final_open
        return escaped, open_

    # -- rules ---------------------------------------------------------------

    def _report_handlers(self) -> None:
        for module in self.modules:
            for func in self.all_functions(module):
                self._eval_block(
                    self.summaries[func.qualname], func, report=True
                )

    def _report_one_handler(
        self,
        summary: TrySummary,
        handler: HandlerSummary,
        func: FunctionInfo,
        caught: "Set[str]",
        body_open: bool,
        broad: bool,
    ) -> None:
        module = func.module
        # EXN002: a broad handler absorbing a model outcome.
        if broad and not handler.reraises and not handler.records:
            absorbed = sorted(
                exc for exc in caught if self.hierarchy.is_repro_error(exc)
            )
            if absorbed:
                label = ", ".join(absorbed)
                self.emit(
                    module,
                    "EXN002",
                    f"broad `except` in {func.qualname} absorbs "
                    f"{label}: a ReproError is a model outcome, and "
                    "swallowing it here silently converts it into a "
                    "retried infrastructure fault",
                    "narrow the handler (catch ReproError separately), "
                    "re-raise, or record the exception object itself, "
                    f"or pragma with `# {ALLOW_EXN_PRAGMA}` stating why "
                    "the outcome cannot be lost",
                    handler.node,
                )
        # EXN004: a dead handler over a provably-closed try body.
        if (
            not broad
            and handler.types is not None
            and not body_open
            and not caught
        ):
            project_types = [
                t for t in handler.types if t in self._classes_by_name
            ]
            if project_types and len(project_types) == len(handler.types):
                label = ", ".join(sorted(project_types))
                body_label = (
                    ", ".join(sorted(self._body_escape_cache(summary, func)))
                    or "nothing"
                )
                self.emit(
                    module,
                    "EXN004",
                    f"dead handler in {func.qualname}: {label} provably "
                    f"cannot escape the try body (it raises {body_label})",
                    "delete the handler or widen the try body to cover "
                    "the call that can actually raise it; pragma with "
                    f"`# {ALLOW_EXN_PRAGMA}` if the coupling is "
                    "deliberate",
                    handler.node,
                )

    def _body_escape_cache(
        self, summary: TrySummary, func: FunctionInfo
    ) -> "Set[str]":
        escaped, _ = self._eval_block(summary.body, func, report=False)
        return escaped

    def _check_worker_pickling(self) -> None:
        """EXN001: exceptions raised in worker-reachable code must
        survive the pickle round-trip back to the parent."""
        roots = self.worker_roots()
        parent: "Dict[str, Optional[str]]" = {}
        origin: "Dict[str, str]" = {}
        queue: "List[FunctionInfo]" = []
        for root, via in roots:
            if root.qualname not in parent:
                parent[root.qualname] = None
                origin[root.qualname] = via
                queue.append(root)
        index = 0
        while index < len(queue):
            func = queue[index]
            index += 1
            for target in func.resolved:
                if target.qualname not in parent:
                    parent[target.qualname] = func.qualname
                    origin[target.qualname] = origin[func.qualname]
                    queue.append(target)
        flagged: "Set[str]" = set()
        for func in queue:
            for site in self._all_raises(self.summaries[func.qualname]):
                if site.exc is None or site.exc in flagged:
                    continue
                cls = self._classes_by_name.get(site.exc)
                if cls is None:
                    continue  # builtin / external: pickles by protocol
                reason = self._unpicklable(cls)
                if reason is None:
                    continue
                flagged.add(site.exc)
                anchor = cls.node if cls.node is not None else site.node
                self.emit(
                    cls.module,
                    "EXN001",
                    f"{cls.name} is raised in worker-reachable code "
                    f"({func.qualname}, reached from "
                    f"{origin[func.qualname]}) but cannot survive "
                    f"pickling: {reason}",
                    "add a `__reduce__` returning (type(self), "
                    "(<init args>,)) so the exception round-trips to "
                    "the parent process, or pragma with "
                    f"`# {ALLOW_EXN_PRAGMA}`",
                    anchor,
                )

    def _all_raises(self, block: Block) -> "Iterator[RaiseSite]":
        for site in block.raises:
            yield site
        for summary in block.tries:
            yield from self._all_raises(summary.body)
            for handler in summary.handlers:
                yield from self._all_raises(handler.block)
            yield from self._all_raises(summary.orelse)
            yield from self._all_raises(summary.final)

    def _unpicklable(self, cls: ClassInfo) -> Optional[str]:
        """Why ``cls`` fails the pickle round-trip, or None if fine."""
        seen: "Set[str]" = set()
        queue = [cls.name]
        init: "Optional[FunctionInfo]" = None
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self._classes_by_name.get(current)
            if info is None:
                continue
            if "__reduce__" in info.methods or "__reduce_ex__" in info.methods:
                return None
            if init is None and "__init__" in info.methods:
                init = info.methods["__init__"]
            queue.extend(info.bases)
        if init is None:
            return None  # default __init__: BaseException.args replays
        arguments = init.node.args
        positional = list(arguments.posonlyargs) + list(arguments.args)
        required = max(0, len(positional) - 1 - len(arguments.defaults))
        required += sum(
            1
            for _, default in zip(
                arguments.kwonlyargs, arguments.kw_defaults
            )
            if default is None
        )
        if required >= 2:
            return (
                f"__init__ takes {required} required arguments, but "
                "BaseException.__reduce__ replays only self.args"
            )
        return None

    def _check_public_leaks(self) -> None:
        """EXN003: the public surface must leak only ReproError."""
        for func, via in self._public_roots():
            escaped = self.escapes.get(func.qualname, frozenset())
            leaked = sorted(
                exc
                for exc in escaped
                if exc in self._classes_by_name
                and not self.hierarchy.is_repro_error(exc)
            )
            if leaked:
                label = ", ".join(leaked)
                self.emit(
                    func.module,
                    "EXN003",
                    f"public API {func.qualname} ({via}) can leak "
                    f"{label}, which does not derive ReproError: "
                    "callers honouring the documented `except "
                    "ReproError` contract will not catch it",
                    "derive the exception from ReproError (or wrap the "
                    "escape in a ReproError at the boundary), or pragma "
                    f"with `# {ALLOW_EXN_PRAGMA}`",
                    func.node,
                )

    def _public_roots(self) -> "List[Tuple[FunctionInfo, str]]":
        roots: "List[Tuple[FunctionInfo, str]]" = []
        seen: "Set[str]" = set()
        for module in self.modules:
            if module.is_package_init:
                for bound, dotted in sorted(module.imports.items()):
                    for func in self.resolve_dotted(dotted):
                        if func.qualname not in seen:
                            seen.add(func.qualname)
                            roots.append(
                                (func, f"re-exported by {module.modname}")
                            )
            for func in self.all_functions(module):
                for child in _SummaryBuilder._walk_shallow_body(func.node):
                    if (
                        isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Attribute)
                        and child.func.attr == "set_defaults"
                    ):
                        for keyword in child.keywords:
                            if keyword.arg == "func" and isinstance(
                                keyword.value, ast.Name
                            ):
                                handler = module.functions.get(
                                    keyword.value.id
                                )
                                if (
                                    handler is not None
                                    and handler.qualname not in seen
                                ):
                                    seen.add(handler.qualname)
                                    roots.append(
                                        (handler, "CLI entry point")
                                    )
        return roots

    # -- pragmas --------------------------------------------------------------

    def _stale_pragmas(self, module: ModuleInfo) -> None:
        for line in sorted(module.pragma_lines - module.used_pragma_lines):
            info = EXN_RULES["EXN099"]
            self.findings.append(
                Diagnostic(
                    code="EXN099",
                    severity=info.severity,
                    message=(
                        f"stale `# {ALLOW_EXN_PRAGMA}` pragma: it no "
                        "longer suppresses any diagnostic"
                    ),
                    hint="delete the pragma (the code it excused is gone)",
                    category=info.category,
                    source="code",
                    file=module.filename,
                    line=line,
                )
            )


def _builtin_names() -> "FrozenSet[str]":
    return frozenset(_builtin_exception_bases())


# ---------------------------------------------------------------------------
# Entry points (mirror repro.lint.parcheck / dimcheck / codelint).
# ---------------------------------------------------------------------------


def analyze_sources(
    sources: "Sequence[Tuple[str, str]]",
    allowlist: "Sequence[str]" = DEFAULT_ALLOWLIST,
) -> "List[Diagnostic]":
    """Analyze ``(filename, source)`` pairs as one project."""
    from .codelint import _is_allowlisted

    project = _ExnProject()
    for filename, source in sources:
        if _is_allowlisted(filename, allowlist):
            continue
        project.add_module(filename, source)
    findings = project.analyze()
    metrics = get_metrics()
    for finding in findings:
        metrics.inc(f"lint.diagnostics.{finding.severity.value}")
    return findings


def lint_source(
    source: str,
    filename: str = "<string>",
    allowlist: "Sequence[str]" = DEFAULT_ALLOWLIST,
) -> "List[Diagnostic]":
    """Analyze one Python source text as a single-file project."""
    return analyze_sources([(filename, source)], allowlist)


def lint_paths(
    paths: "Sequence[str]",
    allowlist: "Sequence[str]" = DEFAULT_ALLOWLIST,
    max_pragmas: Optional[int] = None,
) -> "List[Diagnostic]":
    """Analyze files and/or directory trees as one project."""
    from .codelint import _is_allowlisted, _python_files

    metrics = get_metrics()
    sources: "List[Tuple[str, str]]" = []
    for path in paths:
        for filename in _python_files(path):
            if _is_allowlisted(filename, allowlist):
                continue
            metrics.inc("lint.exncheck.files")
            with open(filename, encoding="utf-8") as handle:
                sources.append((filename, handle.read()))
    findings = analyze_sources(sources, allowlist)
    if max_pragmas is not None:
        pragmas = sum(
            sum(1 for line in source.splitlines() if ALLOW_EXN_PRAGMA in line)
            for _, source in sources
        )
        if pragmas > max_pragmas:
            info = EXN_RULES["EXN006"]
            findings.append(
                Diagnostic(
                    code="EXN006",
                    severity=info.severity,
                    message=(
                        f"{pragmas} `# {ALLOW_EXN_PRAGMA}` pragmas in the "
                        f"tree, over the budget of {max_pragmas}: the "
                        "escape hatch is becoming the norm"
                    ),
                    hint="fix the pragma'd sites (or raise the budget "
                    "deliberately)",
                    category=info.category,
                    source="code",
                )
            )
    return findings


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    """Entry point for ``python -m repro.lint.exncheck``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint.exncheck",
        description="interprocedural exception-flow analyzer",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="Python files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="human", help="output format"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings (EXN004/EXN005, stale pragmas) also fail",
    )
    parser.add_argument(
        "--max-pragmas",
        type=int,
        default=None,
        metavar="N",
        help=f"fail when more than N `# {ALLOW_EXN_PRAGMA}` pragmas exist",
    )
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths, max_pragmas=args.max_pragmas)
    print(render(findings, args.format))
    return exit_code(findings, strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
