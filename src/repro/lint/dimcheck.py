"""Dimensional dataflow analysis: a units typechecker for the pipeline.

Run as::

    python -m repro.lint.dimcheck src/repro

Everything the framework computes — utilization, recovery time, data
loss, cost (Keeton & Merchant section 3) — is arithmetic over quantities
in four physical dimensions: bytes, seconds, bytes/s and dollars.  The
code linter's ``UNI001``/``UNI002`` rules catch raw magnitude
*literals*, but they cannot see ``retention + capacity`` or a duration
passed where a rate is expected.  This module closes that gap with a
flow-sensitive abstract interpreter over the Python AST that infers the
:class:`~repro.units.Dimension` of every expression and reports
mismatches.

The lattice is seeded from three sources:

* the :data:`repro.units.DIMENSIONS` table — an expression multiplying
  by ``GB`` carries bytes, one multiplying by ``HOUR`` carries seconds
  (binary vs decimal size constants additionally carry a *convention*
  marker so ``GB + GB_DEC`` style mixing is flagged);
* parameter and return annotations using the ``Seconds``/``Bytes``/...
  aliases from :mod:`repro.units` (and well-known parameter names such
  as ``window`` or ``size_bytes``);
* a stub table for the core API surface (``Workload.avg_update_rate``
  is bytes/s, ``batch_update_rate(window)`` takes seconds and returns
  bytes/s, penalty *rates* are $/s while penalty *amounts* are $).

Dimensions propagate through assignments, arithmetic, calls and
returns: ``SIZE / TIME`` is ``RATE``, ``RATE * TIME`` is ``SIZE``,
``MONEY/TIME * TIME`` is ``MONEY`` — and ``SIZE + TIME`` is an error.
Plain numeric literals are *weakly* dimensionless (a scalar like
``4 * HOUR`` or ``duration + 5`` never trips the checker); only two
*strongly*-known, disagreeing dimensions are reported.  Unknown
dimensions propagate silently, so the checker is conservative: no
diagnostic without two independently-seeded facts that contradict.

Rules (sharing the :class:`~repro.lint.diagnostics.Diagnostic` model):

``DIM001`` (error)
    Dimension-mismatched arithmetic (``SIZE + TIME``), including
    binary/decimal convention mixing in additive expressions.
``DIM002`` (error)
    An argument or assigned value whose dimension disagrees with the
    stub table or an annotation.
``DIM003`` (error)
    A return value whose dimension disagrees with the declared (or
    stubbed) return dimension.
``DIM004`` (error)
    The ``# lint: allow-dim`` pragma budget is exceeded.
``DIM099`` (warning)
    A stale ``# lint: allow-dim`` pragma that suppresses nothing.

The pragma ``# lint: allow-dim`` on the flagged line suppresses
DIM001–DIM003 (use it only with a comment stating the dimensional
contract the checker cannot see); ``--max-pragmas`` budgets the total
so the escape hatch cannot quietly become the norm (CI pins it at 5).
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..obs import get_metrics
from ..units import (
    ANNOTATION_DIMENSIONS,
    DECIMAL_SIZE_CONSTANTS,
    DIMENSIONLESS,
    DIMENSIONS,
    FREQUENCY,
    MONEY,
    MONEY_RATE,
    RATE,
    SIZE,
    TIME,
    Dimension,
)
from .diagnostics import Diagnostic, Severity, exit_code
from .output import FORMATS, render
from .registry import RuleInfo

#: The dimension-rule table, merged into SARIF metadata and the
#: documented rule table by ``output.all_rule_infos``.
DIM_RULES: "Dict[str, RuleInfo]" = {
    info.code: info
    for info in (
        RuleInfo(
            "DIM001",
            Severity.ERROR,
            "dimensions",
            "Dimension-mismatched arithmetic (e.g. bytes + seconds).",
        ),
        RuleInfo(
            "DIM002",
            Severity.ERROR,
            "dimensions",
            "Argument or assigned value disagrees with the declared dimension.",
        ),
        RuleInfo(
            "DIM003",
            Severity.ERROR,
            "dimensions",
            "Return dimension disagrees with the declaration.",
        ),
        RuleInfo(
            "DIM004",
            Severity.ERROR,
            "dimensions",
            "allow-dim pragma budget exceeded.",
        ),
        RuleInfo(
            "DIM099",
            Severity.WARNING,
            "dimensions",
            "Stale allow-dim pragma that no longer suppresses anything.",
        ),
    )
}

ALLOW_DIM_PRAGMA = "lint: allow-dim"

#: Files the checker never applies to: the module that *defines* the
#: dimension vocabulary, and this analyzer itself.
DEFAULT_ALLOWLIST = ("repro/units.py", "repro/lint/dimcheck.py")

_DECIMAL_NAMES = frozenset(DECIMAL_SIZE_CONSTANTS)


# ---------------------------------------------------------------------------
# The abstract value.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DimValue:
    """The abstract dimension of one expression.

    ``dim is None`` is the lattice top ("unknown"); it propagates
    silently and never produces a diagnostic.  ``strong`` separates
    values traceable to a unit constant, annotation or stub (which may
    be flagged) from weakly-dimensionless literals like ``4`` (which
    combine freely with anything).  ``convention`` tracks whether a
    size was built from binary (``2**n``) or decimal (``10**n``)
    constants, so additive binary/decimal mixing can be reported even
    though both sides are dimensionally bytes.
    """

    dim: Optional[Dimension] = None
    strong: bool = False
    convention: Optional[str] = None

    @property
    def known(self) -> bool:
        return self.dim is not None


UNKNOWN = DimValue()
NUMBER = DimValue(dim=DIMENSIONLESS, strong=False)


def unit_value(name: str) -> DimValue:
    """The abstract value of the :mod:`repro.units` constant ``name``."""
    dim = DIMENSIONS[name]
    convention: Optional[str] = None
    if dim == SIZE:
        convention = "decimal" if name in _DECIMAL_NAMES else "binary"
    return DimValue(dim=dim, strong=True, convention=convention)


def _merge_convention(left: DimValue, right: DimValue) -> Optional[str]:
    if left.convention == right.convention:
        return left.convention
    if left.convention is None:
        return right.convention
    if right.convention is None:
        return left.convention
    return None


def _join_value(left: DimValue, right: DimValue) -> DimValue:
    """The join of two branches' values (agreement or unknown)."""
    if left == right:
        return left
    if left.dim is not None and left.dim == right.dim:
        return DimValue(
            dim=left.dim,
            strong=left.strong and right.strong,
            convention=_merge_convention(left, right),
        )
    return UNKNOWN


# ---------------------------------------------------------------------------
# Stub tables: the dimension vocabulary of the core API surface.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Signature:
    """Parameter dimensions (by name, in order, `self` excluded) and
    the return dimension of one callable; ``None`` entries are
    unchecked."""

    params: "Tuple[Tuple[str, Optional[Dimension]], ...]" = ()
    returns: Optional[Dimension] = None


#: Dimension of ``x.<name>`` attribute reads (properties included).
#: Names whose meaning varies across the codebase (``start``, ``end``,
#: ``offset`` are seconds in recovery timelines but bytes in traces)
#: are deliberately absent.
ATTRIBUTE_DIMS: "Dict[str, Dimension]" = {
    # sizes
    "data_capacity": SIZE,
    "max_capacity": SIZE,
    "object_size": SIZE,
    "io_size": SIZE,
    "recovery_size": SIZE,
    # rates
    "avg_access_rate": RATE,
    "avg_update_rate": RATE,
    "peak_update_rate": RATE,
    "avg_read_rate": RATE,
    "max_bandwidth": RATE,
    # event frequencies (occurrences/s, the risk layer's 1/s family)
    "occurrence_rate": FREQUENCY,
    "secondary_rate": FREQUENCY,
    "unit_rate": FREQUENCY,
    "total_rate": FREQUENCY,
    # per-year reporting figures are plain counts (rate x YEAR)
    "rate_per_year": DIMENSIONLESS,
    # durations
    "access_delay": TIME,
    "repair_time": TIME,
    "recovery_time": TIME,
    "data_loss": TIME,
    "recent_data_loss": TIME,
    "rto": TIME,
    "rpo": TIME,
    "duration": TIME,
    "newest_age": TIME,
    "oldest_age": TIME,
    "recovery_target_age": TIME,
    "burst_period": TIME,
    "diurnal_period": TIME,
    "availability_delay": TIME,
    # engine knobs (wall-clock seconds)
    "task_timeout": TIME,
    "retry_backoff": TIME,
    # money rates ($/s) vs money amounts ($)
    "unavailability_penalty_rate": MONEY_RATE,
    "loss_penalty_rate": MONEY_RATE,
    "outage_penalty": MONEY,
    "loss_penalty": MONEY,
    "total_cost": MONEY,
}

#: Stubs for ``x.<name>(...)`` method calls, keyed by method name.
METHOD_STUBS: "Dict[str, Signature]" = {
    # Workload / BatchUpdateCurve
    "batch_update_rate": Signature((("window", TIME),), RATE),
    "unique_bytes": Signature((("window", TIME),), SIZE),
    "update_fraction": Signature((("window", TIME),), DIMENSIONLESS),
    "full_coverage_window": Signature((), TIME),
    "rate": Signature((("window", TIME),), RATE),
    "total_bytes": Signature((), SIZE),
    "written_bytes": Signature((), SIZE),
    "duration": Signature((), TIME),
    # BusinessRequirements (penalty *rates* are $/s, amounts are $)
    "outage_penalty": Signature((("recovery_time", TIME),), MONEY),
    "loss_penalty": Signature((("data_loss", TIME),), MONEY),
    "total_penalty": Signature(
        (("recovery_time", TIME), ("data_loss", TIME)), MONEY
    ),
    "meets_rto": Signature((("recovery_time", TIME),), None),
    "meets_rpo": Signature((("data_loss", TIME),), None),
    "meets_objectives": Signature(
        (("recovery_time", TIME), ("data_loss", TIME)), None
    ),
    # Device / CostModel / Interconnect
    "bandwidth_demand": Signature((), RATE),
    "available_bandwidth": Signature((), RATE),
    "capacity_demand_logical": Signature((), SIZE),
    "capacity_demand_raw": Signature((), SIZE),
    "capacity_cost": Signature((("capacity_bytes", SIZE),), MONEY),
    "bandwidth_cost": Signature((("bandwidth_bps", RATE),), MONEY),
    "transfer_time": Signature((("size_bytes", SIZE),), TIME),
    # DataProtectionTechnique timeline queries
    "worst_lag": Signature((), TIME),
    "worst_spacing": Signature((), TIME),
    "retention_span": Signature((), TIME),
    "full_availability_delay": Signature((), TIME),
    "retention_window": Signature((), TIME),
    "recovery_size": Signature(
        (("workload", None), ("requested_bytes", SIZE)), SIZE
    ),
    # Risk layer (k-out-of-n redundancy, cascades)
    "effective_failure_rate": Signature((), FREQUENCY),
    "mttf": Signature((), TIME),
    "cascade_probability": Signature(
        (("recovery_time", TIME),), DIMENSIONLESS
    ),
}

#: Stubs for plain-name calls (the :mod:`repro.units` helpers).  The
#: parse helpers accept strings (unknown, unchecked) or numbers already
#: in base units — so a strong value of the *wrong* dimension is a bug.
FUNCTION_STUBS: "Dict[str, Signature]" = {
    "parse_size": Signature((("value", SIZE),), SIZE),
    "parse_rate": Signature((("value", RATE),), RATE),
    "parse_duration": Signature((("value", TIME),), TIME),
    "parse_event_rate": Signature((("value", FREQUENCY),), FREQUENCY),
    "format_size": Signature((("num_bytes", SIZE),), None),
    "format_rate": Signature((("bytes_per_sec", RATE),), None),
    "format_duration": Signature((("seconds", TIME),), None),
    "format_money": Signature((("dollars", MONEY),), None),
    "format_event_rate": Signature((("per_second", FREQUENCY),), None),
}

#: Well-known parameter names, used to seed unannotated parameters.
PARAM_NAME_DIMS: "Dict[str, Dimension]" = {
    "window": TIME,
    "duration": TIME,
    "seconds": TIME,
    "interval": TIME,
    "recovery_time": TIME,
    "data_loss": TIME,
    "num_bytes": SIZE,
    "size_bytes": SIZE,
    "capacity_bytes": SIZE,
    "requested_bytes": SIZE,
    "bytes_per_sec": RATE,
    "bandwidth_bps": RATE,
    "dollars": MONEY,
    "task_timeout": TIME,
    "retry_backoff": TIME,
    "backoff": TIME,
    "occurrence_rate": FREQUENCY,
    "unit_rate": FREQUENCY,
    "secondary_rate": FREQUENCY,
    "per_second": FREQUENCY,
    "repair_time": TIME,
    "horizon": TIME,
}

_PASSTHROUGH_BUILTINS = ("float", "int", "abs", "round")
_JOIN_BUILTINS = ("min", "max")
_MATH_PASSTHROUGH = ("ceil", "floor", "fabs", "fsum")


# ---------------------------------------------------------------------------
# The analyzer.
# ---------------------------------------------------------------------------

Env = Dict[str, DimValue]
FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class _FuncCtx:
    """Per-function analysis state: the declared return dimension."""

    name: str
    declared_return: Optional[Dimension] = None


class _FileAnalyzer:
    """One file's worth of DIM findings."""

    def __init__(self, filename: str, lines: "Sequence[str]") -> None:
        self.filename = filename
        self.lines = lines
        self.findings: "List[Diagnostic]" = []
        self.units_aliases: "Set[str]" = set()
        self.module_env: Env = {}
        self.functions: "Dict[str, Signature]" = {}
        self.methods: "Dict[str, Dict[str, Signature]]" = {}
        self.pragma_lines: "Set[int]" = {
            number
            for number, line in enumerate(lines, 1)
            if ALLOW_DIM_PRAGMA in line
        }
        self.used_pragma_lines: "Set[int]" = set()
        self._current_class: Optional[str] = None

    # -- diagnostics ---------------------------------------------------------

    def _suppressed(self, node: ast.AST) -> bool:
        first = getattr(node, "lineno", None)
        if first is None:
            return False
        last = getattr(node, "end_lineno", None) or first
        covered = self.pragma_lines.intersection(range(first, last + 1))
        if covered:
            self.used_pragma_lines.update(covered)
            return True
        return False

    def _emit(self, code: str, message: str, hint: str, node: ast.AST) -> None:
        if self._suppressed(node):
            return
        info = DIM_RULES[code]
        self.findings.append(
            Diagnostic(
                code=code,
                severity=info.severity,
                message=message,
                hint=hint,
                category=info.category,
                source="code",
                file=self.filename,
                line=getattr(node, "lineno", None),
                column=getattr(node, "col_offset", None),
            )
        )

    # -- seeding: imports, annotations, signatures ---------------------------

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.endswith("units"):
                    for alias in node.names:
                        bound = alias.asname or alias.name
                        if alias.name in DIMENSIONS:
                            self.module_env[bound] = unit_value(alias.name)
                else:
                    for alias in node.names:
                        if alias.name == "units":
                            self.units_aliases.add(alias.asname or "units")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith("units") and alias.asname:
                        self.units_aliases.add(alias.asname)

    def _annotation_dim(
        self, node: Optional[ast.expr]
    ) -> Optional[Dimension]:
        """The dimension an annotation declares, or None."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return ANNOTATION_DIMENSIONS.get(node.id)
        if isinstance(node, ast.Attribute):
            return ANNOTATION_DIMENSIONS.get(node.attr)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return ANNOTATION_DIMENSIONS.get(node.value)
        if isinstance(node, ast.Subscript):
            # Optional[Seconds] / Union[str, Seconds]: any named member.
            for child in ast.walk(node.slice):
                dim = None
                if isinstance(child, (ast.Name, ast.Attribute)):
                    dim = self._annotation_dim(child)
                if dim is not None:
                    return dim
        return None

    def _signature_of(self, node: FuncNode, method: bool) -> Signature:
        arguments = node.args
        positional = list(arguments.posonlyargs) + list(arguments.args)
        if method and positional:
            positional = positional[1:]
        params: "List[Tuple[str, Optional[Dimension]]]" = []
        for arg in positional + list(arguments.kwonlyargs):
            dim = self._annotation_dim(arg.annotation)
            if dim is None:
                dim = PARAM_NAME_DIMS.get(arg.arg)
            params.append((arg.arg, dim))
        return Signature(tuple(params), self._annotation_dim(node.returns))

    def _collect_signatures(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, _FUNC_NODES):
                self.functions[node.name] = self._signature_of(node, False)
            elif isinstance(node, ast.ClassDef):
                table: "Dict[str, Signature]" = {}
                for member in node.body:
                    if isinstance(member, _FUNC_NODES):
                        table[member.name] = self._signature_of(member, True)
                self.methods[node.name] = table

    # -- the run -------------------------------------------------------------

    def run(self, tree: ast.Module) -> None:
        self._collect_imports(tree)
        self._collect_signatures(tree)
        for node in tree.body:
            if not isinstance(node, (*_FUNC_NODES, ast.ClassDef)):
                self._exec(node, self.module_env, None)
        for node in tree.body:
            if isinstance(node, _FUNC_NODES):
                self._analyze_function(node, None)
            elif isinstance(node, ast.ClassDef):
                self._analyze_class(node)
        for line in sorted(self.pragma_lines - self.used_pragma_lines):
            info = DIM_RULES["DIM099"]
            self.findings.append(
                Diagnostic(
                    code="DIM099",
                    severity=info.severity,
                    message=(
                        f"stale `# {ALLOW_DIM_PRAGMA}` pragma: it no longer "
                        "suppresses any diagnostic"
                    ),
                    hint="delete the pragma (the code it excused is gone)",
                    category=info.category,
                    source="code",
                    file=self.filename,
                    line=line,
                )
            )

    def _is_property(self, node: FuncNode) -> bool:
        for decorator in node.decorator_list:
            name = ""
            if isinstance(decorator, ast.Name):
                name = decorator.id
            elif isinstance(decorator, ast.Attribute):
                name = decorator.attr
            if name in ("property", "cached_property"):
                return True
        return False

    def _analyze_class(self, node: ast.ClassDef) -> None:
        env: Env = dict(self.module_env)
        for member in node.body:
            if isinstance(member, _FUNC_NODES):
                self._analyze_function(member, node.name)
            elif isinstance(member, ast.ClassDef):
                self._analyze_class(member)
            elif isinstance(member, (ast.Assign, ast.AnnAssign)):
                # dataclass field defaults are attribute declarations
                self._exec(member, env, None)
                targets = (
                    member.targets
                    if isinstance(member, ast.Assign)
                    else [member.target]
                )
                value = member.value
                if value is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        self._check_declared(
                            target.id,
                            ATTRIBUTE_DIMS.get(target.id),
                            self._infer(value, env),
                            member,
                        )

    def _analyze_function(
        self, node: FuncNode, class_name: Optional[str]
    ) -> None:
        declared = self._annotation_dim(node.returns)
        if declared is None and class_name is not None:
            if self._is_property(node) and node.name in ATTRIBUTE_DIMS:
                declared = ATTRIBUTE_DIMS[node.name]
            elif node.name in METHOD_STUBS:
                declared = METHOD_STUBS[node.name].returns
        env: Env = dict(self.module_env)
        signature = self._signature_of(node, class_name is not None)
        for name, dim in signature.params:
            env[name] = DimValue(dim, strong=True) if dim else UNKNOWN
        for default in node.args.defaults + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self._infer(default, env)
        previous_class = self._current_class
        self._current_class = class_name
        try:
            ctx = _FuncCtx(name=node.name, declared_return=declared)
            self._exec_block(node.body, env, ctx)
        finally:
            self._current_class = previous_class

    # -- statements ----------------------------------------------------------

    def _exec_block(
        self, body: "Sequence[ast.stmt]", env: Env, ctx: Optional[_FuncCtx]
    ) -> None:
        for stmt in body:
            self._exec(stmt, env, ctx)

    def _exec(self, stmt: ast.stmt, env: Env, ctx: Optional[_FuncCtx]) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._infer(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, env, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            declared = self._annotation_dim(stmt.annotation)
            value = (
                self._infer(stmt.value, env)
                if stmt.value is not None
                else UNKNOWN
            )
            if isinstance(stmt.target, ast.Name):
                if declared is not None:
                    self._check_declared(stmt.target.id, declared, value, stmt)
                    env[stmt.target.id] = DimValue(declared, strong=True)
                else:
                    env[stmt.target.id] = value
            elif isinstance(stmt.target, ast.Attribute):
                self._assign(stmt.target, value, env, stmt)
        elif isinstance(stmt, ast.AugAssign):
            value = self._infer(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, UNKNOWN)
                env[stmt.target.id] = self._combine(
                    stmt, stmt.op, current, value
                )
            elif isinstance(stmt.target, ast.Attribute):
                current = self._infer(stmt.target, env)
                self._combine(stmt, stmt.op, current, value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._infer(stmt.value, env)
                if (
                    ctx is not None
                    and ctx.declared_return is not None
                    and value.strong
                    and value.dim is not None
                    and value.dim != ctx.declared_return
                ):
                    self._emit(
                        "DIM003",
                        f"{ctx.name}() is declared to return "
                        f"{ctx.declared_return.symbol()} but this return "
                        f"yields {value.dim.symbol()}",
                        "fix the expression, the declaration, or pragma "
                        f"with `# {ALLOW_DIM_PRAGMA}` stating the contract",
                        stmt,
                    )
        elif isinstance(stmt, ast.If):
            self._infer(stmt.test, env)
            body_env = dict(env)
            else_env = dict(env)
            self._exec_block(stmt.body, body_env, ctx)
            self._exec_block(stmt.orelse, else_env, ctx)
            env.clear()
            env.update(self._join_env(body_env, else_env))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._infer(stmt.iter, env)
            body_env = dict(env)
            self._clear_target(stmt.target, body_env)
            self._exec_block(stmt.body, body_env, ctx)
            self._exec_block(stmt.orelse, body_env, ctx)
            joined = self._join_env(env, body_env)
            env.clear()
            env.update(joined)
        elif isinstance(stmt, ast.While):
            self._infer(stmt.test, env)
            body_env = dict(env)
            self._exec_block(stmt.body, body_env, ctx)
            self._exec_block(stmt.orelse, body_env, ctx)
            env.update(self._join_env(env, body_env))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._infer(item.context_expr, env)
                if item.optional_vars is not None:
                    self._clear_target(item.optional_vars, env)
            self._exec_block(stmt.body, env, ctx)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env, ctx)
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._exec_block(handler.body, handler_env, ctx)
                env.update(self._join_env(env, handler_env))
            self._exec_block(stmt.orelse, env, ctx)
            self._exec_block(stmt.finalbody, env, ctx)
        elif isinstance(stmt, ast.Expr):
            self._infer(stmt.value, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._infer(stmt.exc, env)
        elif isinstance(stmt, ast.Assert):
            self._infer(stmt.test, env)
            if stmt.msg is not None:
                self._infer(stmt.msg, env)
        elif isinstance(stmt, _FUNC_NODES):
            self._analyze_function(stmt, None)
        elif isinstance(stmt, ast.ClassDef):
            self._analyze_class(stmt)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)

    def _assign(
        self, target: ast.expr, value: DimValue, env: Env, stmt: ast.stmt
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Attribute):
            self._check_declared(
                target.attr, ATTRIBUTE_DIMS.get(target.attr), value, stmt
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, UNKNOWN, env, stmt)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, UNKNOWN, env, stmt)

    def _check_declared(
        self,
        name: str,
        declared: Optional[Dimension],
        value: DimValue,
        node: ast.AST,
    ) -> None:
        """DIM002 when a strongly-known value contradicts a declaration."""
        if (
            declared is not None
            and value.strong
            and value.dim is not None
            and value.dim != declared
        ):
            self._emit(
                "DIM002",
                f"{name!r} is declared {declared.symbol()} but the value "
                f"carries {value.dim.symbol()}",
                "fix the expression (or the declaration), or pragma with "
                f"`# {ALLOW_DIM_PRAGMA}` stating the contract",
                node,
            )

    def _clear_target(self, target: ast.expr, env: Env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = UNKNOWN
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._clear_target(element, env)
        elif isinstance(target, ast.Starred):
            self._clear_target(target.value, env)

    @staticmethod
    def _join_env(left: Env, right: Env) -> Env:
        joined: Env = {}
        # sorted: the union is a set, and the joined env's key order
        # must not depend on hash seeding (parcheck PAR003).
        for key in sorted(set(left) | set(right)):
            joined[key] = _join_value(
                left.get(key, UNKNOWN), right.get(key, UNKNOWN)
            )
        return joined

    # -- expressions ---------------------------------------------------------

    def _infer(self, node: ast.expr, env: Env) -> DimValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return UNKNOWN
            if isinstance(node.value, (int, float)):
                return NUMBER
            return UNKNOWN
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in self.units_aliases
            ):
                if node.attr in DIMENSIONS:
                    return unit_value(node.attr)
                return UNKNOWN
            self._infer(node.value, env)
            dim = ATTRIBUTE_DIMS.get(node.attr)
            if dim is not None:
                return DimValue(dim, strong=True)
            return UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self._infer(node.left, env)
            right = self._infer(node.right, env)
            return self._combine(node, node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            operand = self._infer(node.operand, env)
            if isinstance(node.op, (ast.UAdd, ast.USub)):
                return operand
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.IfExp):
            self._infer(node.test, env)
            return _join_value(
                self._infer(node.body, env), self._infer(node.orelse, env)
            )
        if isinstance(node, ast.BoolOp):
            value = self._infer(node.values[0], env)
            for operand in node.values[1:]:
                value = _join_value(value, self._infer(operand, env))
            return value
        if isinstance(node, ast.Compare):
            self._infer(node.left, env)
            for comparator in node.comparators:
                self._infer(comparator, env)
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self._infer(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._infer(element, env)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._infer(key, env)
            for value_node in node.values:
                self._infer(value_node, env)
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            self._infer(node.value, env)
            if isinstance(node.slice, ast.expr):
                self._infer(node.slice, env)
            return UNKNOWN
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            comp_env = dict(env)
            for generator in node.generators:
                self._infer(generator.iter, comp_env)
                self._clear_target(generator.target, comp_env)
                for condition in generator.ifs:
                    self._infer(condition, comp_env)
            if isinstance(node, ast.DictComp):
                self._infer(node.key, comp_env)
                self._infer(node.value, comp_env)
            else:
                self._infer(node.elt, comp_env)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            self._infer(node.value, env)
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for value_node in node.values:
                if isinstance(value_node, ast.FormattedValue):
                    self._infer(value_node.value, env)
            return UNKNOWN
        if isinstance(node, ast.Await):
            return self._infer(node.value, env)
        return UNKNOWN

    # -- arithmetic ----------------------------------------------------------

    def _combine(
        self, node: ast.AST, op: ast.operator, left: DimValue, right: DimValue
    ) -> DimValue:
        if isinstance(op, (ast.Add, ast.Sub)):
            return self._additive(node, op, left, right)
        if isinstance(op, ast.Mult):
            if left.known and right.known:
                assert left.dim is not None and right.dim is not None
                return DimValue(
                    left.dim * right.dim,
                    strong=left.strong or right.strong,
                    convention=_merge_convention(left, right),
                )
            return UNKNOWN
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left.known and right.known:
                assert left.dim is not None and right.dim is not None
                return DimValue(
                    left.dim / right.dim,
                    strong=left.strong or right.strong,
                    convention=_merge_convention(left, right),
                )
            return UNKNOWN
        if isinstance(op, ast.Mod):
            if left.known and right.known and left.dim == right.dim:
                return DimValue(
                    left.dim,
                    strong=left.strong and right.strong,
                    convention=_merge_convention(left, right),
                )
            return UNKNOWN
        if isinstance(op, ast.Pow):
            exponent = None
            if isinstance(node, (ast.BinOp,)) and isinstance(
                node.right, ast.Constant
            ):
                raw = node.right.value
                if isinstance(raw, int) and not isinstance(raw, bool):
                    exponent = raw
            if left.known:
                assert left.dim is not None
                if left.dim.is_dimensionless:
                    return left
                if exponent is not None:
                    return DimValue(left.dim ** exponent, strong=left.strong)
            return UNKNOWN
        return UNKNOWN

    def _additive(
        self, node: ast.AST, op: ast.operator, left: DimValue, right: DimValue
    ) -> DimValue:
        verb = "add" if isinstance(op, ast.Add) else "subtract"
        if left.known and right.known:
            assert left.dim is not None and right.dim is not None
            if left.strong and right.strong:
                if left.dim != right.dim:
                    self._emit(
                        "DIM001",
                        f"cannot {verb} {right.dim.symbol()} "
                        f"{'to' if verb == 'add' else 'from'} "
                        f"{left.dim.symbol()}",
                        "convert one operand so both sides share a "
                        f"dimension, or pragma with `# {ALLOW_DIM_PRAGMA}` "
                        "stating the contract",
                        node,
                    )
                    return UNKNOWN
                if (
                    left.convention is not None
                    and right.convention is not None
                    and left.convention != right.convention
                ):
                    self._emit(
                        "DIM001",
                        f"{verb}s quantities built from {left.convention} "
                        f"and {right.convention} size constants (silent "
                        "GB-vs-GiB class slip)",
                        "pick one prefix family (binary 2**n vs decimal "
                        "10**n) for both operands",
                        node,
                    )
                    return DimValue(left.dim, strong=True)
                return DimValue(
                    left.dim,
                    strong=True,
                    convention=_merge_convention(left, right),
                )
            # one side weakly dimensionless: treat it as a magnitude in
            # the strong side's dimension
            if left.strong:
                return left
            if right.strong:
                return right
            if left.dim == right.dim:
                return left
            return UNKNOWN
        if left.known and left.strong:
            return left
        if right.known and right.strong:
            return right
        return UNKNOWN

    # -- calls ---------------------------------------------------------------

    def _call(self, node: ast.Call, env: Env) -> DimValue:
        positional = [self._infer(arg, env) for arg in node.args]
        keywords = [
            (keyword.arg, self._infer(keyword.value, env))
            for keyword in node.keywords
        ]
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in _PASSTHROUGH_BUILTINS and positional:
                return positional[0]
            if name in _JOIN_BUILTINS and positional:
                value = positional[0]
                for other in positional[1:]:
                    value = _join_value(value, other)
                return value
            signature = self.functions.get(name) or FUNCTION_STUBS.get(name)
            if signature is not None:
                self._check_call(name, signature, node, positional, keywords)
                if signature.returns is not None:
                    return DimValue(signature.returns, strong=True)
                return UNKNOWN
            self._check_keyword_attrs(node, keywords)
            return UNKNOWN
        if isinstance(func, ast.Attribute):
            attr = func.attr
            signature = None
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in self.units_aliases
            ):
                signature = FUNCTION_STUBS.get(attr)
            elif (
                isinstance(func.value, ast.Name)
                and func.value.id == "math"
                and attr in _MATH_PASSTHROUGH
            ):
                return positional[0] if positional else UNKNOWN
            else:
                self._infer(func.value, env)
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id in ("self", "cls")
                    and self._current_class is not None
                ):
                    signature = self.methods.get(
                        self._current_class, {}
                    ).get(attr)
                if signature is None:
                    signature = METHOD_STUBS.get(attr)
            if signature is not None:
                self._check_call(attr, signature, node, positional, keywords)
                if signature.returns is not None:
                    return DimValue(signature.returns, strong=True)
                return UNKNOWN
            self._check_keyword_attrs(node, keywords)
            return UNKNOWN
        self._infer(func, env)
        self._check_keyword_attrs(node, keywords)
        return UNKNOWN

    def _check_call(
        self,
        name: str,
        signature: Signature,
        node: ast.Call,
        positional: "Sequence[DimValue]",
        keywords: "Sequence[Tuple[Optional[str], DimValue]]",
    ) -> None:
        by_name = dict(signature.params)
        for (param, declared), value in zip(signature.params, positional):
            self._check_argument(name, param, declared, value, node)
        for keyword, value in keywords:
            if keyword is not None and keyword in by_name:
                self._check_argument(
                    name, keyword, by_name[keyword], value, node
                )

    def _check_argument(
        self,
        func_name: str,
        param: str,
        declared: Optional[Dimension],
        value: DimValue,
        node: ast.AST,
    ) -> None:
        if (
            declared is not None
            and value.strong
            and value.dim is not None
            and value.dim != declared
        ):
            self._emit(
                "DIM002",
                f"argument {param!r} of {func_name}() expects "
                f"{declared.symbol()} but the value carries "
                f"{value.dim.symbol()}",
                "pass a quantity of the declared dimension, or pragma "
                f"with `# {ALLOW_DIM_PRAGMA}` stating the contract",
                node,
            )

    def _check_keyword_attrs(
        self,
        node: ast.Call,
        keywords: "Sequence[Tuple[Optional[str], DimValue]]",
    ) -> None:
        """Constructor keywords named like dimension-bearing attributes
        (``Workload(avg_update_rate=...)``) are checked against the
        attribute stub table."""
        for keyword, value in keywords:
            if keyword is None:
                continue
            self._check_declared(
                keyword, ATTRIBUTE_DIMS.get(keyword), value, node
            )


# ---------------------------------------------------------------------------
# Entry points (mirror repro.lint.codelint).
# ---------------------------------------------------------------------------


def lint_source(
    source: str,
    filename: str = "<string>",
    allowlist: "Sequence[str]" = DEFAULT_ALLOWLIST,
) -> "List[Diagnostic]":
    """Dimension-check one Python source text."""
    from .codelint import _is_allowlisted

    if _is_allowlisted(filename, allowlist):
        return []
    tree = ast.parse(source, filename=filename)
    analyzer = _FileAnalyzer(filename, source.splitlines())
    analyzer.run(tree)
    metrics = get_metrics()
    for finding in analyzer.findings:
        metrics.inc(f"lint.diagnostics.{finding.severity.value}")
    return analyzer.findings


def lint_paths(
    paths: "Sequence[str]",
    allowlist: "Sequence[str]" = DEFAULT_ALLOWLIST,
    max_pragmas: Optional[int] = None,
) -> "List[Diagnostic]":
    """Dimension-check files and/or directory trees of Python source."""
    from .codelint import _python_files, count_pragmas

    metrics = get_metrics()
    findings: "List[Diagnostic]" = []
    for path in paths:
        for filename in _python_files(path):
            metrics.inc("lint.dimcheck.files")
            with open(filename, encoding="utf-8") as handle:
                source = handle.read()
            findings.extend(lint_source(source, filename, allowlist))
    if max_pragmas is not None:
        pragmas = count_pragmas(paths, ALLOW_DIM_PRAGMA)
        if pragmas > max_pragmas:
            info = DIM_RULES["DIM004"]
            findings.append(
                Diagnostic(
                    code="DIM004",
                    severity=info.severity,
                    message=(
                        f"{pragmas} `# {ALLOW_DIM_PRAGMA}` pragmas in the "
                        f"tree, over the budget of {max_pragmas}: the "
                        "escape hatch is becoming the norm"
                    ),
                    hint="fix the pragma'd expressions (or raise the "
                    "budget deliberately)",
                    category=info.category,
                    source="code",
                )
            )
    return findings


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    """Entry point for ``python -m repro.lint.dimcheck``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint.dimcheck",
        description="dimensional dataflow checker (bytes/seconds/$)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="Python files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="human", help="output format"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings (stale pragmas) also fail",
    )
    parser.add_argument(
        "--max-pragmas",
        type=int,
        default=None,
        metavar="N",
        help=f"fail when more than N `# {ALLOW_DIM_PRAGMA}` pragmas exist",
    )
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths, max_pragmas=args.max_pragmas)
    print(render(findings, args.format))
    return exit_code(findings, strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
