"""The umbrella linter: every analyzer, one pass, one exit code.

Run as::

    python -m repro.lint.allcheck examples/specs/*.json src/ --strict

or via the CLI as ``repro lint all [SPEC...] [PATHS...]``.  Targets
ending in ``.json`` are linted as design specs (the ``DEP###`` rules
via :mod:`repro.lint.engine`); every other target is treated as a
Python file or tree and run through all four code analyzers —
:mod:`repro.lint.codelint` (``UNI``/``EXC``),
:mod:`repro.lint.dimcheck` (``DIM``), :mod:`repro.lint.parcheck`
(``PAR``) and :mod:`repro.lint.exncheck` (``EXN``) — as one merged
report.  CI collapses its lint invocations into this single pass: one
SARIF/JSON document, one exit code.

``--max-pragmas N`` applies the budget to each code analyzer's own
pragma kind (``allow-raw-unit``, ``allow-dim``, ``allow-par``,
``allow-exn``) individually.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from .diagnostics import Diagnostic, exit_code
from .output import FORMATS, render


def split_targets(
    targets: "Sequence[str]",
) -> "Tuple[List[str], List[str]]":
    """``(specs, paths)``: ``.json`` targets are design specs, the
    rest are Python files/trees."""
    specs = [target for target in targets if target.endswith(".json")]
    paths = [target for target in targets if not target.endswith(".json")]
    return specs, paths


def lint_targets(
    specs: "Sequence[str]",
    paths: "Sequence[str]",
    max_pragmas: Optional[int] = None,
) -> "List[Diagnostic]":
    """Run every applicable analyzer over the targets, merged."""
    findings: "List[Diagnostic]" = []
    if specs:
        from .engine import lint_files

        findings.extend(lint_files(list(specs)))
    if paths:
        from . import codelint, dimcheck, exncheck, parcheck

        findings.extend(codelint.lint_paths(paths, max_pragmas=max_pragmas))
        findings.extend(dimcheck.lint_paths(paths, max_pragmas=max_pragmas))
        findings.extend(parcheck.lint_paths(paths, max_pragmas=max_pragmas))
        findings.extend(exncheck.lint_paths(paths, max_pragmas=max_pragmas))
    return findings


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    """Entry point for ``python -m repro.lint.allcheck``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint.allcheck",
        description="run design lint + codelint + dimcheck + parcheck "
        "+ exncheck as one pass",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["src/repro"],
        help="JSON spec files and/or Python files/trees "
        "(default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="human", help="output format"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings also fail",
    )
    parser.add_argument(
        "--max-pragmas",
        type=int,
        default=None,
        metavar="N",
        help="per-analyzer pragma budget (allow-raw-unit / allow-dim / "
        "allow-par / allow-exn each get N)",
    )
    args = parser.parse_args(argv)
    specs, paths = split_targets(args.targets)
    findings = lint_targets(specs, paths, max_pragmas=args.max_pragmas)
    print(render(findings, args.format))
    return exit_code(findings, strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
