"""Units-discipline and exception-hygiene AST checker for the codebase.

Run as::

    python -m repro.lint.codelint          # checks src/ examples/ benchmarks/
    python -m repro.lint.codelint src/     # or an explicit path list

Three rules, sharing the :class:`~repro.lint.diagnostics.Diagnostic`
model with the design linter:

``UNI001`` (error)
    A raw *time* magnitude literal (3600, 86400, 604800, 31536000)
    outside :mod:`repro.units`.  The codebase's whole defence against
    the paper's $/hour-vs-$/s and GB-vs-GiB class of slip is that
    magnitudes are spelled once, in ``units.py``; ``4 * 3600`` in a
    workload preset reintroduces the ambiguity the constants removed.

``UNI002`` (error)
    A raw *byte* magnitude literal (1024, 2**20 ... 2**50 binary,
    10**3 ... 10**12 decimal ``BinOp`` powers) outside ``units.py``.

``EXC001`` (error)
    A broad exception handler — bare ``except:``, ``except Exception``
    or ``except BaseException`` — outside a designated boundary.  Broad
    handlers swallow genuine bugs (a broken ``cycle()`` used to skip
    validation checks silently, see ``core/validate.py`` history).

Both UNI rules honour the pragma ``# lint: allow-raw-unit`` on the
flagged line; EXC001 honours ``# lint: allow-broad-except`` on the
``except`` line (use it only on deliberate boundaries, with a comment
stating the contract).  ``--max-pragmas`` budgets the total number of
allow-raw-unit pragmas so the escape hatch cannot quietly become the
norm (CI pins it at 5).
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Dict, Iterator, List, Optional, Sequence

from ..obs import get_metrics
from .diagnostics import Diagnostic, Severity, exit_code
from .output import FORMATS, render
from .registry import RuleInfo

#: The code-lint rule table (not in the design registry: these rules
#: run over Python source, not RuleContexts).  ``output.all_rule_infos``
#: merges this into the SARIF metadata and the documented rule table.
CODE_RULES: "Dict[str, RuleInfo]" = {
    info.code: info
    for info in (
        RuleInfo(
            "UNI001",
            Severity.ERROR,
            "units",
            "Raw time-magnitude literal outside repro.units.",
        ),
        RuleInfo(
            "UNI002",
            Severity.ERROR,
            "units",
            "Raw byte-magnitude literal or power outside repro.units.",
        ),
        RuleInfo(
            "UNI003",
            Severity.ERROR,
            "units",
            "allow-raw-unit pragma budget exceeded.",
        ),
        RuleInfo(
            "EXC001",
            Severity.ERROR,
            "exceptions",
            "Broad exception handler outside a designated boundary.",
        ),
    )
}

RAW_UNIT_PRAGMA = "lint: allow-raw-unit"
BROAD_EXCEPT_PRAGMA = "lint: allow-broad-except"

#: The exception-flow family pragma (exncheck's ``ALLOW_EXN_PRAGMA``):
#: a site sanctioned for exception-flow analysis is sanctioned for the
#: syntactic broad-except rule too, so one comment covers the family.
EXN_FAMILY_PRAGMA = "lint: allow-exn"

#: Files the UNI rules never apply to: the module that *defines* the
#: magnitudes, and this checker (which must name them to detect them).
DEFAULT_ALLOWLIST = ("repro/units.py", "repro/lint/codelint.py")

#: The trees a bare ``python -m repro.lint.codelint`` checks.  Examples
#: and benchmarks import :mod:`repro.units` and carry the same raw-
#: magnitude risk as the library, so they are checked by default too.
DEFAULT_PATHS = ("src/", "examples/", "benchmarks/")

#: Time magnitudes in seconds -> the repro.units constant to use.
TIME_LITERALS: "Dict[float, str]" = {
    3600.0: "HOUR",
    86400.0: "DAY",
    604800.0: "WEEK",
    31536000.0: "YEAR",
}

#: Byte magnitudes -> the repro.units constant to use.
BYTE_LITERALS: "Dict[float, str]" = {
    float(2 ** 10): "KB",
    float(2 ** 20): "MB",
    float(2 ** 30): "GB",
    float(2 ** 40): "TB",
    float(2 ** 50): "PB",
}

#: ``base ** exponent`` byte powers -> the constant to use.
POWER_LITERALS: "Dict[tuple, str]" = {
    (2.0, 10.0): "KB",
    (2.0, 20.0): "MB",
    (2.0, 30.0): "GB",
    (2.0, 40.0): "TB",
    (2.0, 50.0): "PB",
    (10.0, 3.0): "KB_DEC",
    (10.0, 6.0): "MB_DEC",
    (10.0, 9.0): "GB_DEC",
    (10.0, 12.0): "TB_DEC",
}

_BROAD_NAMES = ("Exception", "BaseException")


def _numeric(node: ast.AST) -> Optional[float]:
    """The float value of a non-bool numeric Constant, else None."""
    if not isinstance(node, ast.Constant):
        return None
    value = node.value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _is_allowlisted(filename: str, allowlist: "Sequence[str]") -> bool:
    normalized = filename.replace(os.sep, "/")
    return any(normalized.endswith(suffix) for suffix in allowlist)


def _has_pragma(lines: "Sequence[str]", lineno: int, pragma: str) -> bool:
    if 1 <= lineno <= len(lines):
        return pragma in lines[lineno - 1]
    return False


def _broad_handler_name(handler: ast.ExceptHandler) -> Optional[str]:
    """The broad class a handler catches, or None for a narrow one."""
    if handler.type is None:
        return "everything (bare except)"
    nodes: "List[ast.expr]" = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in _BROAD_NAMES:
            return node.id
        # The dotted spelling (`except builtins.BaseException:`) is the
        # same handler wearing a costume.
        if isinstance(node, ast.Attribute) and node.attr in _BROAD_NAMES:
            return node.attr
    return None


class _Checker(ast.NodeVisitor):
    """One file's worth of UNI/EXC findings."""

    def __init__(self, filename: str, lines: "Sequence[str]") -> None:
        self.filename = filename
        self.lines = lines
        self.findings: "List[Diagnostic]" = []

    def _emit(
        self, code: str, message: str, hint: str, node: ast.AST
    ) -> None:
        info = CODE_RULES[code]
        self.findings.append(
            Diagnostic(
                code=code,
                severity=info.severity,
                message=message,
                hint=hint,
                category=info.category,
                source="code",
                file=self.filename,
                line=getattr(node, "lineno", None),
                column=getattr(node, "col_offset", None),
            )
        )

    # -- UNI001/UNI002: raw magnitudes ---------------------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        value = _numeric(node)
        if value is None:
            return
        if _has_pragma(self.lines, node.lineno, RAW_UNIT_PRAGMA):
            return
        if value in TIME_LITERALS:
            constant = TIME_LITERALS[value]
            self._emit(
                "UNI001",
                f"raw time magnitude {node.value!r} (that's "
                f"repro.units.{constant})",
                f"use units.{constant}, or pragma the line with "
                f"`# {RAW_UNIT_PRAGMA}`",
                node,
            )
        elif value in BYTE_LITERALS:
            constant = BYTE_LITERALS[value]
            self._emit(
                "UNI002",
                f"raw byte magnitude {node.value!r} (that's "
                f"repro.units.{constant})",
                f"use units.{constant}, or pragma the line with "
                f"`# {RAW_UNIT_PRAGMA}`",
                node,
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Pow):
            base = _numeric(node.left)
            exponent = _numeric(node.right)
            if (
                base is not None
                and exponent is not None
                and (base, exponent) in POWER_LITERALS
                and not _has_pragma(self.lines, node.lineno, RAW_UNIT_PRAGMA)
            ):
                constant = POWER_LITERALS[(base, exponent)]
                self._emit(
                    "UNI002",
                    f"raw byte power {int(base)}**{int(exponent)} "
                    f"(that's repro.units.{constant})",
                    f"use units.{constant}, or pragma the line with "
                    f"`# {RAW_UNIT_PRAGMA}`",
                    node,
                )
                return  # the operands are part of the flagged power
        self.generic_visit(node)

    # -- EXC001: broad handlers ----------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = _broad_handler_name(node)
        if (
            broad is not None
            and not _has_pragma(self.lines, node.lineno, BROAD_EXCEPT_PRAGMA)
            and not _has_pragma(self.lines, node.lineno, EXN_FAMILY_PRAGMA)
        ):
            self._emit(
                "EXC001",
                f"broad exception handler catches {broad}: genuine bugs "
                "are swallowed with the expected failures",
                "narrow to the exceptions the contract names, or mark a "
                f"deliberate boundary with `# {BROAD_EXCEPT_PRAGMA}` "
                "plus a comment stating the contract",
                node,
            )
        self.generic_visit(node)


def lint_source(
    source: str,
    filename: str = "<string>",
    allowlist: "Sequence[str]" = DEFAULT_ALLOWLIST,
) -> "List[Diagnostic]":
    """Lint one Python source text."""
    if _is_allowlisted(filename, allowlist):
        return []
    tree = ast.parse(source, filename=filename)
    checker = _Checker(filename, source.splitlines())
    checker.visit(tree)
    metrics = get_metrics()
    for finding in checker.findings:
        metrics.inc(f"lint.diagnostics.{finding.severity.value}")
    return checker.findings


def _python_files(path: str) -> "Iterator[str]":
    if os.path.isfile(path):
        yield path
        return
    for root, dirs, files in os.walk(path):
        dirs[:] = sorted(d for d in dirs if d != "__pycache__")
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def count_pragmas(
    paths: "Sequence[str]", pragma: str = RAW_UNIT_PRAGMA
) -> int:
    """Occurrences of a pragma across the given files/trees."""
    count = 0
    for path in paths:
        for filename in _python_files(path):
            with open(filename, encoding="utf-8") as handle:
                count += sum(1 for line in handle if pragma in line)
    return count


def lint_paths(
    paths: "Sequence[str]",
    allowlist: "Sequence[str]" = DEFAULT_ALLOWLIST,
    max_pragmas: Optional[int] = None,
) -> "List[Diagnostic]":
    """Lint files and/or directory trees of Python source."""
    metrics = get_metrics()
    findings: "List[Diagnostic]" = []
    for path in paths:
        for filename in _python_files(path):
            metrics.inc("lint.codelint.files")
            with open(filename, encoding="utf-8") as handle:
                source = handle.read()
            findings.extend(lint_source(source, filename, allowlist))
    if max_pragmas is not None:
        pragmas = count_pragmas(paths)
        if pragmas > max_pragmas:
            info = CODE_RULES["UNI003"]
            findings.append(
                Diagnostic(
                    code="UNI003",
                    severity=info.severity,
                    message=(
                        f"{pragmas} `# {RAW_UNIT_PRAGMA}` pragmas in the "
                        f"tree, over the budget of {max_pragmas}: the "
                        "escape hatch is becoming the norm"
                    ),
                    hint="convert pragma'd literals to repro.units "
                    "constants (or raise the budget deliberately)",
                    category=info.category,
                    source="code",
                )
            )
    return findings


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    """Entry point for ``python -m repro.lint.codelint``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint.codelint",
        description="units-discipline and exception-hygiene checker",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="Python files or directories to check "
        f"(default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="human", help="output format"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings also fail (symmetric with `repro lint code`; "
        "the UNI/EXC rules are all errors today)",
    )
    parser.add_argument(
        "--max-pragmas",
        type=int,
        default=None,
        metavar="N",
        help=f"fail when more than N `# {RAW_UNIT_PRAGMA}` pragmas exist",
    )
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths, max_pragmas=args.max_pragmas)
    print(render(findings, args.format))
    return exit_code(findings, strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
