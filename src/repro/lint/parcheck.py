"""Parallel-safety and determinism analyzer for the sweep engine.

Run as::

    python -m repro.lint.parcheck src/repro

Everything :mod:`repro.engine` promises — byte-identical serial,
parallel and cached sweeps — rests on an invariant no runtime test can
fully enforce: a task shipped to a worker process must be a
*deterministic, pure, picklable* function of its content-addressed key
(see the purity contract in :mod:`repro.engine.keys`), and every
object shared across threads must follow its lock discipline.  A
violation does not crash; it silently makes cached results diverge
from fresh ones, or parallel runs diverge from serial.  This module
makes the invariant statically checkable, the way
:mod:`repro.lint.dimcheck` made unit-correctness checkable.

The analyzer is **interprocedural**: all files given to one invocation
form one project.  It builds a symbol table and call graph — imports
are resolved across modules (including relative imports),
``self.method()`` binds within the class, locally constructed
receivers (``x = Cls(); x.m()``) bind to their class, and remaining
method calls fall back to a class-hierarchy-analysis union of
same-named methods (common container-protocol names are excluded from
the union so ``d.get(...)`` does not alias every ``get`` in the tree).
Each function's direct *effects* are inferred from stub tables
(nondeterminism sources, I/O calls, global/module-state mutation) and
propagated transitively from two kinds of roots:

* **worker boundaries** — call sites submitting work to a pool
  (``pool.submit(fn, ...)``, ``pool.map(fn, ...)``, ``apply_async``)
  and functions whose ``def`` line carries ``# lint: worker-boundary``
  (the engine marks ``_execute_chunk``, the function every pooled
  chunk runs).  Any effect reachable from the submitted callable is a
  finding.
* **lock-disciplined state** — classes holding a ``threading.Lock``
  attribute, and modules pairing a module-level lock with globals.
  State *written* under the lock anywhere must never be read or
  written without it.

Rules (sharing the :class:`~repro.lint.diagnostics.Diagnostic` model):

``PAR001`` (error)
    A nondeterminism source reachable from a worker task:
    ``time.time``, an unseeded ``random.*`` / ``default_rng()`` draw,
    ``uuid``, ``os.environ`` / ``os.getenv``, ``os.urandom``,
    ``secrets``.  The task's content-addressed key cannot cover these,
    so cache hits replay a value fresh runs would not reproduce.
``PAR002`` (error)
    Worker-reachable code mutating module-level/global state, or
    performing I/O.  A pool worker's module state is process-local:
    the mutation is lost (or, under threads, racy), and I/O makes the
    task a function of more than its key.
``PAR003`` (warning)
    Iteration over a ``set``/``frozenset`` whose order flows into a
    return value, ``fingerprint``/``task_key``, serialization
    (``json.dumps``, ``.join``, ``.write``) or report output.  Set
    order varies across processes (``PYTHONHASHSEED``), so the output
    is not reproducible.  Order-insensitive consumers — ``sorted``,
    ``sum``, ``min``/``max``, ``len``, ``any``/``all``, membership —
    launder the taint.
``PAR004`` (error)
    An attribute (or module global) written under a lock elsewhere but
    accessed here without it: the lock discipline exists, this site
    skips it.
``PAR005`` (error)
    A pickle-hostile value — ``lambda``, locally nested function,
    generator expression, open file handle — flowing into a
    pool-submission argument.  These fail (or worse, half-work) when
    pickled into a worker process.
``PAR006`` (error)
    The ``# lint: allow-par`` pragma budget is exceeded.
``PAR099`` (warning)
    A stale ``# lint: allow-par`` pragma that suppresses nothing.

Sanctioned channels the analyzer deliberately ignores, exactly as
dimcheck's stub table encodes the unit vocabulary:

* the whole :mod:`repro.obs` package.  It *is* the telemetry fabric:
  workers install capture tracers (a deliberate process-local global),
  capsules carry PIDs and wall-clock offsets, and the parent-side
  merge is deterministic by submission order (PR 6's determinism
  tests pin byte-identical output).  Effects inside ``repro.obs`` are
  therefore not findings — but its classes still get the full PAR004
  lock-discipline analysis, which is how the analyzer caught
  ``active_server()`` reading ``_ACTIVE`` without the lock.
* monotonic timers (``time.perf_counter``, ``time.monotonic``).  The
  engine's contract routes them into span durations and provenance
  ``phase_ms`` — observability fields, not results — so they are not
  PAR001 sources; wall-clock ``time.time`` still is.

The pragma ``# lint: allow-par`` on the flagged line suppresses
PAR001–PAR005 (use it only with a comment stating why the effect
cannot reach results); ``--max-pragmas`` budgets the total (CI pins it
at 3).
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..obs import get_metrics
from .callgraph import (
    COMMON_METHOD_NAMES,
    FUNC_NODES as _FUNC_NODES,
    SUBMIT_METHODS,
    WORKER_BOUNDARY_MARKER,
    AttrAccess,
    CallRef,
    ClassInfo,
    Effect,
    FuncNode,
    FunctionInfo,
    ModuleInfo,
    Project,
    SubmitSite,
    dotted_chain as _dotted_chain,
    local_names as _local_names,
)
from .diagnostics import Diagnostic, Severity, exit_code
from .output import FORMATS, render
from .registry import RuleInfo

#: The parallel-safety rule table, merged into SARIF metadata and the
#: documented rule table by ``output.all_rule_infos``.
PAR_RULES: "Dict[str, RuleInfo]" = {
    info.code: info
    for info in (
        RuleInfo(
            "PAR001",
            Severity.ERROR,
            "parallel",
            "Nondeterminism source reachable from a worker task.",
        ),
        RuleInfo(
            "PAR002",
            Severity.ERROR,
            "parallel",
            "Global/module-state mutation or I/O in worker-reachable code.",
        ),
        RuleInfo(
            "PAR003",
            Severity.WARNING,
            "parallel",
            "Set iteration order flows into a return/serialized output.",
        ),
        RuleInfo(
            "PAR004",
            Severity.ERROR,
            "parallel",
            "Unlocked access to state that is lock-protected elsewhere.",
        ),
        RuleInfo(
            "PAR005",
            Severity.ERROR,
            "parallel",
            "Pickle-hostile value flows into a pool-submission argument.",
        ),
        RuleInfo(
            "PAR006",
            Severity.ERROR,
            "parallel",
            "allow-par pragma budget exceeded.",
        ),
        RuleInfo(
            "PAR099",
            Severity.WARNING,
            "parallel",
            "Stale allow-par pragma that no longer suppresses anything.",
        ),
    )
}

ALLOW_PAR_PRAGMA = "lint: allow-par"

#: Files the checker never applies to: this analyzer itself (its stub
#: tables and corpus snippets name the very patterns it flags).
DEFAULT_ALLOWLIST = ("repro/lint/parcheck.py",)

#: The sanctioned telemetry fabric: effects (PAR001/PAR002) inside
#: these path fragments are not findings; lock discipline still is.
SANCTIONED_PATHS = ("repro/obs/",)

# ---------------------------------------------------------------------------
# Stub effect tables (stdlib / numpy), like dimcheck's dimension stubs.
# ---------------------------------------------------------------------------

#: Fully-dotted callables that are nondeterminism sources.
NONDET_CALLS: "Dict[str, str]" = {
    "time.time": "wall-clock read time.time()",
    "time.time_ns": "wall-clock read time.time_ns()",
    "uuid.uuid1": "uuid.uuid1()",
    "uuid.uuid4": "uuid.uuid4()",
    "os.urandom": "os.urandom() entropy read",
    "os.getenv": "environment read os.getenv()",
    "os.getlogin": "environment read os.getlogin()",
    "secrets.token_bytes": "secrets.token_bytes()",
    "secrets.token_hex": "secrets.token_hex()",
    "secrets.token_urlsafe": "secrets.token_urlsafe()",
    "secrets.randbits": "secrets.randbits()",
    "secrets.choice": "secrets.choice()",
}

#: Draws on the shared, unseeded global RNG (``random.X`` and legacy
#: ``numpy.random.X``).  ``random.Random(seed)`` instances are fine.
RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "getrandbits",
        "randbytes",
        "rand",
        "randn",
        "random_sample",
        "standard_normal",
        "permutation",
        "normal",
        "exponential",
        "poisson",
    }
)

#: Monotonic timers are the sanctioned telemetry clock — never PAR001.
_TIMER_CALLS = frozenset(
    {"time.perf_counter", "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns"}
)

#: Fully-dotted filesystem calls counted as I/O effects.
IO_CALLS = frozenset(
    {
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.makedirs",
        "os.mkdir",
        "os.rmdir",
        "shutil.rmtree",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.move",
    }
)

#: Builtins counted as I/O effects when called unbound.
IO_BUILTINS = frozenset({"open", "print", "input"})

#: Method names counted as I/O effects on any receiver.
IO_METHODS = frozenset(
    {"write", "writelines", "write_text", "write_bytes", "read_text", "read_bytes"}
)

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
    }
)

#: Call names whose result/argument order does not depend on iteration
#: order: they launder PAR003 taint.
ORDER_LAUNDERING = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset"}
)

#: Serialization / report sinks for PAR003 (dotted or bare names).
ORDER_SINK_CALLS = frozenset(
    {
        "json.dumps",
        "json.dump",
        "canonical_json",
        "fingerprint",
        "task_key",
        "part_digest",
        "print",
    }
)

#: Method-call sinks for PAR003.
ORDER_SINK_METHODS = frozenset({"join", "write", "writelines"})


def _is_sanctioned(filename: str) -> bool:
    normalized = filename.replace("\\", "/")
    return any(fragment in normalized for fragment in SANCTIONED_PATHS)


# ---------------------------------------------------------------------------
# Per-function scan: effects, call edges, submissions, PAR003/PAR005.
#
# The project model itself — symbol tables, import resolution, the
# call graph and worker-boundary roots — lives in the shared
# :mod:`repro.lint.callgraph`; this module keeps only the
# parallel-safety analysis layered on top of it.
# ---------------------------------------------------------------------------


class _FunctionScanner:
    """One function's direct effects, edges, and local findings.

    PAR003 (order taint) and PAR005 (pickle-hostility at submission
    sites) are decided here; nondet/global/I-O effects and call edges
    are recorded for the project-level reachability pass.
    """

    def __init__(
        self,
        project: "_Project",
        func: FunctionInfo,
        cls: "Optional[ClassInfo]",
    ) -> None:
        self.project = project
        self.func = func
        self.module = func.module
        self.cls = cls
        self.locals = _local_names(func.node)
        self.global_decls: "Set[str]" = set()
        self.lock_depth = 0
        self.tainted: "Set[str]" = set()  # order-tainted names
        self.set_names: "Set[str]" = set()  # names holding sets
        self.open_names: "Set[str]" = set()  # names holding open handles
        self.var_types: "Dict[str, str]" = {}  # local → class name

    # -- helpers -------------------------------------------------------------

    def _effect(self, kind: str, detail: str, node: ast.AST) -> None:
        if self.module.sanctioned and kind in ("nondet", "global", "io"):
            return
        self.func.effects.append(
            Effect(
                kind=kind,
                detail=detail,
                line=getattr(node, "lineno", 0),
                column=getattr(node, "col_offset", 0),
                node=node,
            )
        )

    def _dotted(self, node: ast.expr) -> Optional[str]:
        """Resolve ``a.b.c`` through the import table, or None."""
        chain = _dotted_chain(node)
        if chain is None:
            return None
        head = chain[0]
        if head in self.locals or head in ("self", "cls"):
            return None
        resolved = self.module.imports.get(head)
        if resolved is not None:
            chain = resolved.split(".") + chain[1:]
        return ".".join(chain)

    def _class_of(self, name: str) -> Optional[str]:
        """The project class a bare name refers to, if any."""
        if name in self.module.classes:
            return name
        dotted = self.module.imports.get(name)
        if dotted is not None:
            modname, _, attr = dotted.rpartition(".")
            target = self.project.modules_by_name.get(modname)
            if target is not None and attr in target.classes:
                return attr
        return None

    # -- the walk ------------------------------------------------------------

    def run(self) -> None:
        for stmt in self.func.node.body:
            self._stmt(stmt)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, _FUNC_NODES):
            return  # nested defs are scanned as their own functions
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, ast.Global):
            self.global_decls.update(node.names)
            return
        if isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
            self._with(node)
            return
        if isinstance(node, ast.For) or isinstance(node, ast.AsyncFor):
            self._for(node)
            return
        if isinstance(node, ast.Assign):
            self._assign(node.targets, node.value)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign([node.target], node.value)
            return
        if isinstance(node, ast.AugAssign):
            self._store_target(node.target)
            self._expr(node.value)
            if isinstance(node.target, ast.Name):
                name = node.target.id
                if name in self.global_decls or (
                    name in self.module.global_names and name not in self.locals
                ):
                    self._global_write(name, node)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                self._order_sink(node.value, "the return value")
                self._expr(node.value)
            return
        if isinstance(node, (ast.Expr,)):
            if isinstance(node.value, (ast.Yield, ast.YieldFrom)):
                inner = node.value.value
                if inner is not None:
                    self._order_sink(inner, "a yielded value")
                    self._expr(inner)
                return
            self._expr(node.value)
            return
        # Everything else: recurse into child statements/expressions.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self._expr(child)

    def _with(self, node: "Union[ast.With, ast.AsyncWith]") -> None:
        locked = 0
        for item in node.items:
            ctx = item.context_expr
            if self._is_lock_expr(ctx):
                locked += 1
            else:
                self._expr(ctx)
            if item.optional_vars is not None:
                self._store_target(item.optional_vars)
                if isinstance(ctx, ast.Call) and self._call_name(ctx) == "open":
                    if isinstance(item.optional_vars, ast.Name):
                        self.open_names.add(item.optional_vars.id)
        self.lock_depth += locked
        try:
            for stmt in node.body:
                self._stmt(stmt)
        finally:
            self.lock_depth -= locked

    def _is_lock_expr(self, node: ast.expr) -> bool:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
            and self.cls is not None
            and node.attr in self.cls.lock_attrs
        ):
            return True
        if (
            isinstance(node, ast.Name)
            and node.id in self.module.module_locks
            and node.id not in self.locals
        ):
            return True
        return False

    def _for(self, node: "Union[ast.For, ast.AsyncFor]") -> None:
        unordered = self._unordered(node.iter)
        self._expr(node.iter)
        self._store_target(node.target)
        mutated: "Set[str]" = set()
        if unordered is not None:
            # Ordered accumulations inside the loop inherit the taint.
            for stmt in node.body:
                for child in ast.walk(stmt):
                    if isinstance(child, ast.Call) and isinstance(
                        child.func, ast.Attribute
                    ):
                        if child.func.attr in (
                            "append",
                            "extend",
                            "insert",
                            "setdefault",
                        ) and isinstance(child.func.value, ast.Name):
                            mutated.add(child.func.value.id)
                    elif isinstance(child, ast.Subscript) and isinstance(
                        child.ctx, ast.Store
                    ):
                        if isinstance(child.value, ast.Name):
                            mutated.add(child.value.id)
            self.tainted.update(mutated)
        for stmt in node.body:
            self._stmt(stmt)
        for stmt in node.orelse:
            self._stmt(stmt)

    def _assign(self, targets: "Sequence[ast.expr]", value: ast.expr) -> None:
        self._expr(value)
        taint = self._order_tainted(value) is not None
        is_set = self._unordered(value) is not None
        is_open = isinstance(value, ast.Call) and self._call_name(value) == "open"
        constructed = self._constructed_class(value)
        for target in targets:
            self._store_target(target)
            if isinstance(target, ast.Name):
                name = target.id
                if taint:
                    self.tainted.add(name)
                else:
                    self.tainted.discard(name)
                if is_set:
                    self.set_names.add(name)
                else:
                    self.set_names.discard(name)
                if is_open:
                    self.open_names.add(name)
                else:
                    self.open_names.discard(name)
                if constructed is not None:
                    self.var_types[name] = constructed
                if name in self.global_decls or (
                    name in self.module.global_names and name not in self.locals
                ):
                    self._global_write(name, target)
            elif isinstance(target, ast.Subscript):
                base = target.value
                if isinstance(base, ast.Name):
                    if (
                        base.id in self.module.global_names
                        and base.id not in self.locals
                    ):
                        self._global_write(base.id, target, container=True)
                    if taint:
                        self.tainted.add(base.id)
                self._expr(base)
                self._expr(target.slice)
            elif isinstance(target, ast.Attribute):
                self._attr_store(target)

    def _constructed_class(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return self._class_of(value.func.id)
        return None

    def _store_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store_target(element)
        elif isinstance(target, ast.Starred):
            self._store_target(target.value)
        elif isinstance(target, ast.Attribute):
            self._attr_store(target)
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Attribute):
                self._attr_store(target.value)
            elif (
                isinstance(target.value, ast.Name)
                and target.value.id in self.module.global_names
                and target.value.id not in self.locals
            ):
                self._global_write(target.value.id, target, container=True)

    def _attr_store(self, node: ast.Attribute) -> None:
        base = node.value
        if (
            isinstance(base, ast.Name)
            and base.id in ("self", "cls")
            and self.cls is not None
        ):
            self._record_self_access(node.attr, write=True, node=node)
        elif (
            isinstance(base, ast.Name)
            and base.id in self.module.global_names
            and base.id not in self.locals
        ):
            self._global_write(base.id, node, container=True)

    def _global_write(
        self, name: str, node: ast.AST, container: bool = False
    ) -> None:
        what = (
            f"mutates module-level {name!r}"
            if container
            else f"rebinds module global {name!r}"
        )
        self._effect("global", what, node)
        self.module.global_accesses.append(
            AttrAccess(
                name=name,
                write=True,
                locked=self.lock_depth > 0,
                node=node,
                where=self.func.qualname,
            )
        )

    def _record_self_access(
        self, attr: str, write: bool, node: ast.AST
    ) -> None:
        if self.cls is None or attr in self.cls.lock_attrs:
            return
        if self.func.name in ("__init__", "__post_init__"):
            return  # construction happens-before sharing
        self.cls.accesses.append(
            AttrAccess(
                name=attr,
                write=write,
                locked=self.lock_depth > 0,
                node=node,
                where=self.func.qualname,
            )
        )

    # -- expressions ---------------------------------------------------------

    def _call_name(self, node: ast.Call) -> Optional[str]:
        if isinstance(node.func, ast.Name) and node.func.id not in self.locals:
            return node.func.id
        return None

    def _expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, ast.Attribute):
            dotted = self._dotted(node)
            if dotted == "os.environ" and isinstance(node.ctx, ast.Load):
                self._effect("nondet", "os.environ read", node)
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")
                and self.cls is not None
                and isinstance(node.ctx, ast.Load)
            ):
                self._record_self_access(node.attr, write=False, node=node)
            self._expr(node.value)
            return
        if isinstance(node, ast.Name):
            if (
                isinstance(node.ctx, ast.Load)
                and node.id in self.module.global_names
                and node.id not in self.locals
            ):
                self.module.global_accesses.append(
                    AttrAccess(
                        name=node.id,
                        write=False,
                        locked=self.lock_depth > 0,
                        node=node,
                        where=self.func.qualname,
                    )
                )
            return
        if isinstance(node, (ast.Lambda,)):
            return  # bodies of lambdas are not scanned for effects
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter)
                for condition in child.ifs:
                    self._expr(condition)

    def _call(self, node: ast.Call) -> None:
        dotted = (
            self._dotted(node.func) if not isinstance(node.func, ast.Name) else None
        )
        bare = self._call_name(node)
        if bare is not None and bare in self.module.imports:
            dotted = self.module.imports[bare]
        elif bare is not None and dotted is None:
            dotted = bare

        self._check_effect_call(node, dotted, bare)
        self._record_edge(node, dotted, bare)
        self._check_submission(node)
        self._check_order_sink_call(node, dotted)

        for arg in node.args:
            self._expr(arg)
        for keyword in node.keywords:
            self._expr(keyword.value)
        if isinstance(node.func, ast.Attribute):
            self._expr(node.func.value)
            if (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("self", "cls")
                and self.cls is not None
                and node.func.attr in MUTATOR_METHODS
            ):
                # self.items.append(...) is not what we track here; a
                # direct mutator on self.X counts as a write to X.
                pass

    def _check_effect_call(
        self, node: ast.Call, dotted: Optional[str], bare: Optional[str]
    ) -> None:
        if dotted is not None and dotted in _TIMER_CALLS:
            return  # sanctioned telemetry clock
        if dotted is not None:
            if dotted in NONDET_CALLS:
                self._effect("nondet", NONDET_CALLS[dotted], node)
                return
            parts = dotted.split(".")
            if (
                len(parts) >= 2
                and parts[-2] == "random"
                and parts[-1] in RANDOM_FUNCS
            ):
                self._effect(
                    "nondet",
                    f"unseeded RNG draw {parts[-2]}.{parts[-1]}()",
                    node,
                )
                return
            if parts[-1] == "default_rng" and not node.args and not node.keywords:
                self._effect("nondet", "default_rng() without a seed", node)
                return
            if dotted in IO_CALLS:
                self._effect("io", f"filesystem call {dotted}()", node)
                return
        if bare is not None and bare in IO_BUILTINS:
            self._effect("io", f"I/O builtin {bare}()", node)
            return
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            receiver = node.func.value
            if attr in IO_METHODS:
                self._effect("io", f".{attr}() I/O call", node)
            if attr in MUTATOR_METHODS:
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id in self.module.global_names
                    and receiver.id not in self.locals
                ):
                    self._global_write(receiver.id, node, container=True)
                elif (
                    isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id in ("self", "cls")
                ):
                    self._record_self_access(receiver.attr, write=True, node=node)

    def _record_edge(
        self, node: ast.Call, dotted: Optional[str], bare: Optional[str]
    ) -> None:
        if isinstance(node.func, ast.Name):
            self.func.calls.append(
                CallRef(kind="name", name=node.func.id, dotted=dotted)
            )
            return
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            receiver = node.func.value
            recv_class: Optional[str] = None
            if isinstance(receiver, ast.Name):
                if receiver.id in ("self", "cls") and self.cls is not None:
                    recv_class = self.cls.name
                else:
                    recv_class = self.var_types.get(receiver.id)
            self.func.calls.append(
                CallRef(kind="attr", name=attr, dotted=dotted, recv_class=recv_class)
            )

    def _check_submission(self, node: ast.Call) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in SUBMIT_METHODS
        ):
            return
        self.project.submit_sites.append(
            SubmitSite(call=node, func=self.func, module=self.module)
        )
        for position, arg in enumerate(list(node.args)):
            hostile = self._pickle_hostile(arg, position)
            if hostile is not None:
                self.project.emit(
                    self.module,
                    "PAR005",
                    f"{hostile} flows into the pool submission "
                    f"`.{node.func.attr}(...)`: it cannot be pickled into "
                    "a worker process",
                    "pass a module-level function and plain picklable "
                    "data (resolve handles/closures before submitting), "
                    f"or pragma with `# {ALLOW_PAR_PRAGMA}` for an "
                    "inline-executor-only path",
                    arg,
                )

    def _pickle_hostile(self, arg: ast.expr, position: int) -> Optional[str]:
        if isinstance(arg, ast.Lambda):
            return "a lambda"
        if isinstance(arg, ast.GeneratorExp):
            return "a generator expression"
        if isinstance(arg, ast.Call) and self._call_name(arg) == "open":
            return "an open file handle"
        if isinstance(arg, ast.Name):
            if arg.id in self.open_names:
                return f"open file handle {arg.id!r}"
            if arg.id in self.func.children:
                return f"locally nested function {arg.id!r}"
            parent = self.func.parent
            if parent is not None and arg.id in parent.children:
                return f"locally nested function {arg.id!r}"
        return None

    # -- PAR003: set-iteration order taint ------------------------------------

    def _unordered(self, node: ast.expr) -> Optional[str]:
        """A description if ``node`` is an unordered (set-valued)
        expression, else None."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal" if isinstance(node, ast.Set) else "a set comprehension"
        if isinstance(node, ast.Call):
            name = self._call_name(node)
            if name in ("set", "frozenset"):
                return f"{name}(...)"
        if isinstance(node, ast.Name) and node.id in self.set_names:
            return f"set {node.id!r}"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._unordered(node.left) or self._unordered(node.right)
        if isinstance(node, ast.Attribute) and node.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return f".{node.attr}()"
        return None

    def _order_tainted(self, node: ast.expr) -> Optional[str]:
        """A description if ``node`` is an *ordered* value whose order
        derives from unordered iteration."""
        if isinstance(node, ast.Name) and node.id in self.tainted:
            return f"{node.id!r} (built by iterating a set)"
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                source = self._unordered(generator.iter)
                if source is not None:
                    return f"a comprehension over {source}"
            return None
        if isinstance(node, ast.Call):
            name = self._call_name(node)
            if name in ("list", "tuple") and node.args:
                source = self._unordered(node.args[0])
                if source is not None:
                    return f"{name}() of {source}"
                return self._order_tainted(node.args[0])
            if name in ORDER_LAUNDERING:
                return None
        return None

    def _order_sink(self, node: ast.expr, sink: str) -> None:
        tainted = self._order_tainted(node)
        if tainted is not None:
            self.project.emit(
                self.module,
                "PAR003",
                f"{tainted} reaches {sink}: set iteration order varies "
                "across processes (PYTHONHASHSEED), so the output is not "
                "reproducible",
                "sort the iterable (sorted(...)) before its order becomes "
                f"observable, or pragma with `# {ALLOW_PAR_PRAGMA}` "
                "stating why order cannot matter",
                node,
            )

    def _check_order_sink_call(
        self, node: ast.Call, dotted: Optional[str]
    ) -> None:
        sink: Optional[str] = None
        bare = self._call_name(node)
        if dotted in ORDER_SINK_CALLS or bare in ORDER_SINK_CALLS:
            sink = f"serialization via {bare or dotted}()"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ORDER_SINK_METHODS
        ):
            sink = f"serialization via .{node.func.attr}()"
        if sink is None:
            return
        for arg in node.args:
            self._order_sink(arg, sink)


# ---------------------------------------------------------------------------
# The project: resolution, reachability, lock discipline.
# ---------------------------------------------------------------------------


class _Project(Project):
    """All modules of one invocation, analyzed together."""

    pragma = ALLOW_PAR_PRAGMA

    def __init__(self) -> None:
        super().__init__()
        self.findings: "List[Diagnostic]" = []
        self._emitted: "Set[Tuple[str, Optional[int], str, str]]" = set()

    def sanctioned(self, filename: str) -> bool:
        return _is_sanctioned(filename)

    # -- emission ------------------------------------------------------------

    def emit(
        self,
        module: ModuleInfo,
        code: str,
        message: str,
        hint: str,
        node: "Optional[ast.AST]",
        line: "Optional[int]" = None,
    ) -> None:
        first = getattr(node, "lineno", None) if node is not None else line
        if node is not None and first is not None:
            last = getattr(node, "end_lineno", None) or first
            covered = module.pragma_lines.intersection(range(first, int(last) + 1))
            if covered:
                module.used_pragma_lines.update(covered)
                return
        key = (module.filename, first, code, message)
        if key in self._emitted:
            return
        self._emitted.add(key)
        info = PAR_RULES[code]
        self.findings.append(
            Diagnostic(
                code=code,
                severity=info.severity,
                message=message,
                hint=hint,
                category=info.category,
                source="code",
                file=module.filename,
                line=first,
                column=getattr(node, "col_offset", None) if node is not None else None,
            )
        )

    # -- analysis ------------------------------------------------------------

    def analyze(self) -> "List[Diagnostic]":
        self.index()
        for module in self.modules:
            for func in self.all_functions(module):
                cls = module.classes.get(func.cls) if func.cls else None
                _FunctionScanner(self, func, cls).run()
        self.resolve_edges()
        self._propagate_from_roots()
        self._check_lock_discipline()
        for module in self.modules:
            self._stale_pragmas(module)
        self.findings.sort(
            key=lambda d: (d.file or "", d.line or 0, d.code, d.message)
        )
        return self.findings

    # -- reachability from worker boundaries ---------------------------------

    def _propagate_from_roots(self) -> None:
        roots = self.worker_roots()
        parent: "Dict[str, Optional[str]]" = {}
        origin: "Dict[str, str]" = {}
        queue: "List[FunctionInfo]" = []
        for root, via in roots:
            if root.qualname not in parent:
                parent[root.qualname] = None
                origin[root.qualname] = via
                queue.append(root)
        index = 0
        while index < len(queue):
            func = queue[index]
            index += 1
            for target in func.resolved:
                if target.module.sanctioned:
                    continue
                if target.qualname not in parent:
                    parent[target.qualname] = func.qualname
                    origin[target.qualname] = origin[func.qualname]
                    queue.append(target)
        for func in queue:
            chain = self._chain(func.qualname, parent)
            for effect in func.effects:
                code = "PAR001" if effect.kind == "nondet" else "PAR002"
                if effect.kind == "nondet":
                    what = (
                        f"{effect.detail} runs inside a worker task: the "
                        "task's content-addressed key cannot cover it, so "
                        "cached and fresh results diverge"
                    )
                    hint = (
                        "hoist the nondeterminism into the parent (seed "
                        "it and pass values through the task payload), or "
                        f"pragma with `# {ALLOW_PAR_PRAGMA}` stating why "
                        "it cannot reach results"
                    )
                else:
                    verb = (
                        effect.detail
                        if effect.kind == "global"
                        else f"performs {effect.detail}"
                    )
                    what = (
                        f"worker-reachable code {verb}: a pool worker's "
                        "module state is process-local, so the effect is "
                        "lost or divergent between serial and parallel runs"
                    )
                    hint = (
                        "return the data instead of mutating shared "
                        "state / writing it here, or pragma with "
                        f"`# {ALLOW_PAR_PRAGMA}` stating the contract"
                    )
                self.emit(
                    func.module,
                    code,
                    f"{what} (reached from {origin[func.qualname]}"
                    f"{chain})",
                    hint,
                    effect.node,
                )

    def _chain(
        self, qualname: str, parent: "Dict[str, Optional[str]]"
    ) -> str:
        names: "List[str]" = []
        current: Optional[str] = qualname
        while current is not None and len(names) < 6:
            names.append(current.rsplit(".", 1)[-1])
            current = parent.get(current)
        names.reverse()
        if len(names) <= 1:
            return ""
        return " via " + " -> ".join(names)

    # -- lock discipline ------------------------------------------------------

    def _check_lock_discipline(self) -> None:
        for module in self.modules:
            for cls in module.classes.values():
                if not cls.lock_attrs:
                    continue
                self._check_access_set(
                    module,
                    cls.accesses,
                    lock=f"self.{sorted(cls.lock_attrs)[0]}",
                    owner=f"{module.modname}.{cls.name}",
                )
            if module.module_locks:
                self._check_access_set(
                    module,
                    module.global_accesses,
                    lock=sorted(module.module_locks)[0],
                    owner=module.modname,
                )

    def _check_access_set(
        self,
        module: ModuleInfo,
        accesses: "Sequence[AttrAccess]",
        lock: str,
        owner: str,
    ) -> None:
        locked_writes: "Set[str]" = {
            access.name for access in accesses if access.write and access.locked
        }
        for access in accesses:
            if access.name not in locked_writes or access.locked:
                continue
            action = "written" if access.write else "read"
            self.emit(
                module,
                "PAR004",
                f"{owner} state {access.name!r} is {action} in "
                f"{access.where} without {lock}, but elsewhere it is "
                "written under the lock: this access races with those "
                "writers",
                f"wrap the access in `with {lock}:` (or document a "
                "happens-before argument with "
                f"`# {ALLOW_PAR_PRAGMA}`)",
                access.node,
            )

    # -- pragmas --------------------------------------------------------------

    def _stale_pragmas(self, module: ModuleInfo) -> None:
        for line in sorted(module.pragma_lines - module.used_pragma_lines):
            info = PAR_RULES["PAR099"]
            self.findings.append(
                Diagnostic(
                    code="PAR099",
                    severity=info.severity,
                    message=(
                        f"stale `# {ALLOW_PAR_PRAGMA}` pragma: it no "
                        "longer suppresses any diagnostic"
                    ),
                    hint="delete the pragma (the code it excused is gone)",
                    category=info.category,
                    source="code",
                    file=module.filename,
                    line=line,
                )
            )


# ---------------------------------------------------------------------------
# Entry points (mirror repro.lint.dimcheck / codelint).
# ---------------------------------------------------------------------------


def analyze_sources(
    sources: "Sequence[Tuple[str, str]]",
    allowlist: "Sequence[str]" = DEFAULT_ALLOWLIST,
) -> "List[Diagnostic]":
    """Analyze ``(filename, source)`` pairs as one project."""
    from .codelint import _is_allowlisted

    project = _Project()
    for filename, source in sources:
        if _is_allowlisted(filename, allowlist):
            continue
        project.add_module(filename, source)
    findings = project.analyze()
    metrics = get_metrics()
    for finding in findings:
        metrics.inc(f"lint.diagnostics.{finding.severity.value}")
    return findings


def lint_source(
    source: str,
    filename: str = "<string>",
    allowlist: "Sequence[str]" = DEFAULT_ALLOWLIST,
) -> "List[Diagnostic]":
    """Analyze one Python source text as a single-file project."""
    return analyze_sources([(filename, source)], allowlist)


def lint_paths(
    paths: "Sequence[str]",
    allowlist: "Sequence[str]" = DEFAULT_ALLOWLIST,
    max_pragmas: Optional[int] = None,
) -> "List[Diagnostic]":
    """Analyze files and/or directory trees as one project."""
    from .codelint import _is_allowlisted, _python_files

    metrics = get_metrics()
    sources: "List[Tuple[str, str]]" = []
    for path in paths:
        for filename in _python_files(path):
            if _is_allowlisted(filename, allowlist):
                continue
            metrics.inc("lint.parcheck.files")
            with open(filename, encoding="utf-8") as handle:
                sources.append((filename, handle.read()))
    findings = analyze_sources(sources, allowlist)
    if max_pragmas is not None:
        # Budget only the analyzed files: the analyzer's own source
        # names the pragma in its hint strings.
        pragmas = sum(
            sum(1 for line in source.splitlines() if ALLOW_PAR_PRAGMA in line)
            for _, source in sources
        )
        if pragmas > max_pragmas:
            info = PAR_RULES["PAR006"]
            findings.append(
                Diagnostic(
                    code="PAR006",
                    severity=info.severity,
                    message=(
                        f"{pragmas} `# {ALLOW_PAR_PRAGMA}` pragmas in the "
                        f"tree, over the budget of {max_pragmas}: the "
                        "escape hatch is becoming the norm"
                    ),
                    hint="fix the pragma'd sites (or raise the budget "
                    "deliberately)",
                    category=info.category,
                    source="code",
                )
            )
    return findings


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    """Entry point for ``python -m repro.lint.parcheck``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint.parcheck",
        description="parallel-safety & determinism analyzer",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="Python files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="human", help="output format"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings (PAR003, stale pragmas) also fail",
    )
    parser.add_argument(
        "--max-pragmas",
        type=int,
        default=None,
        metavar="N",
        help=f"fail when more than N `# {ALLOW_PAR_PRAGMA}` pragmas exist",
    )
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths, max_pragmas=args.max_pragmas)
    print(render(findings, args.format))
    return exit_code(findings, strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
