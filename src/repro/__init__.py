"""repro — a framework for evaluating storage system dependability.

A complete Python implementation of Keeton & Merchant, *A Framework for
Evaluating Storage System Dependability* (DSN 2004): analytic models of
data protection techniques (PiT copies, inter-array mirroring, backup,
vaulting), hardware device models, and the compositional framework that
turns a storage system design plus a workload, failure scenario and
business requirements into the paper's four output metrics — normal
mode utilization, worst-case recovery time, worst-case recent data loss
and overall cost.

Quick start::

    import repro

    workload = repro.workload.cello()
    design = repro.casestudy.baseline_design()
    result = repro.evaluate(
        design,
        workload,
        repro.FailureScenario.array_failure("primary-array"),
        repro.BusinessRequirements.per_hour(50_000, 50_000),
    )
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from . import casestudy, obs, units, workload
from .core import (
    Assessment,
    Level,
    StorageDesign,
    evaluate,
    evaluate_scenarios,
    plan_recovery,
    validate_design,
)
from .devices import (
    CostModel,
    DiskArray,
    NetworkLink,
    Shipment,
    SpareConfig,
    SpareType,
    TapeLibrary,
    Vault,
)
from .exceptions import (
    BandwidthExceededError,
    CapacityExceededError,
    DesignError,
    DeviceError,
    PolicyError,
    RecoveryError,
    ReproError,
    UnitError,
    WorkloadError,
)
from .scenarios import (
    BusinessRequirements,
    FailureScenario,
    FailureScope,
    Location,
)
from .techniques import (
    AsyncMirror,
    Backup,
    BatchedAsyncMirror,
    ErasureCodedArchive,
    IncrementalKind,
    IncrementalPolicy,
    PrimaryCopy,
    RemoteVaulting,
    SplitMirror,
    SyncMirror,
    VirtualSnapshot,
)
from .portfolio import Portfolio, PortfolioAssessment, ProtectedObject
from .workload import BatchUpdateCurve, Workload

__version__ = "1.0.0"

__all__ = [
    # sub-modules kept importable as namespaces
    "casestudy",
    "obs",
    "units",
    "workload",
    # workload
    "Workload",
    "BatchUpdateCurve",
    # scenarios
    "BusinessRequirements",
    "FailureScenario",
    "FailureScope",
    "Location",
    # devices
    "CostModel",
    "DiskArray",
    "TapeLibrary",
    "Vault",
    "NetworkLink",
    "Shipment",
    "SpareConfig",
    "SpareType",
    # techniques
    "PrimaryCopy",
    "VirtualSnapshot",
    "SplitMirror",
    "SyncMirror",
    "AsyncMirror",
    "BatchedAsyncMirror",
    "Backup",
    "IncrementalKind",
    "IncrementalPolicy",
    "RemoteVaulting",
    "ErasureCodedArchive",
    # multi-object portfolios
    "Portfolio",
    "PortfolioAssessment",
    "ProtectedObject",
    # core
    "StorageDesign",
    "Level",
    "evaluate",
    "evaluate_scenarios",
    "plan_recovery",
    "validate_design",
    "Assessment",
    # exceptions
    "ReproError",
    "UnitError",
    "WorkloadError",
    "DeviceError",
    "CapacityExceededError",
    "BandwidthExceededError",
    "PolicyError",
    "DesignError",
    "RecoveryError",
]
