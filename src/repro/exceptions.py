"""Exception hierarchy for the dependability modeling framework.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch framework errors without
accidentally swallowing programming mistakes (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class UnitError(ReproError, ValueError):
    """A quantity string or value could not be parsed or is out of range."""


class WorkloadError(ReproError, ValueError):
    """A workload description is inconsistent or incomplete.

    Examples: a negative update rate, an access rate smaller than the
    update rate, or a batch-update curve with no sample points.
    """


class DeviceError(ReproError, ValueError):
    """A device specification or demand registration is invalid."""


class CapacityExceededError(DeviceError):
    """The capacity demands registered on a device exceed its maximum.

    Raised by the global utilization check (paper section 3.3.1: the
    framework "generates an error if capUtil > 1").
    """

    def __init__(self, device_name: str, utilization: float):
        self.device_name = device_name
        self.utilization = utilization
        super().__init__(
            f"capacity utilization of device {device_name!r} is "
            f"{utilization:.1%}, which exceeds 100%"
        )

    def __reduce__(self):
        # ``args`` holds the formatted message, not the constructor
        # arguments, so the default reduction cannot rebuild this class
        # (engine workers ship these across process boundaries).
        return (type(self), (self.device_name, self.utilization))


class BandwidthExceededError(DeviceError):
    """The bandwidth demands registered on a device exceed its maximum.

    Raised by the global utilization check (paper section 3.3.1: the
    framework "generates an error if bwUtil > 1").
    """

    def __init__(self, device_name: str, utilization: float):
        self.device_name = device_name
        self.utilization = utilization
        super().__init__(
            f"bandwidth utilization of device {device_name!r} is "
            f"{utilization:.1%}, which exceeds 100%"
        )

    def __reduce__(self):
        return (type(self), (self.device_name, self.utilization))


class PolicyError(ReproError, ValueError):
    """A data protection technique's policy parameters are invalid.

    This covers both locally invalid values (e.g. a zero accumulation
    window) and violations of the inter-level conventions of paper
    section 3.2.1 (e.g. ``propW > accW``).
    """


class NoCycleError(PolicyError, NotImplementedError):
    """A continuous technique was asked for its (nonexistent) RP cycle.

    Primary copies and synchronous/asynchronous mirrors propagate
    updates continuously — there is no cycle period or retention count
    to report.  Deriving from both :class:`PolicyError` (callers treat
    the request as a policy misuse) and :class:`NotImplementedError`
    (static checks recognise "no cycle model here" and skip, while any
    *other* exception out of ``cycle()`` surfaces as the bug it is).
    """


class DesignError(ReproError, ValueError):
    """A storage system design is structurally invalid.

    Examples: a hierarchy whose level 0 is not a primary copy, a recovery
    path that does not start at a retained level, or a level bound to a
    device that was never declared.
    """


class RecoveryError(ReproError, RuntimeError):
    """A recovery plan cannot be constructed for the imposed failure.

    Raised when no surviving level retains a retrieval point usable for
    the requested recovery target, i.e. the data is irrecoverably lost.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class RiskError(ReproError, ValueError):
    """A probabilistic risk model is inconsistent or unusable.

    Examples: an ensemble member with a non-positive occurrence rate, a
    duplicate member id, a k-out-of-n model outside the validity range
    of its deterministic-repair approximation, or an ensemble member
    whose scenario the design cannot survive (infinite severity makes
    every annualized distribution degenerate).
    """


class OptimizationError(ReproError, RuntimeError):
    """The design optimizer could not produce a feasible design."""


class EngineError(ReproError, RuntimeError):
    """The evaluation engine failed outside any single task.

    Task-level failures (a candidate that cannot be evaluated) are
    reported per task; this error covers engine-level problems such as
    an unusable cache directory.
    """


class CacheKeyError(EngineError):
    """A task's inputs cannot be reduced to a canonical cache key.

    Raised by :func:`repro.engine.keys.fingerprint` when the object
    graph contains something with no deterministic serialization (an
    open file, a lambda, an unknown extension type).  The engine treats
    such tasks as uncacheable rather than failing the sweep.
    """
