"""Canonical content-addressed task keys.

An evaluation is a pure function of its inputs: the design, the
workload, the failure scenarios and the business requirements.  This
module reduces that input tuple to a deterministic hexadecimal key so
results can be cached and never computed twice:

* :func:`fingerprint` walks an arbitrary framework object graph
  (dataclasses, plain ``repro`` classes, enums, containers) into a
  JSON-able structure with **sorted keys everywhere** and stable
  reference numbering for shared objects (two levels storing on the
  same array fingerprint as one array plus a reference, not two
  arrays);
* :func:`model_schema_version` digests the *source code* of every
  module whose behavior feeds an assessment, so cache entries
  self-invalidate whenever the core model changes — no manual version
  bump to forget;
* :func:`task_key` combines both into the content hash used by the
  result cache.

Anything with no deterministic serialization (an open file, a lambda,
a foreign extension type) raises
:class:`~repro.exceptions.CacheKeyError`; the engine treats such tasks
as uncacheable rather than guessing.

The purity assumption itself is enforced statically:
:mod:`repro.lint.parcheck` (``repro lint par``) propagates inferred
effects — nondeterminism, global mutation, I/O, unordered iteration —
from the engine's worker boundaries and fails CI when evaluation code
breaks the contract this module's keys depend on (DESIGN.md §11).
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..core.results import Assessment
from ..exceptions import CacheKeyError
from ..serialization import assessment_to_dict, canonical_json

#: Bumped manually on cache-layout changes that the source digest does
#: not capture (e.g. a new fingerprint encoding).
SCHEMA_TAG = "engine-v1"

#: The parts of the package whose source defines evaluation results.
#: Relative to ``src/repro``; directories are walked recursively.
_MODEL_SOURCE_PATHS: "Tuple[str, ...]" = (
    "core",
    "devices",
    "techniques",
    "workload",
    "scenarios",
    "simulation",
    "units.py",
    "casestudy.py",
    "serialization.py",
    "portfolio.py",
)

_schema_version: Optional[str] = None


def model_schema_version() -> str:
    """A digest of the evaluation model's own source code.

    Computed once per process: SHA-256 over the bytes of every model
    source file, in sorted relative-path order, prefixed with
    :data:`SCHEMA_TAG`.  Any change to the model — a fixed formula, a
    new device parameter — yields a different version, so persistent
    cache entries written before the change can never be returned after
    it.
    """
    global _schema_version
    if _schema_version is not None:
        return _schema_version
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    try:
        source_files: "List[Path]" = []
        for entry in _MODEL_SOURCE_PATHS:
            path = package_root / entry
            if path.is_dir():
                source_files.extend(path.rglob("*.py"))
            elif path.is_file():
                source_files.append(path)
        for path in sorted(source_files, key=lambda p: str(p.relative_to(package_root))):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
        _schema_version = f"{SCHEMA_TAG}:{digest.hexdigest()[:16]}"
    except OSError:
        # Source unavailable (e.g. a frozen distribution): fall back to
        # the manual tag alone. Persistent caches lose automatic
        # invalidation but stay functional.
        _schema_version = SCHEMA_TAG
    return _schema_version


class _Fingerprinter:
    """One fingerprint traversal: assigns stable reference numbers.

    Reference numbers are assigned in first-visit order, which is
    itself deterministic because every container is walked in sorted
    (or declared) order — so two structurally equal graphs always
    produce identical fingerprints, shared substructure included.
    """

    def __init__(self) -> None:
        self._refs: "Dict[int, int]" = {}
        self._next_ref = 0

    def walk(self, obj: Any) -> Any:
        """The JSON-able canonical form of ``obj``."""
        if obj is None or isinstance(obj, (bool, int, float, str)):
            return obj
        if isinstance(obj, enum.Enum):
            return {"$enum": type(obj).__qualname__, "value": obj.value}
        if isinstance(obj, (list, tuple)):
            return [self.walk(item) for item in obj]
        if isinstance(obj, dict):
            return self._walk_mapping(obj)
        if isinstance(obj, (set, frozenset)):
            walked = [self.walk(item) for item in obj]
            return {"$set": sorted(walked, key=canonical_json)}
        if is_dataclass(obj) and not isinstance(obj, type):
            return self._walk_object(
                obj,
                {f.name: getattr(obj, f.name) for f in fields(obj) if f.compare},
            )
        module = getattr(type(obj), "__module__", "")
        if module == "repro" or module.startswith("repro."):
            return self._walk_object(obj, vars(obj))
        raise CacheKeyError(
            f"cannot fingerprint {type(obj).__qualname__!r} (module "
            f"{module or '?'}): no deterministic serialization"
        )

    def _walk_mapping(self, mapping: "Dict[Any, Any]") -> Any:
        if all(isinstance(key, str) for key in mapping):
            return {key: self.walk(value) for key, value in sorted(mapping.items())}
        entries = [[self.walk(key), self.walk(value)] for key, value in mapping.items()]
        entries.sort(key=lambda entry: canonical_json(entry[0]))
        return {"$dict": entries}

    def _walk_object(self, obj: Any, state: "Dict[str, Any]") -> Any:
        marker = id(obj)
        if marker in self._refs:
            return {"$ref": self._refs[marker]}
        # Number the object *before* walking its state so reference
        # cycles terminate.
        ref = self._refs[marker] = self._next_ref
        self._next_ref += 1
        return {
            "$type": type(obj).__qualname__,
            "$id": ref,
            "state": {key: self.walk(value) for key, value in sorted(state.items())},
        }


def fingerprint(obj: Any) -> Any:
    """A deterministic JSON-able image of a framework object graph.

    Two calls on structurally equal inputs produce equal structures —
    across processes, interpreters and hash seeds.  Raises
    :class:`~repro.exceptions.CacheKeyError` for objects with no
    deterministic serialization.
    """
    return _Fingerprinter().walk(obj)


#: Identity-keyed digest memo for one sweep: ``id -> (obj, digest)``.
#: The strong reference to ``obj`` pins its id for the memo's lifetime.
PartMemo = Dict[int, Tuple[Any, str]]


def part_digest(obj: Any, memo: Optional[PartMemo] = None) -> str:
    """The digest of one task-payload part, memoized by identity.

    A sweep's tasks share their workload, scenario tuple and
    requirements *objects*; with a memo those parts are fingerprinted
    once per sweep instead of once per task.  Memoization never changes
    the digest — it only skips re-walking an object already walked.
    """
    if memo is not None:
        entry = memo.get(id(obj))
        if entry is not None and entry[0] is obj:
            return entry[1]
    # Plain dumps, not canonical_json: the fingerprint walk already
    # emits every mapping in sorted order, so re-sorting here would
    # only burn time.
    body = json.dumps(fingerprint(obj), separators=(",", ":"), ensure_ascii=True)
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    if memo is not None:
        memo[id(obj)] = (obj, digest)
    return digest


def result_digest(value: Any) -> Optional[str]:
    """A content digest of one task result, or None if undigestable.

    The digest covers the *outputs* of an evaluation — the assessment
    record of every scenario, minus the provenance block (whose
    wall-clock phase timings legitimately differ between two runs of
    the same work).  Two runs producing the same digest for the same
    task key therefore computed the same answer; a differing digest
    under an equal key is correctness drift, however fast or slow the
    runs were.  Result shapes without a canonical serialization (e.g.
    portfolio assessments holding live device state) return None —
    "not comparable", never a guessed hash.
    """
    if not isinstance(value, dict) or not value:
        return None
    encoded: "Dict[str, Any]" = {}
    for label, assessment in sorted(value.items()):
        if not isinstance(label, str) or not isinstance(assessment, Assessment):
            return None
        record = assessment_to_dict(assessment)
        record.pop("provenance", None)
        encoded[label] = record
    try:
        body = canonical_json(encoded)
    except (TypeError, ValueError):
        return None
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def task_key(payload: Any, memo: Optional[PartMemo] = None) -> str:
    """The content-addressed cache key of one evaluation task.

    The payload's top-level parts are digested independently (sorted by
    part name) and combined with the model schema version under
    SHA-256: equal inputs under an unchanged model always map to the
    same key, and *any* model change maps everything to fresh keys.
    Pass one ``memo`` dict across the tasks of a sweep to digest shared
    parts only once.
    """
    if isinstance(payload, dict) and all(isinstance(k, str) for k in payload):
        parts = {
            name: part_digest(value, memo)
            for name, value in sorted(payload.items())
        }
    else:
        parts = {"payload": part_digest(payload, memo)}
    body = canonical_json({"schema": model_schema_version(), "parts": parts})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()
