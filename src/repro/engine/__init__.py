"""repro.engine — parallel, cache-aware evaluation engine.

The framework's evaluations are pure functions of their inputs, which
makes them embarrassingly parallel and perfectly cacheable.  This
package exploits both properties behind one call —
:func:`map_evaluations` — without changing any result:

* :mod:`repro.engine.keys` — content-addressed task keys, versioned by
  a digest of the model's own source code;
* :mod:`repro.engine.cache` — two-tier result cache (in-process LRU +
  persistent JSONL), round-tripping through :mod:`repro.serialization`;
* :mod:`repro.engine.executor` — process-pool execution with per-task
  timeouts, retry with backoff on worker crashes, and a graceful
  inline path when ``workers=1`` (the default);
* :mod:`repro.engine.sweep` — the design-map helpers the optimizer,
  what-if and sensitivity layers are built on.

The executor is also the bridge of the cross-process telemetry fabric:
each dispatched chunk carries a :class:`~repro.obs.context.TraceContext`,
workers return a :class:`~repro.obs.context.TelemetryCapsule` of spans
and metric deltas that the parent merges back (so ``--trace`` /
``--profile`` see worker-side hot paths), and every sweep reports live
progress through :func:`repro.obs.get_progress`.

Layering: the engine depends on ``repro.core`` / ``repro.serialization``
/ ``repro.obs``, never the reverse — the model stays ignorant of how it
is scheduled.
"""

from .cache import DiskCache, MemoryCache, ResultCache, register_codec
from .executor import (
    EngineConfig,
    EvaluationTask,
    PortfolioTask,
    TaskOutcome,
    map_evaluations,
    shutdown_pool,
    warm_pool,
)
from .keys import fingerprint, model_schema_version, result_digest, task_key
from .sweep import evaluate_design_map, evaluate_scenarios_cached

__all__ = [
    "DiskCache",
    "EngineConfig",
    "EvaluationTask",
    "MemoryCache",
    "PortfolioTask",
    "ResultCache",
    "TaskOutcome",
    "evaluate_design_map",
    "evaluate_scenarios_cached",
    "fingerprint",
    "map_evaluations",
    "model_schema_version",
    "register_codec",
    "result_digest",
    "shutdown_pool",
    "task_key",
    "warm_pool",
]
